"""Tests for the segment-store conflict checker and the A* fallback."""

import pytest

from repro import Query, build_strip_graph
from repro.core.fallback import SegmentStoreChecker, fallback_plan
from repro.core.segments import Segment, make_wait
from repro.core.slope_index import SlopeIndexedStore
from repro.pathfinding.distance import DistanceMaps


@pytest.fixture
def world(tiny_warehouse):
    graph = build_strip_graph(tiny_warehouse)
    stores = [SlopeIndexedStore() for _ in graph.strips]
    crossings = set()
    return tiny_warehouse, graph, stores, crossings


class TestSegmentStoreChecker:
    def test_within_strip_vertex(self, world):
        wh, graph, stores, crossings = world
        idx, pos = graph.locate((0, 3))
        stores[idx].insert(make_wait(0, pos, 5))
        checker = SegmentStoreChecker(graph, stores, crossings)
        assert checker.cell_blocked((0, 3), 2)
        assert not checker.cell_blocked((0, 3), 9)
        assert checker.move_blocked((0, 2), (0, 3), 1)

    def test_within_strip_swap(self, world):
        wh, graph, stores, crossings = world
        idx, pos = graph.locate((0, 3))
        # Committed robot moves 3 -> 2 along row 0 over [4, 5].
        stores[idx].insert(Segment(4, pos, 5, pos - 1))
        checker = SegmentStoreChecker(graph, stores, crossings)
        assert checker.move_blocked((0, 2), (0, 3), 4)

    def test_cross_strip_entry_occupancy(self, world):
        wh, graph, stores, crossings = world
        idx, pos = graph.locate((1, 1))  # a longitudinal aisle cell
        stores[idx].insert(make_wait(3, pos, 2))
        checker = SegmentStoreChecker(graph, stores, crossings)
        # Moving from row 0 into (1,1) arriving t=4 hits the wait.
        assert checker.move_blocked((0, 1), (1, 1), 3)
        assert not checker.move_blocked((0, 1), (1, 1), 6)

    def test_cross_strip_swap_via_crossing_events(self, world):
        wh, graph, stores, crossings = world
        crossings.add((((1, 1)), ((0, 1)), 5))  # someone crosses up at t=5
        checker = SegmentStoreChecker(graph, stores, crossings)
        assert checker.move_blocked((0, 1), (1, 1), 4)  # we'd cross down
        assert not checker.move_blocked((0, 1), (1, 1), 5)


class TestFallbackPlan:
    def test_plans_around_committed_traffic(self, world):
        wh, graph, stores, crossings = world
        idx, pos = graph.locate((0, 4))
        stores[idx].insert(make_wait(0, pos, 30))  # squatter mid-row
        maps = DistanceMaps(wh)
        route = fallback_plan(
            graph, stores, crossings, maps, Query((0, 0), (0, 7), 0)
        )
        assert route is not None
        for t, cell in route.steps():
            assert not (cell == (0, 4) and t <= 30)

    def test_rack_endpoints_supported(self, world):
        wh, graph, stores, crossings = world
        maps = DistanceMaps(wh)
        route = fallback_plan(graph, stores, crossings, maps, Query((1, 2), (2, 5), 0))
        assert route is not None
        assert route.origin == (1, 2) and route.destination == (2, 5)

    def test_respects_budget(self, world):
        wh, graph, stores, crossings = world
        maps = DistanceMaps(wh)
        route = fallback_plan(
            graph, stores, crossings, maps, Query((0, 0), (7, 7), 0), max_expansions=2
        )
        assert route is None
