"""Tests for the wire protocol codec and the threaded socket frontend."""

import io
import json
import socket

import pytest

from repro.core.planner import SRPPlanner
from repro.service import (
    ProtocolError,
    Reply,
    ReplyStatus,
    ServiceConfig,
    ServiceServer,
)
from repro.service.protocol import (
    MAX_LINE_BYTES,
    decode_route,
    encode_message,
    encode_reply,
    encode_route,
    iter_wire_lines,
    parse_message_line,
    parse_reply_line,
    parse_request_line,
)
from repro.types import Route


class _ChunkedReader(io.RawIOBase):
    """A byte stream that returns at most ``chunk`` bytes per read,
    forcing line assembly across arbitrary buffer boundaries."""

    def __init__(self, data: bytes, chunk: int) -> None:
        self._buf = io.BytesIO(data)
        self._chunk = chunk

    def readable(self) -> bool:
        return True

    def readinto(self, b) -> int:
        data = self._buf.read(min(len(b), self._chunk))
        b[: len(data)] = data
        return len(data)


class TestProtocolCodec:
    def test_plan_request_round_trip(self):
        parsed = parse_request_line(
            '{"op": "plan", "id": 3, "origin": [0, 0], "dest": [4, 5],'
            ' "release": 7, "deadline_ms": 50}'
        )
        assert parsed["op"] == "plan"
        assert parsed["id"] == 3
        assert parsed["deadline_ms"] == 50
        q = parsed["query"]
        assert q.origin == (0, 0) and q.destination == (4, 5)
        assert q.release_time == 7 and q.query_id == 3

    def test_non_plan_ops(self):
        for op in ("stats", "ping", "shutdown"):
            assert parse_request_line(json.dumps({"op": op})) == {"op": op}

    @pytest.mark.parametrize("line", [
        "not json at all",
        "[1, 2, 3]",
        '{"op": "fly"}',
        '{"op": "plan", "id": true, "origin": [0, 0], "dest": [1, 1]}',
        '{"op": "plan", "id": 1, "origin": [0], "dest": [1, 1]}',
        '{"op": "plan", "id": 1, "origin": [0, 0], "dest": "there"}',
        '{"op": "plan", "id": 1, "origin": [0, 0], "dest": [1, 1], "release": -2}',
        '{"op": "plan", "id": 1, "origin": [0, 0], "dest": [1, 1], "deadline_ms": -1}',
    ])
    def test_malformed_requests_raise(self, line):
        with pytest.raises(ProtocolError):
            parse_request_line(line)

    def test_route_codec_round_trip(self):
        route = Route(5, [(0, 0), (0, 1), (1, 1)], query_id=9)
        decoded = decode_route(encode_route(route), query_id=9)
        assert decoded.start_time == route.start_time
        assert decoded.grids == route.grids

    def test_reply_encoding_and_parsing(self):
        route = Route(2, [(0, 0), (0, 1)])
        line = encode_reply(Reply(4, ReplyStatus.DEGRADED, "cached", route,
                                  queue_ms=3))
        obj = parse_reply_line(line)
        assert obj["id"] == 4
        assert obj["status"] == "degraded"
        assert obj["rung"] == "cached"
        assert obj["route"]["start_time"] == 2

    def test_shed_reply_has_no_route(self):
        obj = parse_reply_line(
            encode_reply(Reply(1, ReplyStatus.SHED, note="admission queue full"))
        )
        assert obj["status"] == "shed"
        assert "route" not in obj
        assert obj["note"] == "admission queue full"

    def test_unknown_reply_status_raises(self):
        with pytest.raises(ProtocolError):
            parse_reply_line('{"status": "confused"}')


class TestWireLines:
    """Length-capped line reader: oversized, partial, and torn frames."""

    def test_normal_lines_pass_through(self):
        stream = io.BufferedReader(
            _ChunkedReader(b'{"op": "ping"}\n{"op": "stats"}\n', 1024)
        )
        assert list(iter_wire_lines(stream)) == ['{"op": "ping"}', '{"op": "stats"}']

    def test_partial_reads_across_buffer_boundaries(self):
        """Lines split at every possible point still assemble whole."""
        payload = b'{"op": "ping", "pad": "' + b"x" * 100 + b'"}\n{"op": "stats"}\n'
        for chunk in (1, 2, 3, 7, 64):
            stream = io.BufferedReader(_ChunkedReader(payload, chunk), buffer_size=16)
            lines = list(iter_wire_lines(stream))
            assert len(lines) == 2, chunk
            assert json.loads(lines[0])["op"] == "ping"
            assert json.loads(lines[1])["op"] == "stats"

    def test_oversized_line_yields_none_once_and_stream_recovers(self):
        giant = b"a" * (2 * MAX_LINE_BYTES)
        stream = io.BufferedReader(
            _ChunkedReader(giant + b"\n" + b'{"op": "ping"}\n', 65536)
        )
        lines = list(iter_wire_lines(stream))
        assert lines == [None, '{"op": "ping"}']

    def test_oversized_line_at_eof_without_newline(self):
        stream = io.BufferedReader(
            _ChunkedReader(b"b" * (MAX_LINE_BYTES + 10), 65536)
        )
        assert list(iter_wire_lines(stream)) == [None]

    def test_final_unterminated_fragment_is_yielded(self):
        stream = io.BufferedReader(_ChunkedReader(b'{"op": "ping"}', 8))
        assert list(iter_wire_lines(stream)) == ['{"op": "ping"}']

    def test_non_utf8_bytes_survive_as_replaced_text(self):
        stream = io.BufferedReader(_ChunkedReader(b"\xff\xfe\n", 8))
        (line,) = list(iter_wire_lines(stream))
        assert isinstance(line, str)


class TestShardMessageCodec:
    """The strict frame codec used on the frontend-worker pipes."""

    def test_round_trip(self):
        msg = {"op": "plan", "id": 3, "origin": [1, 2]}
        assert parse_message_line(encode_message(msg)) == msg

    @pytest.mark.parametrize("data", [
        b"not json",
        b"[1, 2]",
        b'{"no_op": 1}',
        b'{"op": 7}',
        b"\xff\xfe\xfd",
    ])
    def test_malformed_frames_raise(self, data):
        with pytest.raises(ProtocolError):
            parse_message_line(data)

    def test_oversized_frames_rejected_both_ways(self):
        with pytest.raises(ProtocolError):
            encode_message({"op": "plan", "pad": "x" * (MAX_LINE_BYTES + 1)})
        with pytest.raises(ProtocolError):
            parse_message_line(b"x" * (MAX_LINE_BYTES + 1))


@pytest.fixture
def server(small_warehouse):
    srv = ServiceServer(
        SRPPlanner(small_warehouse),
        ServiceConfig(queue_capacity=8, default_deadline_ms=0),
        port=0,
    ).start()
    yield srv
    srv.stop(timeout=10)


def talk(port: int, lines, read_n=None):
    """Send lines on one connection; read ``read_n`` reply lines back."""
    read_n = len(lines) if read_n is None else read_n
    with socket.create_connection(("127.0.0.1", port), timeout=10) as conn:
        f = conn.makefile("rwb")
        for line in lines:
            f.write((line + "\n").encode())
        f.flush()
        return [json.loads(f.readline()) for _ in range(read_n)]


class TestServiceServer:
    def test_ping(self, server):
        (reply,) = talk(server.port, ['{"op": "ping"}'])
        assert reply == {"status": "ok", "pong": True}

    def test_plan_and_stats(self, server, small_warehouse):
        free = small_warehouse.free_cells()
        plan_line = json.dumps({
            "op": "plan", "id": 42,
            "origin": list(free[0]), "dest": list(free[-1]),
        })
        # a stats reply may legally overtake the queued plan reply on a
        # pipelined connection — identify the two replies by content
        replies = talk(server.port, [plan_line, '{"op": "stats"}'])
        plan = next(r for r in replies if "id" in r)
        stats = next(r for r in replies if "stats" in r)
        assert plan["id"] == 42
        assert plan["status"] == "ok"
        assert plan["rung"] == "full"
        assert plan["route"]["grids"][0] == list(free[0])
        assert stats["protocol"] == 1
        # the handler admits the plan before reading the stats line, so
        # the snapshot has counted it even if planning is still running
        assert stats["stats"]["counters"]["admitted"] == 1
        assert "uptime_ms" in stats["stats"]

    def test_malformed_line_answers_error_and_keeps_serving(self, server):
        error, pong = talk(server.port, ["garbage", '{"op": "ping"}'])
        assert error["status"] == "error"
        assert "not valid JSON" in error["note"]
        assert pong["pong"] is True

    def test_pipelined_plans_all_answered(self, server, small_warehouse):
        free = small_warehouse.free_cells()
        lines = [
            json.dumps({"op": "plan", "id": i,
                        "origin": list(free[i]), "dest": list(free[-1 - i])})
            for i in range(6)
        ]
        replies = talk(server.port, lines)
        assert sorted(r["id"] for r in replies) == list(range(6))
        assert all(r["status"] in ("ok", "degraded") for r in replies)

    def test_shutdown_drains_and_sheds_new_work(self, server, small_warehouse):
        free = small_warehouse.free_cells()
        (ack,) = talk(server.port, ['{"op": "shutdown"}'])
        assert ack == {"status": "draining"}
        assert server.drained.wait(10)
        plan_line = json.dumps({
            "op": "plan", "id": 1,
            "origin": list(free[0]), "dest": list(free[-1]),
        })
        (reply,) = talk(server.port, [plan_line])
        assert reply["status"] == "shed"
        assert reply["note"] == "server draining"
        assert server.stop(timeout=10) is True

    def test_oversized_line_answers_error_and_keeps_serving(self, server):
        giant = "x" * (MAX_LINE_BYTES + 100)
        error, pong = talk(server.port, [giant, '{"op": "ping"}'])
        assert error["status"] == "error"
        assert "exceeds" in error["note"]
        assert pong["pong"] is True

    def test_session_trace_is_replayable(self, server, small_warehouse):
        from repro.service import replay_session

        free = small_warehouse.free_cells()
        lines = [
            json.dumps({"op": "plan", "id": i,
                        "origin": list(free[2 * i]), "dest": list(free[-1 - i])})
            for i in range(4)
        ]
        talk(server.port, lines)
        server.request_shutdown()
        assert server.drained.wait(10)
        report = replay_session(server.core.trace, SRPPlanner(small_warehouse))
        assert report.duration_deltas == [0] * 4


class TestTelemetryLog:
    def test_jsonl_log_written_on_drain(self, small_warehouse, tmp_path):
        log = tmp_path / "telemetry.jsonl"
        srv = ServiceServer(
            SRPPlanner(small_warehouse), port=0,
            telemetry_log=str(log), log_interval=0.05,
        ).start()
        (reply,) = talk(srv.port, ['{"op": "ping"}'])
        assert reply["pong"] is True
        srv.request_shutdown()
        assert srv.drained.wait(10)
        assert srv.stop(timeout=10) is True
        lines = [json.loads(ln) for ln in log.read_text().splitlines() if ln]
        assert lines, "at least the final snapshot must be written"
        assert all("counters" in line and "uptime_ms" in line for line in lines)


class TestShardedServer:
    """The socket frontend over a region-sharded planner."""

    def test_inline_sharded_server_answers_and_drains(self, small_warehouse):
        from repro.service import ShardedPlanner

        planner = ShardedPlanner(small_warehouse, workers=2, mode="inline")
        srv = ServiceServer(planner, ServiceConfig(queue_capacity=16), port=0)
        srv.start()
        try:
            part = planner.partition
            free = small_warehouse.free_cells()
            top = [c for c in free if c[0] <= part.bounds[0][1]]
            bottom = [c for c in free if c[0] >= part.bounds[1][0]]
            lines = [
                json.dumps({"op": "plan", "id": i,
                            "origin": list(top[i]), "dest": list(bottom[i])})
                for i in range(4)
            ]
            replies = talk(srv.port, lines)
            assert sorted(r["id"] for r in replies) == list(range(4))
            assert all(r["status"] in ("ok", "degraded") for r in replies)
            assert planner.router_stats()["cross"] == 4
        finally:
            assert srv.stop(timeout=20) is True

    def test_process_sharded_server_drain_reaps_workers(self, small_warehouse):
        """SIGTERM-equivalent drain leaves no orphaned worker processes."""
        from repro.service import ShardedPlanner

        planner = ShardedPlanner(small_warehouse, workers=2, mode="process")
        srv = ServiceServer(planner, ServiceConfig(queue_capacity=16), port=0)
        srv.start()
        free = small_warehouse.free_cells()
        plan_line = json.dumps({
            "op": "plan", "id": 9,
            "origin": list(free[0]), "dest": list(free[-1]),
        })
        (reply,) = talk(srv.port, [plan_line])
        assert reply["status"] in ("ok", "degraded")
        srv.request_shutdown()
        assert srv.drained.wait(20)
        assert srv.stop(timeout=20) is True
        assert planner.workers_alive() == 0
        for shard in planner._shards:
            assert not shard.process.is_alive()
