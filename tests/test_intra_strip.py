"""Tests for the intra-strip planner (Algorithm 2) and its wait jumps."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.intra_strip import next_clear_departure, plan_within_strip
from repro.core.naive_store import NaiveSegmentStore
from repro.core.segments import Segment, make_move, make_wait
from repro.core.slope_index import SlopeIndexedStore
from repro.geometry.collision import conflict_between, conflict_between_segments

STORES = [NaiveSegmentStore, SlopeIndexedStore]


def assert_plan_valid(plan, store, start_time, origin, destination):
    """A plan must be contiguous, monotone, collision-free, and arrive."""
    t, p = start_time, origin
    direction = 0 if destination == origin else (1 if destination > origin else -1)
    for seg in plan.segments:
        assert seg.t0 == t and seg.p0 == p, "segments must chain"
        assert seg.slope in (0, direction), "no backward moves"
        for other in store.iter_segments():
            assert conflict_between(seg.raw, other.raw) is None
        t, p = seg.t1, seg.p1
    assert p == destination
    assert t == plan.arrival_time


@pytest.mark.parametrize("store_cls", STORES)
class TestEmptyStrip:
    def test_direct_move(self, store_cls):
        plan = plan_within_strip(store_cls(), 5, 2, 9)
        assert plan is not None
        assert plan.segments == [Segment(5, 2, 12, 9)]
        assert plan.duration == 7
        assert plan.expansions == 0  # fast path

    def test_origin_is_destination(self, store_cls):
        plan = plan_within_strip(store_cls(), 5, 4, 4)
        assert plan is not None
        assert plan.segments == [] and plan.arrival_time == 5

    def test_backward_direction(self, store_cls):
        plan = plan_within_strip(store_cls(), 0, 9, 3)
        assert plan is not None and plan.duration == 6


@pytest.mark.parametrize("store_cls", STORES)
class TestCollisionAvoidance:
    def test_waits_for_crossing_robot(self, store_cls):
        store = store_cls()
        # Opposing robot covers 6 -> 3 over [2, 5], then leaves the strip.
        store.insert(make_move(2, 6, 3))
        plan = plan_within_strip(store, 0, 0, 9)
        assert plan is not None
        assert_plan_valid(plan, store, 0, 0, 9)
        assert plan.duration > 9  # had to wait somewhere

    def test_head_on_opposing_traffic_is_infeasible(self, store_cls):
        # An opposing robot sweeping the whole strip cannot be dodged
        # without backward moves: the restricted search must give up
        # (the end-to-end planner then reroutes or falls back to A*).
        store = store_cls()
        store.insert(make_move(0, 9, 0))
        assert plan_within_strip(store, 0, 0, 9) is None

    def test_follows_same_direction_traffic(self, store_cls):
        store = store_cls()
        store.insert(make_move(0, 1, 8))  # ahead of us, same direction
        plan = plan_within_strip(store, 0, 0, 7)
        assert plan is not None
        assert_plan_valid(plan, store, 0, 0, 7)
        # Following one cell behind needs no extra time.
        assert plan.duration == 7

    def test_waits_out_a_parked_robot(self, store_cls):
        store = store_cls()
        store.insert(make_wait(0, 5, 10))  # parked at p=5 until t=10
        plan = plan_within_strip(store, 0, 0, 9)
        assert plan is not None
        assert_plan_valid(plan, store, 0, 0, 9)
        # Must reach p=5 no earlier than t=11.
        arrival_at_5 = next(
            seg.t0 + (5 - seg.p0) for seg in plan.segments if seg.slope == 1 and seg.p0 <= 5 <= seg.p1
        )
        assert arrival_at_5 >= 11

    def test_standing_start_blocked(self, store_cls):
        store = store_cls()
        store.insert(make_move(0, 3, 0))  # passes p=0 at t=3
        # Start waiting at p=0 from t=3: immediate vertex conflict.
        plan = plan_within_strip(store, 3, 0, 5)
        assert plan is None

    def test_wait_probe_respects_traffic_through_stop_cell(self, store_cls):
        store = store_cls()
        # Robot A parks at p=6 over [0, 30]: we must stop before it.
        store.insert(make_wait(0, 6, 30))
        # Robot B sweeps through p=5 at t=8: waiting at p=5 must dodge it.
        store.insert(make_move(3, 10, 0))
        plan = plan_within_strip(store, 0, 0, 9, max_wait=64)
        if plan is not None:
            assert_plan_valid(plan, store, 0, 0, 9)

    def test_budget_exhaustion_returns_none(self, store_cls):
        store = store_cls()
        for k in range(30):
            store.insert(make_wait(2 * k, 5, 1))
        plan = plan_within_strip(store, 0, 0, 9, max_expansions=1)
        assert plan is None

    def test_impossible_when_destination_blocked_forever(self, store_cls):
        store = store_cls()
        store.insert(make_wait(0, 9, 500))  # squatter on the destination
        plan = plan_within_strip(store, 0, 0, 9, max_wait=16)
        assert plan is None


@pytest.mark.parametrize("store_cls", STORES)
class TestPlanShape:
    def test_no_backward_segments(self, store_cls):
        store = store_cls()
        store.insert(make_move(0, 9, 0))
        store.insert(make_wait(4, 4, 6))
        plan = plan_within_strip(store, 0, 0, 9)
        if plan is not None:
            for seg in plan.segments:
                assert seg.slope >= 0

    def test_greedy_prefers_latest_stop(self, store_cls):
        store = store_cls()
        store.insert(make_wait(0, 5, 6))  # wall at p=5 until t=6
        plan = plan_within_strip(store, 0, 0, 9)
        assert plan is not None
        assert_plan_valid(plan, store, 0, 0, 9)
        # Greedy runs to p=4 (right before the wall) and waits there.
        wait = next(s for s in plan.segments if s.is_wait)
        assert wait.p0 == 4


class TestNextClearDeparture:
    @settings(max_examples=500, deadline=None)
    @given(
        st.integers(0, 25),  # p
        st.integers(0, 25),  # dest
        st.integers(0, 40),  # t_from
        st.integers(0, 40),  # obstacle t0
        st.integers(0, 25),  # obstacle p0
        st.sampled_from([-1, 0, 1]),
        st.integers(0, 15),
    )
    def test_matches_linear_scan(self, p, dest, t_from, ot, op, oslope, olen):
        if p == dest:
            return
        oq = op + oslope * olen
        if not 0 <= oq <= 40:
            return
        obstacle = Segment(ot, op, ot + olen, oq)
        got = next_clear_departure(obstacle, p, dest, t_from)
        expected = next(
            t
            for t in range(t_from, t_from + 400)
            if conflict_between_segments(make_move(t, p, dest), obstacle) is None
        )
        assert got == expected

    def test_clear_immediately(self):
        obstacle = make_wait(50, 5, 3)
        assert next_clear_departure(obstacle, 0, 9, 0) == 0

    def test_jumps_past_parked_robot(self):
        obstacle = make_wait(0, 5, 20)  # occupies p=5 during [0, 20]
        # Departing from p=0 we reach p=5 after 5 steps: need t' >= 16.
        assert next_clear_departure(obstacle, 0, 9, 1) == 16
