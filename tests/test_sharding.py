"""Tests for region-sharded planning and the boundary 2PC.

Covers the partitioner's invariants, cross-region planning through the
two-phase boundary commit (collision-freedom, per-shard audits), exact
rollback of aborted prepares (Hypothesis round-trip on the store
fingerprints), single-shard equivalence with the plain planner
(bit-for-bit session replay), and worker-process lifecycle (spawn,
drain, no orphans).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.validate import (
    assert_collision_free,
    assert_routes_legal,
    audit_planner_state,
)
from repro.core.planner import SRPPlanner
from repro.core.strips import build_strip_graph
from repro.exceptions import InvalidQueryError
from repro.service import ServiceConfig, ServiceCore, replay_session
from repro.service.sharding import (
    InlineShard,
    ShardedPlanner,
    ShardWorker,
    compute_partition,
)
from repro.types import Query, QueryKind
from repro.warehouse.layout import LayoutSpec, generate_layout

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _warehouse():
    return generate_layout(
        LayoutSpec(height=28, width=20, cluster_length=4,
                   n_pickers=4, n_robots=6, seed=2),
        name="shard-small",
    )


WAREHOUSE = _warehouse()
GRAPH = build_strip_graph(WAREHOUSE)


def band_cells(partition, region, limit=40):
    lo, hi = partition.bounds[region]
    return [
        c for c in WAREHOUSE.free_cells() if lo <= c[0] <= hi
    ][:limit]


def store_fingerprint(planner):
    """Bit-level content of a planner's stores and crossing ledger.

    Content versions are deliberately excluded: they bump monotonically
    on every insert/remove, so an exact rollback restores the *content*
    while the version (correctly) moves on.
    """
    segments = {}
    for idx, store in planner.stores.active_items():
        segs = sorted((s.t0, s.p0, s.t1, s.p1) for s in store.iter_segments())
        if segs:
            segments[idx] = segs
    return segments, sorted(planner.crossings.iter_keys())


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
class TestPartition:
    def test_bands_are_contiguous_and_cover_all_rows(self):
        part = compute_partition(WAREHOUSE, GRAPH, 4)
        assert part.k == 4
        assert part.bounds[0][0] == 0
        assert part.bounds[-1][1] == WAREHOUSE.height - 1
        for (_, hi), (lo, _) in zip(part.bounds, part.bounds[1:]):
            assert lo == hi + 1

    def test_cut_rows_are_full_aisle_rows(self):
        part = compute_partition(WAREHOUSE, GRAPH, 3)
        for _, hi in part.bounds[:-1]:
            assert not WAREHOUSE.racks[hi].any()

    def test_no_strip_spans_a_cut(self):
        part = compute_partition(WAREHOUSE, GRAPH, 4)
        for strip, region in zip(GRAPH.strips, part.strip_region):
            cells = [strip.grid_at(p) for p in range(strip.length)]
            assert {part.region_of_cell(c) for c in cells} == {region}

    def test_boundary_columns_are_free_on_both_sides(self):
        part = compute_partition(WAREHOUSE, GRAPH, 4)
        for b, cols in enumerate(part.boundary_columns):
            cut = part.bounds[b][1]
            assert cols
            for col in cols:
                assert WAREHOUSE.is_free((cut, col))
                assert WAREHOUSE.is_free((cut + 1, col))

    def test_k_clamped_to_available_cuts(self):
        part = compute_partition(WAREHOUSE, GRAPH, 500)
        assert 1 <= part.k < 500
        assert len(part.bounds) == part.k

    def test_k1_is_one_band(self):
        part = compute_partition(WAREHOUSE, GRAPH, 1)
        assert part.k == 1
        assert part.bounds == ((0, WAREHOUSE.height - 1),)
        assert part.boundary_columns == ()

    def test_deterministic(self):
        a = compute_partition(WAREHOUSE, GRAPH, 4)
        b = compute_partition(WAREHOUSE, GRAPH, 4)
        assert a == b

    def test_region_mask_matches_strip_region(self):
        part = compute_partition(WAREHOUSE, GRAPH, 3)
        for region in range(part.k):
            mask = part.mask(region)
            assert all(
                mask[i] == (part.strip_region[i] == region)
                for i in range(len(mask))
            )

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            compute_partition(WAREHOUSE, GRAPH, 0)


# ----------------------------------------------------------------------
# Region-restricted planners
# ----------------------------------------------------------------------
class TestRegionRestriction:
    def test_out_of_region_endpoint_rejected(self):
        part = compute_partition(WAREHOUSE, GRAPH, 2)
        planner = SRPPlanner(WAREHOUSE, region=part.mask(0))
        inside = band_cells(part, 0)
        outside = band_cells(part, 1)
        with pytest.raises(InvalidQueryError, match="region"):
            planner.plan(Query(inside[0], outside[0], 0, query_id=1))

    def test_in_region_planning_stays_in_region(self):
        part = compute_partition(WAREHOUSE, GRAPH, 2)
        planner = SRPPlanner(WAREHOUSE, region=part.mask(1))
        cells = band_cells(part, 1)
        route = planner.plan(Query(cells[0], cells[-1], 0, query_id=1))
        for _, grid in route.steps():
            assert part.region_of_cell(grid) == 1


# ----------------------------------------------------------------------
# Cross-region planning (inline shards)
# ----------------------------------------------------------------------
class TestCrossRegion:
    def test_routes_collision_free_and_audited(self):
        sp = ShardedPlanner(WAREHOUSE, workers=3, mode="inline")
        part = sp.partition
        top = band_cells(part, 0)
        bottom = band_cells(part, sp.shard_count - 1)
        routes = []
        for i in range(14):
            origin, dest = top[i], bottom[(3 * i) % len(bottom)]
            if i % 2:
                origin, dest = dest, origin
            query = Query(origin, dest, i // 3, QueryKind.GENERIC, i)
            route = sp.plan(query)
            assert route.origin == origin and route.destination == dest
            assert route.start_time >= query.release_time
            routes.append(route)
        assert_collision_free(routes)
        assert_routes_legal(routes, WAREHOUSE)
        stats = sp.router_stats()
        assert stats["cross"] == 14
        assert stats["cross_committed"] == 14
        # every shard's own stores must explain exactly its band of the
        # full cross-region routes
        assert sp.audit(routes) == []

    def test_intra_region_queries_forwarded_whole(self):
        sp = ShardedPlanner(WAREHOUSE, workers=2, mode="inline")
        cells = band_cells(sp.partition, 0)
        route = sp.plan(Query(cells[0], cells[-1], 0, query_id=5))
        assert route.query_id == 5
        stats = sp.router_stats()
        assert stats["intra"] == 1 and stats["cross"] == 0

    def test_rung_methods_route_cross_region(self):
        sp = ShardedPlanner(WAREHOUSE, workers=2, mode="inline")
        top = band_cells(sp.partition, 0)
        bottom = band_cells(sp.partition, 1)
        cached = sp.plan_strip_only(Query(top[0], bottom[0], 0, query_id=1))
        fallback = sp.plan_fallback_only(Query(top[2], bottom[2], 0, query_id=2))
        assert cached is not None and fallback is not None
        assert_collision_free([cached, fallback])

    def test_anonymous_cross_query_keeps_its_id(self):
        sp = ShardedPlanner(WAREHOUSE, workers=2, mode="inline")
        top = band_cells(sp.partition, 0)
        bottom = band_cells(sp.partition, 1)
        route = sp.plan(Query(top[0], bottom[0], 0, query_id=-1))
        assert route.query_id == -1

    def test_out_of_bounds_query_raises(self):
        sp = ShardedPlanner(WAREHOUSE, workers=2, mode="inline")
        with pytest.raises(InvalidQueryError):
            sp.plan(Query((-1, 0), (5, 5), 0, query_id=1))

    def test_reset_clears_all_shards(self):
        sp = ShardedPlanner(WAREHOUSE, workers=2, mode="inline")
        top = band_cells(sp.partition, 0)
        bottom = band_cells(sp.partition, 1)
        sp.plan(Query(top[0], bottom[0], 0, query_id=1))
        sp.reset()
        assert sp.router_stats()["cross"] == 0
        for shard in sp._shards:
            assert store_fingerprint(shard.worker.planner) == ({}, [])


# ----------------------------------------------------------------------
# Two-phase commit rollback (Hypothesis round-trip)
# ----------------------------------------------------------------------
class TestAbortRollback:
    def _loaded_planner(self):
        """A 2-shard inline planner with committed background traffic."""
        sp = ShardedPlanner(WAREHOUSE, workers=2, mode="inline")
        top = band_cells(sp.partition, 0)
        bottom = band_cells(sp.partition, 1)
        for i, (o, d) in enumerate(
            [(top[0], bottom[0]), (bottom[3], top[3]), (top[5], top[9])]
        ):
            sp.plan(Query(o, d, i, QueryKind.GENERIC, 100 + i))
        return sp

    @settings(max_examples=25, deadline=None)
    @given(
        oi=st.integers(0, 19),
        di=st.integers(0, 19),
        release=st.integers(0, 12),
        col_choice=st.integers(0, 3),
        data=st.data(),
    )
    def test_aborted_prepare_leaves_stores_bit_identical(
        self, oi, di, release, col_choice, data
    ):
        sp = self._loaded_planner()
        part = sp.partition
        top = band_cells(part, 0)
        bottom = band_cells(part, 1)
        w0 = sp._shards[0].worker
        w1 = sp._shards[1].worker
        before = (store_fingerprint(w0.planner), store_fingerprint(w1.planner))

        origin, dest = top[oi % len(top)], bottom[di % len(bottom)]
        exit_cell, entry_cell = sp._boundary_pair(0, 1, col_choice, dest[1])
        qid = 777
        prepared = []
        first = w0.handle({
            "op": "prepare", "id": qid, "origin": list(origin),
            "dest": list(exit_cell), "release": release,
            "rung": "full", "exit_to": list(entry_cell),
        })
        if first["status"] == "ok":
            prepared.append(w0)
            arrival = first["arrival"]
            second = w1.handle({
                "op": "prepare", "id": qid, "origin": list(entry_cell),
                "dest": list(dest), "release": arrival + 1, "rung": "full",
                "entry": {"from": list(exit_cell), "cell": list(entry_cell),
                          "time": arrival + 1},
            })
            if second["status"] == "ok":
                prepared.append(w1)
        # Sometimes abort only a prefix (a mid-transaction failure),
        # sometimes everything that prepared.
        n_abort = data.draw(st.integers(0, len(prepared)))
        for worker in prepared[:n_abort] + prepared[n_abort:]:
            reply = worker.handle({"op": "abort", "id": qid})
            assert reply["status"] == "ok"
        after = (store_fingerprint(w0.planner), store_fingerprint(w1.planner))
        assert after == before

    def test_abort_is_idempotent(self):
        sp = ShardedPlanner(WAREHOUSE, workers=2, mode="inline")
        worker = sp._shards[0].worker
        for _ in range(2):
            reply = worker.handle({"op": "abort", "id": 4242})
            assert reply == {"status": "ok", "removed": 0}

    def test_commit_binds_claims_into_record(self):
        """After prepare + commit, aborting removes the claims too."""
        sp = self._loaded_planner()
        part = sp.partition
        top = band_cells(part, 0)
        w0 = sp._shards[0].worker
        before = store_fingerprint(w0.planner)
        exit_cell, entry_cell = sp._boundary_pair(0, 1, 0, 5)
        qid = 888
        reply = w0.handle({
            "op": "prepare", "id": qid, "origin": list(top[7]),
            "dest": list(exit_cell), "release": 2, "rung": "full",
            "exit_to": list(entry_cell),
        })
        assert reply["status"] == "ok"
        assert w0.handle({"op": "commit", "id": qid})["status"] == "ok"
        assert store_fingerprint(w0.planner) != before
        assert w0.handle({"op": "abort", "id": qid})["status"] == "ok"
        assert store_fingerprint(w0.planner) == before


# ----------------------------------------------------------------------
# Single-shard equivalence and replay
# ----------------------------------------------------------------------
class TestSingleShardEquivalence:
    QUERIES = [
        ((1, 1), (26, 18)), ((25, 2), (2, 17)), ((3, 4), (5, 16)),
        ((20, 1), (22, 19)), ((10, 3), (24, 8)),
    ]

    def test_k1_routes_match_plain_planner(self):
        sharded = ShardedPlanner(WAREHOUSE, workers=1, mode="inline")
        plain = SRPPlanner(WAREHOUSE)
        for i, (o, d) in enumerate(self.QUERIES):
            q = Query(o, d, i, QueryKind.GENERIC, i)
            a, b = sharded.plan(q), plain.plan(q)
            assert (a.start_time, a.grids) == (b.start_time, b.grids)

    def test_recorded_session_replays_bit_for_bit(self):
        """A classic single-planner session trace replays exactly
        through the sharded service in ``--workers 1`` mode."""
        from repro.service.loadgen import LoadSpec, drive_simulated, make_schedule

        core = ServiceCore(
            SRPPlanner(WAREHOUSE),
            ServiceConfig(queue_capacity=64, default_deadline_ms=0),
        )
        schedule = make_schedule(WAREHOUSE, LoadSpec(n_queries=30, seed=11))
        drive_simulated(core, schedule, cost_ms=1, prune_every=0)
        trace = core.trace
        assert len(trace) >= 25
        report = replay_session(
            trace, ShardedPlanner(WAREHOUSE, workers=1, mode="inline")
        )
        for original, replayed in zip(trace.entries, report.replayed.entries):
            assert replayed.route.start_time == original.route.start_time
            assert replayed.route.grids == original.route.grids

    def test_multi_shard_runs_are_deterministic(self):
        def run():
            sp = ShardedPlanner(WAREHOUSE, workers=3, mode="inline")
            part = sp.partition
            top, bottom = band_cells(part, 0), band_cells(part, 2)
            return [
                sp.plan(Query(top[i], bottom[-1 - i], i, QueryKind.GENERIC, i))
                for i in range(8)
            ]

        first, second = run(), run()
        assert [(r.start_time, r.grids) for r in first] == [
            (r.start_time, r.grids) for r in second
        ]


# ----------------------------------------------------------------------
# Worker shard dispatch / codec envelope
# ----------------------------------------------------------------------
class TestShardWorkerOps:
    def test_unknown_op_is_structured_error(self):
        worker = ShardWorker(WAREHOUSE, 0, 1)
        reply = worker.handle({"op": "teleport"})
        assert reply["status"] == "error"
        assert "teleport" in reply["note"]

    def test_malformed_plan_is_structured_error(self):
        worker = ShardWorker(WAREHOUSE, 0, 1)
        reply = worker.handle({"op": "plan", "id": 1})  # no origin/dest
        assert reply["status"] == "error"

    def test_inline_shard_round_trips_codec(self):
        shard = InlineShard(ShardWorker(WAREHOUSE, 0, 1))
        assert shard.request({"op": "ping"})["status"] == "ok"
        # a message the strict codec rejects comes back as an error
        reply = shard.request({"op": 7})
        assert reply["status"] == "error"

    def test_worker_audit_op(self):
        sp = ShardedPlanner(WAREHOUSE, workers=2, mode="inline")
        top = band_cells(sp.partition, 0)
        bottom = band_cells(sp.partition, 1)
        route = sp.plan(Query(top[0], bottom[0], 0, query_id=1))
        for shard_id, shard in enumerate(sp._shards):
            worker = shard.worker
            violations = audit_planner_state(
                worker.planner, [route],
                cell_filter=lambda c, s=shard_id: (
                    sp.partition.region_of_cell(c) == s
                ),
            )
            assert violations == []


# ----------------------------------------------------------------------
# Process workers: spawn, shutdown, no orphans
# ----------------------------------------------------------------------
class TestProcessWorkers:
    def test_spawn_plan_and_clean_shutdown(self):
        sp = ShardedPlanner(WAREHOUSE, workers=2, mode="process")
        try:
            assert sp.workers_alive() == sp.shard_count == 2
            top = band_cells(sp.partition, 0)
            bottom = band_cells(sp.partition, 1)
            route = sp.plan(Query(top[0], bottom[0], 0, query_id=1))
            assert route.origin == top[0] and route.destination == bottom[0]
            assert sp.audit([route]) == []
        finally:
            sp.close()
        assert sp.workers_alive() == 0
        for shard in sp._shards:
            assert not shard.process.is_alive()

    def test_worker_survives_malformed_pipe_frames(self):
        """Garbage on the pipe gets a structured error; the worker lives."""
        sp = ShardedPlanner(WAREHOUSE, workers=2, mode="process")
        try:
            shard = sp._shards[0]
            with shard._lock:
                shard._conn.send_bytes(b"this is not json\n")
                error = json.loads(shard._conn.recv_bytes())
            assert error["status"] == "error"
            assert "JSON" in error["note"]
            assert shard.request({"op": "ping"})["status"] == "ok"
            assert shard.process.is_alive()
        finally:
            sp.close()
        assert sp.workers_alive() == 0

    def test_close_is_idempotent(self):
        sp = ShardedPlanner(WAREHOUSE, workers=2, mode="process")
        sp.close()
        sp.close()
        assert sp.workers_alive() == 0
