"""Tests for the task dispatching strategies."""


from repro import SRPPlanner, TaskTraceSpec, generate_tasks, run_day
from repro.simulation import (
    BatteryAwareDispatcher,
    FleetState,
    HungarianDispatcher,
    NearestIdleDispatcher,
    RobotFleet,
)
from repro.simulation.robots import Robot
from repro.types import Task


def make_tasks(*racks):
    return [Task(0, rack, (0, 0), task_id=i) for i, rack in enumerate(racks)]


class TestNearestIdleDispatcher:
    def test_fifo_with_nearest(self):
        fleet = RobotFleet([(0, 0), (10, 10)])
        tasks = make_tasks((9, 9), (1, 1))
        pairs = NearestIdleDispatcher().assign(tasks, fleet, now=0)
        # First task takes the nearest robot even if a later task would
        # have liked it more.
        assert pairs[0][0].task_id == 0 and pairs[0][1].cell == (10, 10)
        assert pairs[1][0].task_id == 1 and pairs[1][1].cell == (0, 0)

    def test_respects_busy(self):
        fleet = RobotFleet([(0, 0), (10, 10)])
        fleet.robots[1].busy_until = 100
        pairs = NearestIdleDispatcher().assign(make_tasks((9, 9)), fleet, now=0)
        assert len(pairs) == 1 and pairs[0][1].robot_id == 0

    def test_stops_when_no_idle(self):
        fleet = RobotFleet([(0, 0)])
        pairs = NearestIdleDispatcher().assign(make_tasks((1, 1), (2, 2)), fleet, 0)
        assert len(pairs) == 1


class TestFleetState:
    def test_tie_broken_by_id_not_list_order(self):
        # Two robots equidistant from the target, listed HIGH id first:
        # the lower id must still win, pinning deterministic dispatch
        # regardless of how a filter ordered the view.
        view = FleetState([Robot(3, (2, 0)), Robot(1, (0, 2))])
        assert view.nearest_idle((1, 1), now=0).robot_id == 1

    def test_nearest_beats_lower_id(self):
        view = FleetState([Robot(0, (5, 5)), Robot(7, (1, 1))])
        assert view.nearest_idle((0, 0), now=0).robot_id == 7

    def test_busy_robots_excluded(self):
        busy = Robot(0, (0, 0), busy_until=100)
        view = FleetState([busy, Robot(1, (9, 9))])
        assert view.idle_robots(now=10) == [view.robots[1]]
        assert view.nearest_idle((0, 0), now=10).robot_id == 1

    def test_empty_view(self):
        view = FleetState([])
        assert len(view) == 0
        assert view.nearest_idle((0, 0), now=0) is None

    def test_matches_robot_fleet_tiebreak(self):
        # RobotFleet (engine-owned) and FleetState (filter-owned) must
        # pick the same robot on ties: the battery axis swaps one for
        # the other and routes must not move.
        fleet = RobotFleet([(0, 2), (2, 0)])
        view = FleetState(fleet.robots)
        assert (
            fleet.nearest_idle((1, 1), 0).robot_id
            == view.nearest_idle((1, 1), 0).robot_id
        )


class TestBatteryAwareDispatcher:
    def test_hides_unavailable_robots(self):
        fleet = RobotFleet([(0, 0), (10, 10)])
        low = {0}  # robot 0 needs charge
        dispatcher = BatteryAwareDispatcher(
            NearestIdleDispatcher(), lambda r: r.robot_id in low
        )
        pairs = dispatcher.assign(make_tasks((1, 1)), fleet, now=0)
        # Nearest robot is 0, but it is battery-unavailable.
        assert len(pairs) == 1 and pairs[0][1].robot_id == 1

    def test_no_eligible_robots(self):
        fleet = RobotFleet([(0, 0)])
        dispatcher = BatteryAwareDispatcher(
            NearestIdleDispatcher(), lambda r: True
        )
        assert dispatcher.assign(make_tasks((1, 1)), fleet, now=0) == []

    def test_transparent_when_all_charged(self):
        fleet = RobotFleet([(0, 0), (10, 10)])
        tasks = make_tasks((9, 9), (1, 1))
        plain = NearestIdleDispatcher().assign(tasks, fleet, now=0)
        wrapped = BatteryAwareDispatcher(
            NearestIdleDispatcher(), lambda r: False
        ).assign(tasks, fleet, now=0)
        assert [(t.task_id, r.robot_id) for t, r in plain] == [
            (t.task_id, r.robot_id) for t, r in wrapped
        ]


class TestHungarianDispatcher:
    def test_globally_optimal(self):
        fleet = RobotFleet([(0, 0), (10, 10)])
        tasks = make_tasks((9, 9), (1, 1))
        pairs = HungarianDispatcher().assign(tasks, fleet, now=0)
        by_task = {t.task_id: r.cell for t, r in pairs}
        # Joint optimum crosses the greedy choice: task 0 -> far robot.
        assert by_task[0] == (10, 10)
        assert by_task[1] == (0, 0)

    def test_total_cost_never_worse_than_greedy(self):
        from repro.types import manhattan

        fleet_cells = [(0, 0), (3, 7), (12, 2)]
        tasks = make_tasks((2, 6), (11, 1), (1, 1))
        greedy = NearestIdleDispatcher().assign(tasks, RobotFleet(fleet_cells), 0)
        optimal = HungarianDispatcher().assign(tasks, RobotFleet(fleet_cells), 0)

        def cost(pairs):
            return sum(manhattan(r.cell, t.rack) for t, r in pairs)

        assert cost(optimal) <= cost(greedy)

    def test_empty_inputs(self):
        fleet = RobotFleet([(0, 0)])
        assert HungarianDispatcher().assign([], fleet, 0) == []
        fleet.robots[0].busy_until = 10
        assert HungarianDispatcher().assign(make_tasks((1, 1)), fleet, 0) == []

    def test_fifo_batching(self):
        fleet = RobotFleet([(0, 0)])
        tasks = make_tasks((5, 5), (0, 1))
        pairs = HungarianDispatcher().assign(tasks, fleet, 0)
        # Only the earliest task is considered for the single robot.
        assert len(pairs) == 1 and pairs[0][0].task_id == 0


class TestEndToEnd:
    def test_day_with_hungarian(self, small_warehouse):
        tasks = generate_tasks(small_warehouse, TaskTraceSpec(n_tasks=12, day_length=300, seed=9))
        result = run_day(
            small_warehouse,
            SRPPlanner(small_warehouse),
            tasks,
            validate=True,
            dispatcher=HungarianDispatcher(),
        )
        assert result.completed_tasks == 12
        assert result.conflicts == []

    def test_dispatchers_equivalent_completion(self, small_warehouse):
        tasks = generate_tasks(small_warehouse, TaskTraceSpec(n_tasks=10, day_length=200, seed=10))
        for dispatcher in (NearestIdleDispatcher(), HungarianDispatcher()):
            result = run_day(
                small_warehouse,
                SRPPlanner(small_warehouse),
                tasks,
                dispatcher=dispatcher,
            )
            assert result.completed_tasks == 10
