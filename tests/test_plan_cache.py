"""Tests for the versioned plan cache and the store version counters.

Correctness of the cache rests on one invariant: a store's ``version``
changes whenever its contents change, and no two content states — even
of different store incarnations for the same strip — ever share a
version.  These tests pin that invariant for every store backend, then
check the cache layers built on top of it: the LRU structure itself,
the encoded-plan round trip, and the planner-level guarantee that a
cached entry is never served stale.
"""

import pytest

from repro import Query, Warehouse
from repro.core.inter_strip import SearchConfig, SearchStats, plan_route
from repro.core.intra_strip import IntraPlan
from repro.core.naive_store import NaiveSegmentStore
from repro.core.plan_cache import MISSING, PlanCache, decode_plan, encode_plan
from repro.core.segments import Segment, make_move, make_wait
from repro.core.slope_index import SlopeIndexedStore
from repro.core.store_base import EMPTY_STORE, StripStoreMap
from repro.core.strips import build_strip_graph
from repro.core.time_bucket_store import TimeBucketStore

STORES = [NaiveSegmentStore, SlopeIndexedStore, TimeBucketStore]


class TestPlanCacheStructure:
    def test_miss_returns_sentinel(self):
        cache = PlanCache()
        assert cache.get(("k",)) is MISSING

    def test_put_then_get(self):
        cache = PlanCache()
        cache.put("a", (1, 2, 3))
        assert cache.get("a") == (1, 2, 3)
        assert "a" in cache and len(cache) == 1

    def test_negative_result_distinct_from_miss(self):
        cache = PlanCache()
        cache.put("failed", None)
        assert cache.get("failed") is None
        assert cache.get("failed") is not MISSING

    def test_lru_eviction_order(self):
        cache = PlanCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh: "b" is now least recent
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert cache.get("b") is MISSING
        assert cache.evictions == 1

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_clear(self):
        cache = PlanCache()
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0 and cache.get("a") is MISSING

    def test_raw_entries_is_live_view(self):
        cache = PlanCache()
        cache.put("a", 1)
        assert cache.raw_entries().get("a", MISSING) == 1
        assert cache.raw_entries().get("b", MISSING) is MISSING


class TestEncodedPlans:
    def test_round_trip(self):
        plan = IntraPlan(
            [Segment(5, 2, 9, 6), Segment(9, 6, 12, 6)], 5, 12, expansions=7
        )
        back = decode_plan(encode_plan(plan))
        assert back.start_time == 5 and back.arrival_time == 12
        assert back.expansions == 7
        assert [s.raw for s in back.segments] == [s.raw for s in plan.segments]

    def test_round_trip_empty_plan(self):
        plan = IntraPlan([], 3, 3)
        back = decode_plan(encode_plan(plan))
        assert back.segments == [] and back.arrival_time == 3

    def test_decode_returns_fresh_objects(self):
        plan = IntraPlan([Segment(0, 0, 4, 4)], 0, 4)
        flat = encode_plan(plan)
        assert decode_plan(flat).segments[0] is not decode_plan(flat).segments[0]

    def test_encoded_form_is_flat_ints(self):
        plan = IntraPlan([Segment(1, 0, 3, 2)], 1, 3, expansions=2)
        flat = encode_plan(plan)
        assert flat == (1, 3, 2, 1, 0, 3, 2)
        assert all(isinstance(x, int) for x in flat)


@pytest.mark.parametrize("store_cls", STORES)
class TestStoreVersions:
    def test_insert_bumps(self, store_cls):
        store = store_cls()
        v0 = store.version
        store.insert(make_move(0, 0, 5))
        assert store.version != v0

    def test_effective_prune_bumps(self, store_cls):
        store = store_cls()
        store.insert(make_move(0, 0, 3))
        v0 = store.version
        assert store.prune(10) == 1
        assert store.version != v0

    def test_noop_prune_keeps_version(self, store_cls):
        store = store_cls()
        store.insert(make_move(20, 0, 5))
        v0 = store.version
        assert store.prune(10) == 0
        assert store.version == v0

    def test_clear_bumps_only_nonempty(self, store_cls):
        store = store_cls()
        v0 = store.version
        store.clear()
        assert store.version == v0
        store.insert(make_move(0, 0, 3))
        v1 = store.version
        store.clear()
        assert store.version != v1

    def test_clear_on_empty_store_stays_usable(self, store_cls):
        # Regression for the SRP001 restructure: clear() now exits early
        # on an empty store — it must still reset the last_end high-water
        # mark and leave the store fully usable afterwards.
        store = store_cls()
        store.insert(make_move(0, 0, 3))
        store.prune(100)  # empties the store; last_end keeps its high-water
        v0 = store.version
        store.clear()
        assert store.version == v0  # no content change, no bump
        assert store.last_end == -1  # scalar reset still happens
        store.insert(make_move(5, 0, 3))
        assert len(store) == 1 and store.version != v0

    def test_effective_clear_resets_everything(self, store_cls):
        # Regression for the SRP001 restructure: the mutating path of
        # clear() bumps unconditionally, after the mutations.
        store = store_cls()
        store.insert(make_move(0, 0, 4))
        v0 = store.version
        store.clear()
        assert store.version != v0
        assert len(store) == 0 and store.last_end == -1
        store.insert(make_move(2, 0, 2))
        assert len(store) == 1

    def test_versions_never_repeat(self, store_cls):
        # The counter is process-global and monotone: a sequence of
        # mutations yields strictly fresh versions, so an old cache key
        # can never be revalidated by later changes.
        store = store_cls()
        seen = {store.version}
        for t in range(6):
            store.insert(make_move(4 * t, 0, 3))
            assert store.version not in seen
            seen.add(store.version)
        store.prune(100)
        assert store.version not in seen

    def test_two_stores_never_share_a_version(self, store_cls):
        a, b = store_cls(), store_cls()
        a.insert(make_move(0, 0, 3))
        b.insert(make_move(0, 0, 3))
        assert a.version != b.version


class TestStripStoreMapVersions:
    def test_empty_strip_reports_version_zero(self):
        stores = StripStoreMap(4, SlopeIndexedStore)
        assert stores.version_of(2) == EMPTY_STORE.version == 0

    def test_materialized_strip_reports_store_version(self):
        stores = StripStoreMap(4, SlopeIndexedStore)
        store = stores.materialize(1)
        store.insert(make_move(0, 0, 3))
        assert stores.version_of(1) == store.version != 0

    def test_prune_drop_cannot_resurrect_stale_entries(self):
        # A strip whose store empties out is dropped from the map and
        # reads as EMPTY_STORE (version 0) again.  Version 0 entries
        # are computed against *no traffic*, so they are valid for any
        # empty incarnation; a later re-materialised store draws a
        # fresh version, so entries cached against the old incarnation
        # stay unreachable forever.
        stores = StripStoreMap(4, SlopeIndexedStore)
        first = stores.materialize(1)
        first.insert(make_move(0, 0, 3))
        old_version = stores.version_of(1)
        stores.prune(50)  # drops the emptied store
        assert stores.version_of(1) == 0
        second = stores.materialize(1)
        second.insert(make_wait(0, 0, 5))
        assert stores.version_of(1) != old_version
        assert stores.version_of(1) != 0


OPEN = """
......
......
......
"""


def _fingerprint(plan):
    return (
        plan.start_time,
        plan.arrival_time,
        [(leg.strip, [s.raw for s in leg.segments]) for leg in plan.legs],
    )


class TestSearchLevelCaching:
    def _world(self):
        wh = Warehouse.from_ascii(OPEN)
        graph = build_strip_graph(wh)
        stores = StripStoreMap(graph.n_vertices, SlopeIndexedStore)
        return graph, stores

    def _commit(self, stores, plan):
        for leg in plan.legs:
            store = stores.materialize(leg.strip)
            if leg.entry is not None:
                store.insert(leg.entry.point)
            for seg in leg.segments:
                store.insert(seg)

    def test_repeat_search_is_served_from_cache(self):
        graph, stores = self._world()
        cache = PlanCache()
        config = SearchConfig()
        # Commit one route so later searches actually touch traffic
        # (the cache deliberately skips empty strips).
        warm = plan_route(graph, stores, set(), Query((0, 0), (2, 5), 0), config)
        self._commit(stores, warm)

        query = Query((2, 0), (0, 5), 0)
        first_stats = SearchStats()
        first = plan_route(graph, stores, set(), query, config, first_stats, cache)
        second_stats = SearchStats()
        second = plan_route(graph, stores, set(), query, config, second_stats, cache)

        assert first_stats.cache_misses > 0
        assert second_stats.cache_misses == 0
        assert (
            second_stats.cache_hits + second_stats.cache_negative_hits
            == first_stats.cache_misses
        )
        assert _fingerprint(first) == _fingerprint(second)

    def test_insert_invalidates_previous_entries(self):
        graph, stores = self._world()
        cache = PlanCache()
        config = SearchConfig()
        warm = plan_route(graph, stores, set(), Query((0, 0), (2, 5), 0), config)
        self._commit(stores, warm)

        query = Query((2, 0), (0, 5), 0)
        plan_route(graph, stores, set(), query, config, SearchStats(), cache)
        # New traffic in the strips the route used: every key touching
        # those strips now carries a fresh version.
        self._commit(
            stores,
            plan_route(graph, stores, set(), Query((1, 0), (1, 5), 0), config),
        )
        stats = SearchStats()
        replanned = plan_route(graph, stores, set(), query, config, stats, cache)
        uncached = plan_route(graph, stores, set(), query, config, SearchStats())
        assert _fingerprint(replanned) == _fingerprint(uncached)


class TestMaxDurationPruneRegression:
    """``prune`` must shrink the candidate look-back windows again."""

    def test_naive_store_shrinks_window(self):
        store = NaiveSegmentStore()
        store.insert(make_wait(0, 5, 30))  # duration 30
        store.insert(make_move(40, 0, 3))
        assert store._max_duration == 30
        store.prune(35)  # the long wait is history
        assert store._max_duration == 3

    def test_slope_store_shrinks_per_slope_windows(self):
        store = SlopeIndexedStore()
        store.insert(make_wait(0, 5, 30))  # slope 0, duration 30
        store.insert(make_move(40, 0, 6))  # slope +1, duration 6
        store.insert(make_move(41, 9, 4))  # slope -1, duration 5
        assert store._max_durations[0] == 30
        store.prune(35)
        assert store._max_durations[0] == 0
        assert store._max_durations[1] == 6
        assert store._max_durations[-1] == 5

    def test_slope_store_windows_stay_correct_after_prune(self):
        store = SlopeIndexedStore()
        store.insert(make_wait(0, 5, 30))
        store.insert(make_wait(50, 5, 4))
        store.prune(40)
        # The surviving wait must still be found by a query overlapping
        # its span even though the window shrank.
        probe = Segment(53, 5, 53, 5)
        hit = store.earliest_conflict(probe)
        assert hit is not None and hit[0] == 53
