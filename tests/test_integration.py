"""Cross-module integration and property tests.

These exercise the whole stack the way the evaluation harness does:
random warehouses, online query streams, every planner — and assert the
global invariants (collision-freedom, route validity, effectiveness
sanity) that the paper's experiments rely on.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    ACPPlanner,
    LayoutSpec,
    Query,
    RPPlanner,
    SAPPlanner,
    SRPPlanner,
    TaskTraceSpec,
    TWPPlanner,
    generate_layout,
    generate_tasks,
    run_day,
)
from repro.analysis import find_conflicts
from repro.types import manhattan

ALL_PLANNERS = [SRPPlanner, SAPPlanner, TWPPlanner, RPPlanner, ACPPlanner]


def online_stream(warehouse, n_queries, seed, window):
    rng = random.Random(seed)
    pool = warehouse.free_cells() + warehouse.rack_cells()
    releases = sorted(rng.randrange(0, window) for _ in range(n_queries))
    queries = []
    for k, release in enumerate(releases):
        o = pool[rng.randrange(len(pool))]
        d = pool[rng.randrange(len(pool))]
        queries.append(Query(o, d, release, query_id=k))
    return queries


@pytest.mark.parametrize("planner_cls", ALL_PLANNERS)
def test_online_stream_collision_free_and_sane(mid_warehouse, planner_cls):
    planner = planner_cls(mid_warehouse)
    queries = online_stream(mid_warehouse, 50, seed=77, window=600)
    routes = {}
    for q in queries:
        route = planner.plan(q)
        assert route.origin == q.origin
        assert route.destination == q.destination
        assert route.start_time >= q.release_time
        assert route.is_unit_speed()
        routes[q.query_id] = route
        routes.update(planner.take_revisions())
    assert find_conflicts(list(routes.values())) == []


def test_srp_effectiveness_close_to_sap(mid_warehouse):
    """Sec. VII-A: SRP's routes are near-optimal; compare total durations."""
    queries = online_stream(mid_warehouse, 60, seed=78, window=900)
    totals = {}
    for planner_cls in (SRPPlanner, SAPPlanner):
        planner = planner_cls(mid_warehouse)
        totals[planner.name] = sum(planner.plan(q).duration for q in queries)
    # The theory bounds a single route at 1.788x; whole streams in
    # light-to-moderate traffic stay well under that.
    assert totals["SRP"] <= 1.3 * totals["SAP"]


def test_all_planners_same_day_same_trace(small_warehouse):
    tasks = generate_tasks(small_warehouse, TaskTraceSpec(n_tasks=10, day_length=300, seed=55))
    makespans = {}
    for planner_cls in ALL_PLANNERS:
        result = run_day(small_warehouse, planner_cls(small_warehouse), tasks, validate=True)
        assert result.conflicts == []
        assert result.failed_tasks == 0
        makespans[result.planner_name] = result.makespan
    best, worst = min(makespans.values()), max(makespans.values())
    # Reasonable effectiveness for everyone (Table III spirit).
    assert worst <= 1.25 * best


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    h=st.integers(20, 34),
    w=st.integers(14, 26),
    l=st.integers(2, 5),
)
def test_srp_collision_free_on_random_worlds(seed, h, w, l):
    """Property: on any generated layout, an online SRP stream of
    queries never produces a pairwise route conflict."""
    spec = LayoutSpec(
        height=h, width=w, cluster_length=l, n_pickers=2, n_robots=2, seed=seed % 100
    )
    warehouse = generate_layout(spec)
    planner = SRPPlanner(warehouse)
    queries = online_stream(warehouse, 24, seed=seed, window=200)
    routes = []
    for q in queries:
        routes.append(planner.plan(q))
    assert find_conflicts(routes) == []


def test_srp_duration_lower_bound(mid_warehouse):
    planner = SRPPlanner(mid_warehouse)
    queries = online_stream(mid_warehouse, 40, seed=79, window=500)
    for q in queries:
        route = planner.plan(q)
        assert route.duration >= manhattan(q.origin, q.destination)


def test_day_simulation_snapshot_monotonicity(small_warehouse):
    tasks = generate_tasks(small_warehouse, TaskTraceSpec(n_tasks=16, day_length=400, seed=66))
    result = run_day(small_warehouse, SRPPlanner(small_warehouse), tasks, snapshot_every=0.1)
    times = [s.sim_time for s in result.snapshots]
    assert times == sorted(times)
    mcs = [s.mc_bytes for s in result.snapshots]
    assert all(m is not None and m > 0 for m in mcs)
