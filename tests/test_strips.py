"""Tests for strip aggregation and the strip graph (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import LayoutSpec, Warehouse, build_strip_graph, generate_layout
from repro.core.strips import Direction, StripKind, TransitRange


class TestStripDecomposition:
    def test_full_rows_become_latitudinal_aisles(self, tiny_warehouse):
        graph = build_strip_graph(tiny_warehouse)
        lat = [s for s in graph.strips if s.direction is Direction.LATITUDINAL]
        # Rows 0, 4, 7 of the tiny warehouse are fully free.
        assert sorted(s.alpha[0] for s in lat) == [0, 4, 7]
        assert all(s.kind is StripKind.AISLE for s in lat)
        assert all(s.length == tiny_warehouse.width for s in lat)

    def test_rack_columns_become_rack_strips(self, tiny_warehouse):
        graph = build_strip_graph(tiny_warehouse)
        racks = [s for s in graph.strips if s.kind is StripKind.RACK]
        assert all(s.direction is Direction.LONGITUDINAL for s in racks)
        # 2 cluster rows x 2 clusters x 2 columns = 8 rack strips.
        assert len(racks) == 8

    def test_partition_covers_every_cell(self, small_warehouse):
        graph = build_strip_graph(small_warehouse)
        seen = np.zeros(small_warehouse.shape, dtype=int)
        for strip in graph.strips:
            for pos in range(strip.length):
                i, j = strip.grid_at(pos)
                seen[i, j] += 1
        assert (seen == 1).all()

    def test_strips_are_uniform_value(self, small_warehouse):
        graph = build_strip_graph(small_warehouse)
        for strip in graph.strips:
            values = {
                small_warehouse.is_rack(strip.grid_at(pos))
                for pos in range(strip.length)
            }
            assert len(values) == 1
            assert (strip.kind is StripKind.RACK) == values.pop()

    def test_longitudinal_runs_maximal(self, small_warehouse):
        """No two vertically adjacent strips in one column share a value."""
        graph = build_strip_graph(small_warehouse)
        for strip in graph.strips:
            if strip.direction is not Direction.LONGITUDINAL:
                continue
            above = (strip.alpha[0] - 1, strip.alpha[1])
            if small_warehouse.in_bounds(above):
                other = graph.strip_of(above)
                if other.direction is Direction.LONGITUDINAL:
                    assert (other.kind is StripKind.RACK) != (strip.kind is StripKind.RACK)


class TestStripCoordinates:
    def test_locate_round_trip(self, small_warehouse):
        graph = build_strip_graph(small_warehouse)
        for cell in [(0, 0), (5, 3), (27, 19), (10, 10)]:
            idx, pos = graph.locate(cell)
            assert graph.strips[idx].grid_at(pos) == cell

    def test_local_and_grid_at_inverse(self, tiny_warehouse):
        graph = build_strip_graph(tiny_warehouse)
        for strip in graph.strips:
            for pos in range(strip.length):
                assert strip.local(strip.grid_at(pos)) == pos

    def test_grid_at_out_of_range(self, tiny_warehouse):
        graph = build_strip_graph(tiny_warehouse)
        with pytest.raises(IndexError):
            graph.strips[0].grid_at(-1)
        with pytest.raises(IndexError):
            graph.strips[0].grid_at(graph.strips[0].length)

    def test_contains(self, tiny_warehouse):
        graph = build_strip_graph(tiny_warehouse)
        strip = graph.strip_of((0, 3))
        assert strip.contains((0, 3))
        assert not strip.contains((1, 3))


class TestStripEdges:
    def test_no_rack_rack_edges(self, small_warehouse):
        graph = build_strip_graph(small_warehouse)
        for u, adj in enumerate(graph.adjacency):
            for v in adj:
                assert graph.strips[u].is_aisle or graph.strips[v].is_aisle

    def test_edges_symmetric(self, small_warehouse):
        graph = build_strip_graph(small_warehouse)
        for u, adj in enumerate(graph.adjacency):
            for v in adj:
                assert u in graph.adjacency[v]

    def test_transit_ranges_map_to_adjacent_cells(self, small_warehouse):
        graph = build_strip_graph(small_warehouse)
        for u, adj in enumerate(graph.adjacency):
            for v, ranges in adj.items():
                for r in ranges:
                    for pos in (r.lo, r.hi):
                        a = graph.strips[u].grid_at(pos)
                        b = graph.strips[v].grid_at(pos + r.offset)
                        assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_side_by_side_range(self):
        wh = Warehouse.from_ascii("....\n....")
        graph = build_strip_graph(wh)
        assert graph.n_vertices == 2
        ranges = graph.adjacency[0][1]
        assert ranges == [TransitRange(0, 3, 0)]

    def test_perpendicular_single_transit(self):
        wh = Warehouse.from_ascii("....\n.#.#\n.#.#")
        graph = build_strip_graph(wh)
        row = graph.strip_of((0, 0))
        col = graph.strip_of((1, 0))
        ranges = graph.adjacency[row.index][col.index]
        assert len(ranges) == 1
        assert ranges[0].lo == ranges[0].hi == 0

    def test_clamp(self):
        r = TransitRange(2, 6, 1)
        assert r.clamp(0) == 2
        assert r.clamp(4) == 4
        assert r.clamp(9) == 6


class TestReductionStats:
    def test_counts_consistent(self, mid_warehouse):
        graph = build_strip_graph(mid_warehouse)
        stats = graph.reduction_stats()
        assert stats["strip_vertices"] == graph.n_vertices == len(graph.strips)
        assert stats["grid_vertices"] == mid_warehouse.n_cells
        assert 0 < stats["vertex_ratio"] < 1
        assert 0 < stats["edge_ratio"] < 1

    def test_regular_layout_reduces_hard(self):
        spec = LayoutSpec(height=60, width=40, cluster_length=8, n_pickers=4, n_robots=4)
        graph = build_strip_graph(generate_layout(spec))
        # The paper reports ~16%; regular layouts land well under 1/3.
        assert graph.reduction_stats()["vertex_ratio"] < 0.33

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(2, 5),
        st.integers(20, 40),
        st.integers(14, 24),
        st.floats(0.3, 1.0),
    )
    def test_partition_property_on_random_layouts(self, l, h, w, fill):
        spec = LayoutSpec(
            height=h, width=w, cluster_length=l, n_pickers=2, n_robots=2, fill_ratio=fill
        )
        wh = generate_layout(spec)
        graph = build_strip_graph(wh)
        total = sum(s.length for s in graph.strips)
        assert total == wh.n_cells
