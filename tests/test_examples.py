"""Smoke tests: every shipped example must run to completion."""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "collision-free" in result.stdout

    def test_custom_layout(self):
        result = run_example("custom_layout.py")
        assert result.returncode == 0, result.stderr
        assert "strip inventory" in result.stdout
        assert "round-tripped" in result.stdout

    def test_warehouse_day_small(self):
        result = run_example("warehouse_day.py", "0.2", "25")
        assert result.returncode == 0, result.stderr
        assert "OG (makespan)" in result.stdout
        assert "SRP" in result.stdout and "SAP" in result.stdout

    def test_planner_shootout_small(self):
        result = run_example("planner_shootout.py", "0.2", "20")
        assert result.returncode == 0, result.stderr
        for name in ("SRP", "SAP", "RP", "TWP", "ACP"):
            assert name in result.stdout

    def test_congestion_study(self):
        result = run_example("congestion_study.py")
        assert result.returncode == 0, result.stderr
        assert "mean CR" in result.stdout
        assert "traffic snapshot" in result.stdout

    def test_ablation_tour(self):
        result = run_example("ablation_tour.py")
        assert result.returncode == 0, result.stderr
        assert "ablation axes" in result.stdout
        assert "exact + backward" in result.stdout
