"""Tests for the lazy per-strip store map and the shared empty store."""

import pytest

from repro.core.naive_store import NaiveSegmentStore
from repro.core.segments import Segment, make_move
from repro.core.slope_index import SlopeIndexedStore
from repro.core.store_base import EMPTY_STORE, StripStoreMap


class TestEmptyStore:
    def test_reads_are_trivial(self):
        assert EMPTY_STORE.earliest_conflict(Segment(0, 0, 5, 5)) is None
        assert EMPTY_STORE.earliest_block(Segment(0, 0, 5, 5)) is None
        assert not EMPTY_STORE.occupied(0, 0)
        assert not EMPTY_STORE.move_blocked(0, 0, 1)
        assert len(EMPTY_STORE) == 0
        assert list(EMPTY_STORE.iter_segments()) == []
        assert EMPTY_STORE.prune(100) == 0

    def test_writes_rejected(self):
        with pytest.raises(TypeError):
            EMPTY_STORE.insert(Segment(0, 0, 1, 1))


class TestStripStoreMap:
    def test_reads_share_empty_store(self):
        stores = StripStoreMap(5, SlopeIndexedStore)
        assert stores[0] is EMPTY_STORE
        assert stores[4] is EMPTY_STORE
        assert stores.total_segments() == 0
        assert list(stores) == []

    def test_materialize_creates_once(self):
        stores = StripStoreMap(5, SlopeIndexedStore)
        a = stores.materialize(2)
        b = stores.materialize(2)
        assert a is b
        assert stores[2] is a
        assert isinstance(a, SlopeIndexedStore)

    def test_materialize_out_of_range(self):
        stores = StripStoreMap(3, NaiveSegmentStore)
        with pytest.raises(IndexError):
            stores.materialize(3)
        with pytest.raises(IndexError):
            stores.materialize(-1)

    def test_total_segments(self):
        stores = StripStoreMap(4, NaiveSegmentStore)
        stores.materialize(0).insert(make_move(0, 0, 3))
        stores.materialize(2).insert(make_move(5, 1, 4))
        stores.materialize(2).insert(make_move(9, 4, 1))
        assert stores.total_segments() == 3

    def test_prune_drops_empty_stores(self):
        stores = StripStoreMap(4, NaiveSegmentStore)
        stores.materialize(1).insert(make_move(0, 0, 3))
        stores.materialize(2).insert(make_move(50, 0, 3))
        assert stores.prune(20) == 1
        # Strip 1 emptied out and was deallocated.
        assert stores[1] is EMPTY_STORE
        assert stores[2] is not EMPTY_STORE

    def test_clear(self):
        stores = StripStoreMap(4, NaiveSegmentStore)
        stores.materialize(1).insert(make_move(0, 0, 3))
        stores.clear()
        assert stores.total_segments() == 0
        assert stores[1] is EMPTY_STORE

    def test_len_is_strip_count(self):
        assert len(StripStoreMap(7, NaiveSegmentStore)) == 7

    def test_iteration_covers_active_only(self):
        stores = StripStoreMap(6, NaiveSegmentStore)
        stores.materialize(3).insert(make_move(0, 0, 2))
        stores.materialize(5)
        assert len(list(stores)) == 2
        assert len(dict(stores.active_items())) == 2
