"""Joint conflict-cluster recovery, end to end.

The contract under test (docs/robustness.md):

* :func:`stretch_route_suffix` slows a route exactly — same cells, same
  order, integer hold/move interleaving, pure and deterministic;
* conflict clustering groups exactly the route suffixes whose
  components contain a conflict (union-find over pairwise conflicts),
  in a deterministic order;
* the planner's cluster recovery API (decommit, pre-hold,
  externally planned commit) keeps stores exactly consistent with the
  surviving routes;
* a dense seeded fault storm — at least eight simultaneously active
  disturbances of all four kinds — completes audit-clean under both
  recovery modes, with ``recovery="joint"`` spending *strictly fewer*
  replan attempts and decommitted segments than serial;
* joint recovery is bit-reproducible from the seed and bit-identical
  to an undisturbed run when the fault plan is empty.
"""

from dataclasses import dataclass

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import audit_planner_state
from repro.baselines.cbs import ClusterAgent, solve_conflict_cluster
from repro.core.planner import SRPPlanner
from repro.exceptions import PlanningFailedError, SimulationError
from repro.simulation import (
    FaultPlan,
    Simulation,
    build_clusters,
    recovery_priority,
    run_day,
    stretch_route_suffix,
)
from repro.types import Query, Route
from repro.warehouse import TaskTraceSpec, generate_tasks, w1


# ----------------------------------------------------------------------
# Lightweight stand-ins for engine-internal owners
# ----------------------------------------------------------------------
@dataclass
class _StubRobot:
    robot_id: int


@dataclass
class _StubActive:
    """Duck-typed _ActiveTask: what clustering and priority inspect."""

    query_id: int
    robot: _StubRobot
    stage: int = 0
    charging: bool = False


def _active(query_id: int, robot_id: int, stage: int = 0) -> _StubActive:
    return _StubActive(query_id, _StubRobot(robot_id), stage)


class TestStretchRouteSuffix:
    def test_factor_below_two_rejected(self):
        route = Route(0, [(0, 0), (0, 1)])
        with pytest.raises(SimulationError):
            stretch_route_suffix(route, 0, 1, 10)

    def test_every_move_stretched_inside_window(self):
        route = Route(0, [(0, 0), (0, 1), (0, 2)], query_id=7)
        slowed = stretch_route_suffix(route, 0, 2, until=100)
        assert slowed.start_time == 0
        assert slowed.query_id == 7
        assert slowed.grids == [(0, 0), (0, 0), (0, 1), (0, 1), (0, 2)]

    def test_moves_after_window_keep_unit_speed(self):
        route = Route(0, [(0, 0), (0, 1), (0, 2), (0, 3)])
        slowed = stretch_route_suffix(route, 0, 3, until=3)
        # First move departs at t=0 < 3 (stretched to 3s, arriving t=3);
        # later moves depart at t>=3 and stay one second each.
        assert slowed.grids == [(0, 0), (0, 0), (0, 0), (0, 1), (0, 2), (0, 3)]

    def test_holds_are_never_stretched(self):
        route = Route(0, [(0, 0), (0, 0), (0, 1)])
        slowed = stretch_route_suffix(route, 0, 2, until=100)
        assert slowed.grids == [(0, 0), (0, 0), (0, 0), (0, 1)]

    def test_suffix_starts_at_committed_anchor(self):
        route = Route(0, [(0, 0), (0, 1), (0, 2), (0, 3)])
        slowed = stretch_route_suffix(route, 2, 2, until=100)
        assert slowed.start_time == 2
        assert slowed.origin == (0, 2)
        assert slowed.destination == (0, 3)

    def test_parked_route_anchors_at_departure(self):
        route = Route(10, [(0, 0), (0, 1)])
        slowed = stretch_route_suffix(route, 4, 2, until=100)
        assert slowed.start_time == 10
        assert slowed.grids == [(0, 0), (0, 0), (0, 1)]

    def test_pure_and_deterministic(self):
        route = Route(3, [(1, 1), (1, 2), (2, 2), (2, 3)])
        a = stretch_route_suffix(route, 4, 3, until=9)
        b = stretch_route_suffix(route, 4, 3, until=9)
        assert a.start_time == b.start_time and a.grids == b.grids
        assert route.grids == [(1, 1), (1, 2), (2, 2), (2, 3)]  # input untouched


class TestRecoveryPriority:
    def test_carrying_before_pickup_ties_by_robot_then_query(self):
        carrying = _active(5, robot_id=9, stage=1)
        pickup_low = _active(7, robot_id=2, stage=0)
        pickup_high = _active(6, robot_id=4, stage=0)
        ordered = sorted(
            [pickup_high, pickup_low, carrying], key=recovery_priority
        )
        assert [a.query_id for a in ordered] == [5, 7, 6]

    def test_same_robot_recovers_earlier_query_first(self):
        a = _active(11, robot_id=3, stage=1)
        b = _active(4, robot_id=3, stage=2)
        assert sorted([a, b], key=recovery_priority)[0].query_id == 4

    def test_charge_trips_rank_between_carrying_and_pickup(self):
        carrying = _active(1, robot_id=5, stage=2)
        pickup = _active(2, robot_id=1, stage=0)
        charge = _StubActive(3, _StubRobot(9), stage=0, charging=True)
        ordered = sorted([pickup, charge, carrying], key=recovery_priority)
        assert [a.query_id for a in ordered] == [1, 3, 2]


class TestBuildClusters:
    def test_conflicting_pair_clusters_disjoint_robot_stays_out(self):
        crossing_a = Route(0, [(0, 0), (0, 1), (0, 2)])
        crossing_b = Route(0, [(0, 2), (0, 1), (0, 0)])
        far_away = Route(0, [(5, 0), (5, 1)])
        owners = [_active(1, 1), _active(2, 2), _active(3, 3)]
        clusters = build_clusters([crossing_a, crossing_b, far_away], owners)
        assert len(clusters) == 1
        assert {a.query_id for a in clusters[0]} == {1, 2}

    def test_blockage_pseudo_route_joins_but_is_not_recovered(self):
        blocked = Route(0, [(0, 1)] * 4)  # standing obstacle on the path
        victim = Route(0, [(0, 0), (0, 1), (0, 2)])
        clusters = build_clusters([blocked, victim], [None, _active(9, 1)])
        assert len(clusters) == 1
        assert [a.query_id for a in clusters[0]] == [9]

    def test_must_recover_forces_conflict_free_member(self):
        lonely = Route(0, [(4, 4), (4, 5)])
        clusters = build_clusters([lonely], [_active(6, 2)], must_recover=[6])
        assert [[a.query_id for a in c] for c in clusters] == [[6]]
        assert build_clusters([lonely], [_active(6, 2)]) == []

    def test_transitive_conflicts_merge_into_one_cluster(self):
        a = Route(0, [(0, 0), (0, 1)])
        b = Route(0, [(0, 1), (0, 0)])  # swap with a
        c = Route(1, [(0, 1), (0, 2)])  # vertex clash with b's start
        owners = [_active(1, 1), _active(2, 2), _active(3, 3)]
        clusters = build_clusters([a, b, c], owners)
        assert len(clusters) == 1
        assert {x.query_id for x in clusters[0]} == {1, 2, 3}

    def test_cluster_order_is_deterministic_by_smallest_member(self):
        pair_one = [Route(0, [(5, 0), (5, 1)]), Route(0, [(5, 1), (5, 0)])]
        pair_two = [Route(0, [(0, 0), (0, 1)]), Route(0, [(0, 1), (0, 0)])]
        owners = [_active(10, 7), _active(11, 8), _active(12, 1), _active(13, 2)]
        clusters = build_clusters(pair_one + pair_two, owners)
        assert [min(a.robot.robot_id for a in c) for c in clusters] == [1, 7]


class TestClusterRecoveryAPI:
    def _planned(self, warehouse):
        planner = SRPPlanner(warehouse)
        free = warehouse.free_cells()
        route = planner.plan(Query(free[0], free[-1], 0, query_id=1))
        assert route.duration >= 4
        mid = route.start_time + route.duration // 2
        return planner, route, mid, route.position_at(mid)

    def test_decommit_strips_to_executed_prefix(self, small_warehouse):
        planner, route, mid, cell = self._planned(small_warehouse)
        removed = planner.decommit_for_recovery(1, cell, mid)
        assert removed > 0
        prefix = planner.committed_route(1)
        assert prefix.start_time == route.start_time
        assert prefix.finish_time == mid and prefix.destination == cell
        assert planner.take_revisions() == {1: prefix}
        assert audit_planner_state(planner, [prefix]) == []
        # Idempotent at the same instant: nothing further to remove.
        assert planner.decommit_for_recovery(1, cell, mid) == 0

    def test_recovery_hold_is_visible_idempotent_and_releasable(
        self, small_warehouse
    ):
        planner, _route, mid, cell = self._planned(small_warehouse)
        planner.decommit_for_recovery(1, cell, mid)
        assert not planner.cell_occupied(cell, mid + 3)
        planner.commit_recovery_hold(1, cell, mid, mid + 5)
        planner.commit_recovery_hold(1, cell, mid, mid + 500)  # no-op while held
        assert planner.cell_occupied(cell, mid + 3)
        assert not planner.cell_occupied(cell, mid + 50)
        planner.release_recovery_hold(1)
        assert not planner.cell_occupied(cell, mid + 3)
        planner.release_recovery_hold(1)  # no-op when nothing is held
        # The transient hold leaves no residue behind.
        assert audit_planner_state(planner, [planner.committed_route(1)]) == []

    def test_commit_recovered_route_restores_consistency(self, small_warehouse):
        planner, route, mid, cell = self._planned(small_warehouse)
        planner.decommit_for_recovery(1, cell, mid)
        suffix = Route(
            mid,
            [route.position_at(t) for t in range(mid, route.finish_time + 1)],
        )
        revised = planner.commit_recovered_route(1, cell, mid, suffix)
        assert revised.start_time == route.start_time
        assert revised.grids == route.grids
        assert audit_planner_state(planner, [revised]) == []

    def test_commit_recovered_route_validates_suffix(self, small_warehouse):
        planner, route, mid, cell = self._planned(small_warehouse)
        planner.decommit_for_recovery(1, cell, mid)
        from repro.exceptions import InvalidQueryError

        with pytest.raises(InvalidQueryError):  # wrong origin
            planner.commit_recovered_route(
                1, cell, mid, Route(mid, [route.destination])
            )
        with pytest.raises(InvalidQueryError):  # wrong destination
            planner.commit_recovered_route(1, cell, mid, Route(mid, [cell]))
        with pytest.raises(InvalidQueryError):  # departs before the anchor
            planner.commit_recovered_route(
                1,
                cell,
                mid,
                Route(
                    mid - 1,
                    [cell]
                    + [route.position_at(t) for t in range(mid, route.finish_time + 1)],
                ),
            )


class TestSolveConflictCluster:
    def test_swap_pair_resolved_with_standing_pads(self, tiny_warehouse):
        planner = SRPPlanner(tiny_warehouse)
        agents = [
            ClusterAgent(query_id=1, origin=(0, 0), destination=(0, 3),
                         release=4, stand_from=2),
            ClusterAgent(query_id=2, origin=(0, 3), destination=(0, 0),
                         release=4, stand_from=2),
        ]
        routes = solve_conflict_cluster(
            tiny_warehouse, agents, planner.distance_maps,
            base_checker=planner.recovery_checker(),
        )
        assert routes is not None and len(routes) == 2
        for agent, route in zip(agents, routes):
            # Padded back to the anchor: standing presence is modelled.
            assert route.start_time == agent.stand_from
            assert route.origin == agent.origin
            assert route.destination == agent.destination
            assert all(
                route.position_at(t) == agent.origin
                for t in range(agent.stand_from, agent.release)
            )
        from repro.analysis import assert_collision_free

        assert_collision_free(routes)


class TestFaultStorm:
    """Acceptance: dense overlapping disturbances, serial vs joint."""

    SCALE = 0.35
    STORM = dict(n_stalls=60, n_blockages=30, n_slowdowns=12, n_closures=8,
                 seed=9)

    @pytest.fixture(scope="class")
    def w1_small(self):
        return w1(scale=self.SCALE)

    @pytest.fixture(scope="class")
    def w1_tasks(self, w1_small):
        return generate_tasks(
            w1_small, TaskTraceSpec(n_tasks=90, day_length=450, seed=3)
        )

    @pytest.fixture(scope="class")
    def storm(self, w1_small):
        return FaultPlan.generate(
            w1_small,
            n_robots=len(w1_small.robot_homes),
            day_length=300,
            **self.STORM,
        )

    @pytest.fixture(scope="class")
    def results(self, w1_small, w1_tasks, storm):
        return {
            mode: run_day(
                w1_small, SRPPlanner(w1_small), w1_tasks,
                validate=True, measure_memory=False, faults=storm,
                recovery=mode,
            )
            for mode in ("serial", "joint")
        }

    def test_storm_is_dense_and_mixed(self, storm):
        assert storm.stalls and storm.blockages
        assert storm.slowdowns and storm.closures
        windows = [(f.time, f.time + f.duration) for f in storm]
        peak = max(
            sum(a <= t <= b for a, b in windows)
            for t in range(max(b for _, b in windows) + 1)
        )
        assert peak >= 8, "storm must overlap >= 8 disturbances in one window"

    @pytest.mark.parametrize("mode", ["serial", "joint"])
    def test_storm_day_is_audit_clean(self, results, storm, mode):
        result = results[mode]
        assert result.recovery == mode
        assert result.faults_injected == len(storm)
        assert result.conflicts == []
        assert result.audit_violations == []
        assert result.failed_tasks == 0
        assert result.slowdown_stretches > 0
        assert result.closure_cells > 0

    def test_joint_recovers_clusters(self, results):
        joint = results["joint"]
        assert joint.recovery_clusters > 0
        assert joint.cluster_robots >= joint.recovery_clusters
        assert joint.max_cluster_size >= 1
        recovered = [
            e for e in joint.recovery_events if e["event"] == "cluster-recovered"
        ]
        assert len(recovered) == joint.recovery_clusters
        assert all(e["strategy"] in ("prioritised", "cbs", "serial")
                   for e in recovered)

    def test_joint_beats_serial_on_attempts_and_decommits(self, results):
        serial, joint = results["serial"], results["joint"]
        assert joint.replan_attempts < serial.replan_attempts
        assert joint.decommitted_segments < serial.decommitted_segments

    def test_joint_storm_reproduces_bit_identically(
        self, w1_small, w1_tasks, storm
    ):
        def day():
            sim = Simulation(
                w1_small, SRPPlanner(w1_small), w1_tasks,
                validate=False, measure_memory=False, faults=storm,
                recovery="joint",
            )
            result = sim.run()
            routes = {
                q: (r.start_time, tuple(r.grids)) for q, r in sim._routes.items()
            }
            counters = (
                result.replans, result.replan_attempts,
                result.decommitted_segments, result.recovery_clusters,
                result.makespan,
            )
            return routes, counters

        assert day() == day()

    def test_failed_ladder_escalates_to_cbs(
        self, w1_small, w1_tasks, storm, monkeypatch
    ):
        original = SRPPlanner.replan_from

        def failing(self, query_id, cell, now, hold_until=None, *,
                    decommitted=False):
            if decommitted:
                raise PlanningFailedError(
                    "forced ladder failure", query_id=query_id,
                    release_time=now, phase="test",
                )
            return original(self, query_id, cell, now, hold_until,
                            decommitted=decommitted)

        monkeypatch.setattr(SRPPlanner, "replan_from", failing)
        result = run_day(
            w1_small, SRPPlanner(w1_small), w1_tasks,
            validate=True, measure_memory=False, faults=storm,
            recovery="joint",
        )
        assert result.recovery_cbs > 0
        assert result.conflicts == []
        assert result.audit_violations == []


class TestJointBitIdentity:
    @settings(max_examples=8, deadline=None)
    @given(task_seed=st.integers(0, 1_000_000))
    def test_empty_plan_leaves_joint_run_bit_identical(self, task_seed):
        warehouse = w1(scale=0.25)
        tasks = generate_tasks(
            warehouse, TaskTraceSpec(n_tasks=12, day_length=80, seed=task_seed)
        )

        def day(faults, recovery):
            sim = Simulation(
                warehouse, SRPPlanner(warehouse), tasks,
                validate=False, measure_memory=False, faults=faults,
                recovery=recovery,
            )
            result = sim.run()
            routes = {
                q: (r.start_time, tuple(r.grids)) for q, r in sim._routes.items()
            }
            return routes, result.makespan, result.completed_tasks

        assert day(FaultPlan.empty(), "joint") == day(None, "serial")
