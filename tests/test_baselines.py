"""Tests for the four grid baselines (SAP, TWP, RP, ACP)."""

import pytest

from repro import Query
from repro.analysis import find_conflicts
from repro.baselines import ACPPlanner, RPPlanner, SAPPlanner, TWPPlanner, make_baseline
from repro.exceptions import InvalidQueryError
from repro.types import manhattan
from tests.conftest import random_cells

ALL_BASELINES = [SAPPlanner, TWPPlanner, RPPlanner, ACPPlanner]


def plan_stream(planner, warehouse, n, seed, spread=9):
    """Plan n/2 queries with increasing releases; return routes dict."""
    cells = random_cells(warehouse, n, seed=seed)
    routes = {}
    release = 0
    for k in range(0, n, 2):
        release += k % spread
        q = Query(cells[k], cells[k + 1], release, query_id=k)
        routes[k] = planner.plan(q)
        routes.update(planner.take_revisions())
    return routes


@pytest.mark.parametrize("planner_cls", ALL_BASELINES)
class TestCommonBehaviour:
    def test_unblocked_is_shortest(self, planner_cls, mid_warehouse):
        planner = planner_cls(mid_warehouse)
        route = planner.plan(Query((0, 0), (39, 29)))
        assert route.duration == manhattan((0, 0), (39, 29))

    def test_stream_collision_free(self, planner_cls, mid_warehouse):
        planner = planner_cls(mid_warehouse)
        routes = plan_stream(planner, mid_warehouse, 80, seed=19)
        assert find_conflicts(list(routes.values())) == []

    def test_burst_collision_free(self, planner_cls, mid_warehouse):
        planner = planner_cls(mid_warehouse)
        cells = random_cells(mid_warehouse, 30, seed=20, include_racks=False)
        routes = {}
        for k in range(0, 30, 2):
            routes[k] = planner.plan(Query(cells[k], cells[k + 1], 0, query_id=k))
            routes.update(planner.take_revisions())
        assert find_conflicts(list(routes.values())) == []

    def test_out_of_bounds_rejected(self, planner_cls, mid_warehouse):
        planner = planner_cls(mid_warehouse)
        with pytest.raises(InvalidQueryError):
            planner.plan(Query((0, 0), (99, 99)))

    def test_reset(self, planner_cls, mid_warehouse):
        planner = planner_cls(mid_warehouse)
        planner.plan(Query((0, 0), (10, 10)))
        planner.reset()
        assert planner.timers.queries == 0
        assert len(planner.table) == 0

    def test_prune_keeps_future_consistency(self, planner_cls, mid_warehouse):
        planner = planner_cls(mid_warehouse)
        routes = {}
        cells = random_cells(mid_warehouse, 40, seed=21)
        for k in range(0, 40, 2):
            release = 20 * k
            routes[k] = planner.plan(Query(cells[k], cells[k + 1], release, query_id=k))
            routes.update(planner.take_revisions())
            planner.prune(release)
        assert find_conflicts(list(routes.values())) == []

    def test_timers_accumulate(self, planner_cls, mid_warehouse):
        planner = planner_cls(mid_warehouse)
        planner.plan(Query((0, 0), (5, 5)))
        planner.plan(Query((5, 5), (0, 0), 30))
        assert planner.timers.queries == 2
        assert planner.timers.total > 0


class TestFactory:
    @pytest.mark.parametrize("name", ["SAP", "RP", "TWP", "ACP"])
    def test_known_names(self, name, tiny_warehouse):
        assert make_baseline(name, tiny_warehouse).name == name

    def test_unknown_rejected(self, tiny_warehouse):
        with pytest.raises(ValueError):
            make_baseline("FOO", tiny_warehouse)


class TestTWPSpecifics:
    def test_small_window_still_collision_free(self, mid_warehouse):
        planner = TWPPlanner(mid_warehouse, window=6)
        routes = plan_stream(planner, mid_warehouse, 60, seed=23)
        assert find_conflicts(list(routes.values())) == []

    def test_window_zero_resolves_everything_in_repair(self, mid_warehouse):
        planner = TWPPlanner(mid_warehouse, window=1)
        routes = plan_stream(planner, mid_warehouse, 30, seed=24)
        assert find_conflicts(list(routes.values())) == []


class TestRPSpecifics:
    def test_replans_counted(self, mid_warehouse):
        planner = RPPlanner(mid_warehouse)
        plan_stream(planner, mid_warehouse, 80, seed=25, spread=4)
        assert planner.replans >= 1

    def test_revisions_drained(self, mid_warehouse):
        planner = RPPlanner(mid_warehouse)
        plan_stream(planner, mid_warehouse, 60, seed=26, spread=4)
        assert planner.take_revisions() == {}

    def test_started_routes_immovable(self, mid_warehouse):
        planner = RPPlanner(mid_warehouse)
        planner.plan(Query((0, 0), (39, 29), 0, query_id=1))
        # Force a conflicting query after the first robot departed.
        planner.plan(Query((39, 29), (0, 0), 5, query_id=2))
        revisions = planner.take_revisions()
        assert 1 not in revisions  # the started route was not rewritten


class TestACPSpecifics:
    def test_cache_answers_dominate_light_traffic(self, mid_warehouse):
        planner = ACPPlanner(mid_warehouse)
        plan_stream(planner, mid_warehouse, 60, seed=27, spread=30)
        assert planner.cache_answers > planner.search_answers

    def test_cached_path_deterministic(self, mid_warehouse):
        planner = ACPPlanner(mid_warehouse)
        a = planner.plan(Query((0, 0), (20, 15), 0))
        planner.reset()
        b = planner.plan(Query((0, 0), (20, 15), 0))
        assert a.grids == b.grids

    def test_search_fallback_used_under_contention(self, mid_warehouse):
        planner = ACPPlanner(mid_warehouse, max_cached_delay=0)
        cells = random_cells(mid_warehouse, 40, seed=28, include_racks=False)
        for k in range(0, 40, 2):
            planner.plan(Query(cells[k], cells[k + 1], 0, query_id=k))
        assert planner.search_answers >= 1
