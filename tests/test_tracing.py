"""Tests for trace recording, serialisation and replay."""

import pytest

from repro import Query, SAPPlanner, SRPPlanner, TaskTraceSpec, generate_tasks, run_day
from repro.tracing import PlannerTrace, TraceRecorder, load_trace, replay_trace, save_trace
from tests.conftest import random_cells


@pytest.fixture
def recorded(small_warehouse):
    recorder = TraceRecorder(SRPPlanner(small_warehouse))
    cells = random_cells(small_warehouse, 20, seed=33, include_racks=False)
    for k in range(0, 20, 2):
        recorder.plan(Query(cells[k], cells[k + 1], 15 * k, query_id=k))
    return recorder


class TestRecorder:
    def test_entries_match_plans(self, recorded):
        assert len(recorded.trace) == 10
        for entry in recorded.trace.entries:
            assert entry.route.origin == entry.query.origin
            assert entry.route.destination == entry.query.destination

    def test_behaves_like_inner(self, small_warehouse):
        recorder = TraceRecorder(SRPPlanner(small_warehouse))
        route = recorder.plan(Query((0, 0), (5, 5), 0, query_id=1))
        assert route.duration == 10
        assert recorder.timers.queries == 1
        recorder.prune(100)
        recorder.reset()
        assert len(recorder.trace) == 0

    def test_works_in_simulation(self, small_warehouse):
        tasks = generate_tasks(small_warehouse, TaskTraceSpec(n_tasks=8, day_length=200, seed=3))
        recorder = TraceRecorder(SRPPlanner(small_warehouse))
        result = run_day(small_warehouse, recorder, tasks, validate=True)
        assert result.conflicts == []
        assert len(recorder.trace) == 24  # three stages per task

    def test_revisions_update_trace(self, small_warehouse):
        from repro import RPPlanner

        recorder = TraceRecorder(RPPlanner(small_warehouse))
        cells = random_cells(small_warehouse, 30, seed=35, include_racks=False)
        for k in range(0, 30, 2):
            recorder.plan(Query(cells[k], cells[k + 1], k // 4, query_id=k))
            recorder.take_revisions()
        # All traced routes reflect the latest revision state: the trace
        # itself must be collision-free.
        from repro.analysis import find_conflicts

        assert find_conflicts([e.route for e in recorded_routes(recorder)]) == []


def recorded_routes(recorder):
    return recorder.trace.entries


class TestSerialisation:
    def test_round_trip(self, recorded, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(recorded.trace, path)
        loaded = load_trace(path)
        assert loaded.planner_name == recorded.trace.planner_name
        assert len(loaded) == len(recorded.trace)
        for a, b in zip(loaded.entries, recorded.trace.entries):
            assert a.query == b.query
            assert a.route.grids == b.route.grids
            assert a.route.start_time == b.route.start_time

    def test_version_guard(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"format_version": 9}\n')
        with pytest.raises(ValueError):
            load_trace(path)

    def test_aggregates(self, recorded):
        trace = recorded.trace
        assert trace.total_duration > 0
        assert trace.makespan >= max(q.release_time for q in trace.queries)
        assert PlannerTrace("x").makespan == 0


class TestReplay:
    def test_identical_planner_identical_routes(self, small_warehouse, recorded):
        report = replay_trace(recorded.trace, SRPPlanner(small_warehouse))
        assert report.total_delta == 0
        assert report.n_faster == 0 and report.n_slower == 0

    def test_cross_planner_comparison(self, small_warehouse, recorded):
        report = replay_trace(recorded.trace, SAPPlanner(small_warehouse))
        assert len(report.duration_deltas) == len(recorded.trace)
        # SAP is optimal per query here; it never loses to SRP.
        assert all(d <= 0 for d in report.duration_deltas)
