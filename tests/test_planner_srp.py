"""End-to-end tests for the SRP planner."""

import pytest

from repro import Query, SRPPlanner, Warehouse
from repro.analysis import assert_collision_free, find_conflicts
from repro.exceptions import InvalidQueryError, PlanningFailedError
from repro.types import manhattan
from tests.conftest import random_cells


class TestBasics:
    def test_empty_warehouse_optimal(self, mid_warehouse):
        planner = SRPPlanner(mid_warehouse)
        route = planner.plan(Query((0, 0), (39, 29)))
        assert route.duration == manhattan((0, 0), (39, 29))

    def test_trivial_query(self, mid_warehouse):
        planner = SRPPlanner(mid_warehouse)
        route = planner.plan(Query((0, 0), (0, 0), 5))
        assert route.grids == [(0, 0)] and route.start_time == 5

    def test_out_of_bounds_rejected(self, mid_warehouse):
        planner = SRPPlanner(mid_warehouse)
        with pytest.raises(InvalidQueryError):
            planner.plan(Query((0, 0), (99, 99)))

    def test_walled_destination_fails(self):
        wh = Warehouse.from_ascii("...\n###\n...")
        planner = SRPPlanner(wh)
        with pytest.raises(PlanningFailedError):
            planner.plan(Query((0, 0), (2, 0)))
        assert planner.timers.failures == 1

    def test_rack_endpoints(self, tiny_warehouse):
        planner = SRPPlanner(tiny_warehouse)
        out = planner.plan(Query((1, 2), (0, 0), 0))
        back = planner.plan(Query((0, 0), (2, 5), 20))
        assert out.origin == (1, 2) and back.destination == (2, 5)
        assert_collision_free([out, back])

    def test_timers_and_stats(self, mid_warehouse):
        planner = SRPPlanner(mid_warehouse)
        planner.plan(Query((0, 0), (20, 20)))
        assert planner.timers.queries == 1
        assert planner.timers.total > 0
        assert planner.stats.queries == 1
        assert planner.stats.total_time >= planner.stats.intra_time

    def test_reset(self, mid_warehouse):
        planner = SRPPlanner(mid_warehouse)
        planner.plan(Query((0, 0), (20, 20)))
        planner.reset()
        assert planner.n_segments == 0
        assert planner.timers.queries == 0
        assert not planner.crossings


class TestCollisionFreedom:
    @pytest.mark.parametrize("use_index", [True, False])
    def test_random_stream_collision_free(self, mid_warehouse, use_index):
        planner = SRPPlanner(mid_warehouse, use_slope_index=use_index)
        cells = random_cells(mid_warehouse, 120, seed=7)
        routes = []
        release = 0
        for k in range(0, 120, 2):
            release += k % 13
            routes.append(planner.plan(Query(cells[k], cells[k + 1], release, query_id=k)))
        assert find_conflicts(routes) == []

    def test_simultaneous_release_burst(self, mid_warehouse):
        planner = SRPPlanner(mid_warehouse)
        cells = random_cells(mid_warehouse, 40, seed=11, include_racks=False)
        routes = [
            planner.plan(Query(cells[k], cells[k + 1], 0, query_id=k))
            for k in range(0, 40, 2)
        ]
        assert find_conflicts(routes) == []

    def test_hot_destination_contention(self, mid_warehouse):
        """Many robots target cells around one picker simultaneously."""
        planner = SRPPlanner(mid_warehouse)
        target = (39, 1)
        cells = random_cells(mid_warehouse, 8, seed=3, include_racks=False)
        routes = [
            planner.plan(Query(cell, target, 2 * k, query_id=k))
            for k, cell in enumerate(cells)
            if cell != target
        ]
        assert find_conflicts(routes) == []

    def test_naive_and_indexed_agree_on_feasibility(self, mid_warehouse):
        """Both store backends must produce conflict-free streams of the
        same cost profile (identical plans are not required)."""
        cells = random_cells(mid_warehouse, 60, seed=13)
        durations = {}
        for use_index in (True, False):
            planner = SRPPlanner(mid_warehouse, use_slope_index=use_index)
            total = 0
            for k in range(0, 60, 2):
                route = planner.plan(Query(cells[k], cells[k + 1], 5 * k, query_id=k))
                total += route.duration
            durations[use_index] = total
        assert durations[True] == durations[False]


class TestPruning:
    def test_prune_preserves_collision_freedom(self, mid_warehouse):
        planner = SRPPlanner(mid_warehouse)
        cells = random_cells(mid_warehouse, 100, seed=29)
        routes = []
        for k in range(0, 100, 2):
            release = 15 * k
            routes.append(planner.plan(Query(cells[k], cells[k + 1], release, query_id=k)))
            planner.prune(release)
        assert find_conflicts(routes) == []

    def test_prune_shrinks_state(self, mid_warehouse):
        planner = SRPPlanner(mid_warehouse)
        cells = random_cells(mid_warehouse, 40, seed=31)
        for k in range(0, 40, 2):
            planner.plan(Query(cells[k], cells[k + 1], k))
        before = planner.n_segments
        planner.prune(10_000)
        assert planner.n_segments == 0 < before
        assert not planner.crossings


class TestFallback:
    def test_fallback_route_respected_by_later_queries(self):
        wh = Warehouse.from_ascii("...\n...\n...")
        planner = SRPPlanner(wh)
        a = planner.plan(Query((0, 1), (2, 1), 0))
        b = planner.plan(Query((2, 1), (0, 1), 0))  # forces the fallback
        c = planner.plan(Query((0, 0), (2, 2), 0))
        assert planner.stats.fallbacks >= 1
        assert_collision_free([a, b, c])

    def test_fallback_rate_low_in_light_traffic(self, mid_warehouse):
        planner = SRPPlanner(mid_warehouse)
        cells = random_cells(mid_warehouse, 100, seed=41)
        for k in range(0, 100, 2):
            planner.plan(Query(cells[k], cells[k + 1], 40 * k, query_id=k))
        assert planner.stats.fallbacks <= 2


class TestStartDelays:
    def test_origin_occupied_delays_start(self):
        wh = Warehouse.from_ascii("....\n....")
        planner = SRPPlanner(wh)
        # A route that sweeps through (0,2) at t=2.
        planner.plan(Query((0, 0), (0, 3), 0))
        route = planner.plan(Query((0, 2), (1, 2), 2))
        assert route.start_time >= 2
        assert planner.stats.start_delays >= 0  # may sidestep instead
        conflicts = find_conflicts(
            [route, planner.plan(Query((1, 0), (1, 3), 0))]
        )
        assert conflicts == []
