"""Tests for the empirical occupancy statistics."""

import pytest

from repro.analysis import busiest_cells, occupancy_probability, render_heatmap, visit_heatmap
from repro.types import Route


class TestOccupancyProbability:
    def test_single_parked_robot(self, tiny_warehouse):
        # One robot on one cell for the whole window: p = 1 / free cells.
        route = Route(0, [(0, 0)] * 10)
        p = occupancy_probability([route], tiny_warehouse)
        free = tiny_warehouse.n_cells - tiny_warehouse.n_racks
        assert p == pytest.approx(1 / free)

    def test_scales_with_traffic(self, tiny_warehouse):
        one = [Route(0, [(0, 0)] * 10)]
        two = one + [Route(0, [(0, 1)] * 10)]
        assert occupancy_probability(two, tiny_warehouse) == pytest.approx(
            2 * occupancy_probability(one, tiny_warehouse)
        )

    def test_empty_rejected(self, tiny_warehouse):
        with pytest.raises(ValueError):
            occupancy_probability([], tiny_warehouse)

    def test_day_simulation_p_is_low(self, small_warehouse):
        """Realistic traffic sits far below Theorem 1's p* = 0.577."""
        from repro import SRPPlanner, TaskTraceSpec, generate_tasks
        from repro.tracing import TraceRecorder
        from repro.simulation import run_day

        tasks = generate_tasks(small_warehouse, TaskTraceSpec(n_tasks=10, day_length=200, seed=2))
        recorder = TraceRecorder(SRPPlanner(small_warehouse))
        run_day(small_warehouse, recorder, tasks)
        routes = [e.route for e in recorder.trace.entries]
        assert occupancy_probability(routes, small_warehouse) < 0.2


class TestHeatmap:
    def test_counts(self, tiny_warehouse):
        route = Route(0, [(0, 0), (0, 1), (0, 1)])
        heat = visit_heatmap([route], tiny_warehouse)
        assert heat[0, 0] == 1
        assert heat[0, 1] == 2
        assert heat.sum() == 3

    def test_busiest_cells_ordering(self, tiny_warehouse):
        routes = [
            Route(0, [(0, 0)] * 5),
            Route(0, [(0, 1)] * 3),
            Route(10, [(0, 0)] * 2),
        ]
        top = busiest_cells(routes, tiny_warehouse, top_k=2)
        assert top[0] == ((0, 0), 7)
        assert top[1] == ((0, 1), 3)

    def test_busiest_skips_cold_cells(self, tiny_warehouse):
        top = busiest_cells([Route(0, [(0, 0)])], tiny_warehouse, top_k=5)
        assert top == [((0, 0), 1)]

    def test_render(self, tiny_warehouse):
        art = render_heatmap([Route(0, [(0, 0)] * 9)], tiny_warehouse)
        lines = art.splitlines()
        assert lines[0][0] in "123456789"
        assert lines[1][2] == "#"
        assert lines[0][5] == "."
