"""Layout-equivalence suite: columnar vs. object-backed stores.

The columnar store (``repro.core.columnar_store``) re-implements the
slope-indexed store over flat integer arrays.  Its contract is *bit
identity*: every query answer, every version-bump pattern, and every
end-to-end route must match the object-backed implementation exactly.
These tests drive both layouts through the same randomised
commit/decommit/prune/query interleavings and compare everything
observable.

``free_window`` is the one deliberate exception: the columnar band
fast path may return a *narrower* (still sound) window than the exact
scan, so only the None-decision — which gates planner behaviour — is
compared here; soundness and containment are covered for all store
classes by ``test_free_windows``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Query, SRPPlanner
from repro.analysis.validate import audit_planner_state
from repro.core.columnar_store import ColumnarSegmentStore
from repro.core.segments import Segment
from repro.core.slope_index import SlopeIndexedStore

from tests.test_free_windows import _OP, _apply_ops, _warehouse, segment_strategy

# ---------------------------------------------------------------------------
# store-level op interleavings
# ---------------------------------------------------------------------------

#: one mutation or query per element; mutations are replayed on both
#: layouts, queries must answer identically
_STORE_OP = st.one_of(
    st.tuples(st.just("insert"), segment_strategy(), st.integers(-1, 5)),
    st.tuples(st.just("remove"), st.integers(0, 10 ** 6), st.just(0)),
    st.tuples(st.just("prune"), st.integers(0, 40), st.just(0)),
    st.tuples(st.just("clear"), st.just(0), st.just(0)),
    st.tuples(st.just("conflict"), segment_strategy(), st.just(0)),
    st.tuples(st.just("occupied"), st.integers(0, 12), st.integers(0, 40)),
    st.tuples(
        st.just("first_occupied"),
        st.integers(0, 12),
        st.tuples(st.integers(0, 40), st.integers(0, 12)),
    ),
    st.tuples(
        st.just("clear_entry"),
        st.integers(0, 12),
        st.tuples(st.integers(0, 40), st.integers(0, 12)),
    ),
    st.tuples(
        st.just("free_window"),
        st.tuples(st.integers(0, 12), st.integers(0, 6)),
        st.tuples(st.integers(0, 40), st.integers(0, 12)),
    ),
)


def _drive(store, ops):
    """Replay ``ops`` on one store; return the observable-outcome log.

    Version numbers come from a process-global counter, so their
    absolute values differ between two stores driven side by side; the
    log therefore records the *bump pattern* (did this op change the
    version?) plus every query answer and the post-op segment multiset.
    """
    log = []
    live = []
    for kind, a, b in ops:
        before = store.version
        if kind == "insert":
            store.insert(a, owner=b)
            live.append(a)
        elif kind == "remove":
            if live:
                victim = live.pop(a % len(live))
                store.remove(victim)
            else:
                with pytest.raises(KeyError):
                    store.remove(Segment(0, 0, 0, 0))
        elif kind == "prune":
            dropped = store.prune(a)
            live = [s for s in live if s.t1 >= a]
            log.append(("dropped", dropped))
        elif kind == "clear":
            store.clear()
            live = []
        elif kind == "conflict":
            log.append(("conflict", store.earliest_conflict(a)))
            log.append(("block", store.earliest_block(a)))
        elif kind == "occupied":
            log.append(("occupied", store.occupied(a, b)))
        elif kind == "first_occupied":
            t_lo, span = b
            log.append(("first", store.first_occupied(a, t_lo, t_lo + span)))
        elif kind == "clear_entry":
            t_from, span = b
            log.append(("entry", store.clear_entry_time(a, t_from, t_from + span)))
        else:  # free_window — compare the None-decision only (see module doc)
            lo, width = a
            t0, span = b
            window = store.free_window(lo, lo + width, t0, t0 + span)
            log.append(("window-none", window is None))
        log.append(("bump", store.version != before, len(store)))
    log.append(
        ("segments", sorted((s.t0, s.p0, s.t1, s.p1) for s in store.iter_segments()))
    )
    log.append(("last_end", store.last_end))
    return log


@settings(max_examples=120, deadline=None)
@given(ops=st.lists(_STORE_OP, min_size=1, max_size=30))
def test_columnar_matches_slope_index(ops):
    assert _drive(ColumnarSegmentStore(), ops) == _drive(SlopeIndexedStore(), ops)


@given(segments=st.lists(segment_strategy(), min_size=0, max_size=12))
@settings(max_examples=60, deadline=None)
def test_owner_column_tracks_spans(segments):
    store = ColumnarSegmentStore()
    for owner, seg in enumerate(segments):
        store.insert(seg, owner=owner)
    for t0 in range(0, 40, 7):
        t1 = t0 + 5
        expected = sorted(
            owner
            for owner, seg in enumerate(segments)
            if seg.t0 <= t1 and seg.t1 >= t0
        )
        assert store.owners_overlapping(t0, t1) == expected


def test_owner_defaults_to_anonymous():
    store = ColumnarSegmentStore()
    store.insert(Segment(0, 0, 4, 4))
    assert store.owners_overlapping(0, 10) == []


# ---------------------------------------------------------------------------
# planner-level bit identity
# ---------------------------------------------------------------------------


def test_layout_knob_validation():
    warehouse = _warehouse()
    planner = SRPPlanner(warehouse)
    assert planner.store_layout == "columnar"  # slope default
    assert SRPPlanner(warehouse, store="naive").store_layout == "object"
    assert SRPPlanner(warehouse, store_layout="object").store_layout == "object"
    with pytest.raises(ValueError):
        SRPPlanner(warehouse, store_layout="rowwise")
    with pytest.raises(ValueError):
        SRPPlanner(warehouse, store="naive", store_layout="columnar")


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(_OP, min_size=1, max_size=12))
def test_layouts_identical_under_fault_interleavings(ops):
    """Columnar and object layouts plan bit-identical routes.

    The op stream includes blockages, prunes and mid-flight replans, so
    equality covers the commit *and* decommit paths, faulted legs
    included.
    """
    warehouse = _warehouse()
    columnar = _apply_ops(SRPPlanner(warehouse, store_layout="columnar"), ops)
    object_backed = _apply_ops(SRPPlanner(warehouse, store_layout="object"), ops)
    assert columnar == object_backed


@settings(max_examples=15, deadline=None)
@given(ops=st.lists(_OP, min_size=1, max_size=12))
def test_columnar_cache_off_identical(ops):
    """Within the columnar layout, the cache stays behaviour-invisible."""
    warehouse = _warehouse()
    cached = _apply_ops(SRPPlanner(warehouse, store_layout="columnar"), ops)
    uncached = _apply_ops(
        SRPPlanner(warehouse, store_layout="columnar", cache=False), ops
    )
    assert cached == uncached


def _plan_day(planner):
    free = sorted(planner.warehouse.free_cells())
    routes = []
    qid = 0
    for i in range(0, len(free) - 4, 3):
        query = Query(free[i], free[i + 3], i % 5, query_id=qid)
        qid += 1
        try:
            routes.append(planner.plan(query))
        except Exception:
            pass
    return routes


def test_audit_agrees_across_layouts():
    """Both layouts survive the stores-vs-routes audit with zero findings."""
    warehouse = _warehouse()
    for layout in ("columnar", "object"):
        planner = SRPPlanner(warehouse, store_layout=layout)
        routes = _plan_day(planner)
        assert routes, "day workload planned nothing"
        assert audit_planner_state(planner, routes) == []
