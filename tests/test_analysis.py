"""Tests for the validator oracle, memory metering and reporting."""

import numpy as np
import pytest

from repro.analysis import (
    assert_collision_free,
    deep_sizeof,
    find_conflicts,
    find_conflicts_pairwise,
    format_series,
    format_table,
)
from repro.exceptions import CollisionError
from repro.types import Route


class TestValidator:
    def test_vertex_conflict_found(self):
        a = Route(0, [(0, 0), (0, 1)])
        b = Route(0, [(0, 2), (0, 1)])
        conflicts = find_conflicts([a, b])
        assert len(conflicts) == 1
        c = conflicts[0]
        assert c.kind == "vertex" and c.time == 1 and c.grid == (0, 1)
        assert (c.route_a, c.route_b) == (0, 1)

    def test_swap_conflict_found(self):
        a = Route(0, [(0, 0), (0, 1)])
        b = Route(0, [(0, 1), (0, 0)])
        conflicts = find_conflicts([a, b])
        assert any(c.kind == "swap" for c in conflicts)

    def test_clean_routes(self):
        a = Route(0, [(0, 0), (0, 1)])
        b = Route(0, [(2, 0), (2, 1)])
        assert find_conflicts([a, b]) == []

    def test_time_separation_is_clean(self):
        a = Route(0, [(0, 0), (0, 1)])
        b = Route(5, [(0, 0), (0, 1)])
        assert find_conflicts([a, b]) == []

    def test_follow_is_legal(self):
        a = Route(0, [(0, 0), (0, 1), (0, 2)])
        b = Route(1, [(0, 0), (0, 1)])
        assert find_conflicts([a, b]) == []

    def test_stop_at_first(self):
        a = Route(0, [(0, 0), (0, 1), (0, 2)])
        b = Route(0, [(0, 0), (0, 1), (0, 2)])
        assert len(find_conflicts([a, b], stop_at_first=True)) == 1

    def test_pairwise_wrapper(self):
        a = Route(0, [(0, 0), (0, 1)])
        b = Route(0, [(0, 1), (0, 0)])
        assert find_conflicts_pairwise(a, b)

    def test_assert_raises(self):
        a = Route(0, [(0, 0), (0, 1)])
        b = Route(0, [(0, 2), (0, 1)])
        with pytest.raises(CollisionError):
            assert_collision_free([a, b])
        assert_collision_free([a])

    def test_three_routes_attribution(self):
        a = Route(0, [(0, 0), (0, 0)])
        b = Route(0, [(1, 1), (1, 2)])
        c = Route(0, [(0, 1), (0, 0)])  # hits a at t=1
        conflicts = find_conflicts([a, b, c])
        assert len(conflicts) == 1
        assert {conflicts[0].route_a, conflicts[0].route_b} == {0, 2}


class TestDeepSizeof:
    def test_monotone_in_content(self):
        assert deep_sizeof([1, 2, 3]) < deep_sizeof(list(range(1000)))

    def test_shared_objects_counted_once(self):
        shared = list(range(100))
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof(shared)

    def test_numpy_counts_buffer(self):
        small = np.zeros(10, dtype=np.int64)
        large = np.zeros(10_000, dtype=np.int64)
        assert deep_sizeof(large) - deep_sizeof(small) >= 8 * 9_000

    def test_dict_contents(self):
        assert deep_sizeof({"k": "v" * 1000}) > 1000

    def test_slotted_objects(self):
        from repro.core.segments import Segment

        seg = Segment(0, 0, 5, 5)
        assert deep_sizeof(seg) > 0

    def test_inherited_slots_counted(self):
        from repro.core.slope_index import SlopeIndexedStore
        from repro.core.segments import make_move

        # ``queries``/``version``/... live in the *base* class's
        # __slots__; a walker that only reads the leaf class's slots
        # misses them (and, worse, every data column of the columnar
        # store).
        store = SlopeIndexedStore()
        empty = deep_sizeof(store)
        for t in range(200):
            store.insert(make_move(3 * t, 0, 9))
        assert deep_sizeof(store) - empty > 200 * 8

    def test_columnar_buffers_counted(self):
        from repro.core.columnar_store import ColumnarSegmentStore
        from repro.core.segments import make_move

        store = ColumnarSegmentStore()
        empty = deep_sizeof(store)
        for t in range(500):
            store.insert(make_move(3 * t, 0, 9))
        # seven int64 columns -> at least 7 * 8 bytes per segment
        assert deep_sizeof(store) - empty >= 500 * 7 * 8

    def test_memoryview_follows_exporter(self):
        from array import array

        buf = array("q", range(10_000))
        assert deep_sizeof(memoryview(buf)) >= 8 * 10_000

    def test_planner_state_grows_with_traffic(self, mid_warehouse):
        from repro import Query, SRPPlanner
        from tests.conftest import random_cells

        planner = SRPPlanner(mid_warehouse)
        empty = deep_sizeof(planner.planning_state())
        cells = random_cells(mid_warehouse, 40, seed=8)
        for k in range(0, 40, 2):
            planner.plan(Query(cells[k], cells[k + 1], 5 * k))
        assert deep_sizeof(planner.planning_state()) > empty


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["name", "x"], [["a", 1], ["bb", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "|" in lines[1]
        assert len(lines) == 5

    def test_format_table_floats(self):
        out = format_table(["v"], [[0.123456], [1.5], [3.0e-6]])
        assert "0.123" in out
        assert "3.00e-06" in out

    def test_format_series(self):
        out = format_series("tc", [0.1, 0.2], [1.5, 2.5], "progress", "seconds")
        assert "tc" in out and "->" in out
        assert len(out.splitlines()) == 3


class TestRouteLegality:
    def test_rack_traversal_flagged(self, tiny_warehouse):
        from repro.analysis import find_illegal_cells
        from repro.types import Route

        bad = Route(0, [(1, 1), (1, 2), (1, 3)])  # (1,2) is a rack
        violations = find_illegal_cells([bad], tiny_warehouse)
        assert len(violations) == 1
        assert violations[0].kind == "rack" and violations[0].grid == (1, 2)

    def test_rack_endpoints_allowed(self, tiny_warehouse):
        from repro.analysis import find_illegal_cells
        from repro.types import Route

        ok = Route(0, [(1, 2), (1, 1), (2, 1), (2, 2)])  # rack -> rack
        assert find_illegal_cells([ok], tiny_warehouse) == []

    def test_assert_routes_legal(self, tiny_warehouse):
        from repro.analysis import assert_routes_legal
        from repro.exceptions import CollisionError
        from repro.types import Route
        import pytest

        assert_routes_legal([Route(0, [(0, 0), (0, 1)])], tiny_warehouse)
        with pytest.raises(CollisionError):
            assert_routes_legal([Route(0, [(0, 0), (4, 4)])], tiny_warehouse)
        with pytest.raises(CollisionError):
            assert_routes_legal(
                [Route(0, [(1, 1), (1, 2), (1, 3)])], tiny_warehouse
            )
