"""Tests for the exact time-expanded intra-strip search."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.intra_strip import plan_within_strip
from repro.core.intra_strip_exact import plan_within_strip_exact
from repro.core.naive_store import NaiveSegmentStore
from repro.core.segments import Segment, make_move, make_wait
from repro.core.slope_index import SlopeIndexedStore
from repro.geometry.collision import conflict_between_segments


def fresh_store(*segments):
    store = SlopeIndexedStore()
    for s in segments:
        store.insert(s)
    return store


class TestBasics:
    def test_empty_strip_direct(self):
        plan = plan_within_strip_exact(fresh_store(), 3, 1, 8, strip_length=10)
        assert plan is not None
        assert plan.arrival_time == 10
        assert plan.segments == [Segment(3, 1, 10, 8)]

    def test_origin_is_destination(self):
        plan = plan_within_strip_exact(fresh_store(), 5, 4, 4, strip_length=10)
        assert plan is not None and plan.arrival_time == 5

    def test_blocked_start(self):
        store = fresh_store(make_wait(0, 2, 10))
        assert plan_within_strip_exact(store, 3, 2, 8, strip_length=10) is None

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            plan_within_strip_exact(fresh_store(), 0, 0, 12, strip_length=10)

    def test_waits_out_obstacle(self):
        store = fresh_store(make_wait(0, 5, 8))
        plan = plan_within_strip_exact(store, 0, 0, 9, strip_length=10)
        assert plan is not None
        for seg in plan.segments:
            for other in store.iter_segments():
                assert conflict_between_segments(seg, other) is None
        assert plan.arrival_time > 9


class TestBackwardMoves:
    def test_backward_rescues_head_on(self):
        """A head-on robot is fatal for monotone search but survivable
        when backing up into a niche is allowed... in a 1-D strip there
        is no niche, so both must fail; backward moves help only when
        the opposing robot leaves the strip early."""
        store = fresh_store(make_move(2, 9, 4))  # sweeps 9 -> 4 then leaves
        monotone = plan_within_strip_exact(
            store, 0, 0, 9, strip_length=10, allow_backward=False
        )
        backward = plan_within_strip_exact(
            store, 0, 0, 9, strip_length=10, allow_backward=True
        )
        # Backward freedom can only improve (or match) the arrival.
        if monotone is not None:
            assert backward is not None
            assert backward.arrival_time <= monotone.arrival_time

    def test_backward_retreat(self):
        # We start in the path of a sweeping robot and must retreat.
        store = fresh_store(make_move(0, 9, 2))
        forward = plan_within_strip_exact(
            store, 0, 4, 8, strip_length=10, allow_backward=False
        )
        backward = plan_within_strip_exact(
            store, 0, 4, 8, strip_length=10, allow_backward=True
        )
        assert forward is None  # cannot outrun it monotonically
        assert backward is not None  # retreat to 0-1, let it pass, go


class TestOptimality:
    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 9), st.integers(0, 9)),
            max_size=5,
        ),
        st.integers(0, 6),
        st.integers(0, 9),
        st.integers(0, 9),
    )
    def test_never_worse_than_greedy(self, moves, start, origin, destination):
        """The exact search dominates the greedy one whenever both plan."""
        store = NaiveSegmentStore()
        for t0, p0, p1 in moves:
            store.insert(make_move(t0, p0, p1))
        greedy = plan_within_strip(store, start, origin, destination, max_wait=40)
        exact = plan_within_strip_exact(
            store, start, origin, destination, strip_length=10, max_wait=40
        )
        if greedy is not None:
            assert exact is not None
            assert exact.arrival_time <= greedy.arrival_time

    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 9), st.integers(0, 9)),
            max_size=5,
        ),
        st.integers(0, 6),
        st.integers(0, 9),
        st.integers(0, 9),
    )
    def test_plans_are_valid(self, moves, start, origin, destination):
        store = NaiveSegmentStore()
        for t0, p0, p1 in moves:
            store.insert(make_move(t0, p0, p1))
        plan = plan_within_strip_exact(
            store, start, origin, destination, strip_length=10, max_wait=40
        )
        if plan is None:
            return
        t, p = start, origin
        for seg in plan.segments:
            assert (seg.t0, seg.p0) == (t, p)
            for other in store.iter_segments():
                assert conflict_between_segments(seg, other) is None
            t, p = seg.t1, seg.p1
        assert p == destination and t == plan.arrival_time


class TestPlannerIntegration:
    def test_exact_mode_collision_free(self, mid_warehouse):
        from repro import Query, SRPPlanner
        from repro.analysis import find_conflicts
        from tests.conftest import random_cells

        planner = SRPPlanner(mid_warehouse, intra_exact=True)
        cells = random_cells(mid_warehouse, 40, seed=71)
        routes = [
            planner.plan(Query(cells[k], cells[k + 1], 10 * k, query_id=k))
            for k in range(0, 40, 2)
        ]
        assert find_conflicts(routes) == []

    def test_exact_mode_never_longer_in_light_traffic(self, mid_warehouse):
        from repro import Query, SRPPlanner
        from tests.conftest import random_cells

        cells = random_cells(mid_warehouse, 30, seed=72, include_racks=False)
        queries = [
            Query(cells[k], cells[k + 1], 60 * k, query_id=k) for k in range(0, 30, 2)
        ]
        greedy_total = sum(
            SRPPlanner(mid_warehouse).plan(q).duration for q in queries
        )
        exact_planner = SRPPlanner(mid_warehouse, intra_exact=True)
        exact_total = sum(exact_planner.plan(q).duration for q in queries)
        assert exact_total <= greedy_total + 2


class TestBackwardPlannerIntegration:
    def test_backward_mode_collision_free(self, mid_warehouse):
        from repro import Query, SRPPlanner
        from repro.analysis import find_conflicts
        from tests.conftest import random_cells

        planner = SRPPlanner(mid_warehouse, intra_exact=True, intra_backward=True)
        cells = random_cells(mid_warehouse, 30, seed=73)
        routes = [
            planner.plan(Query(cells[k], cells[k + 1], 8 * k, query_id=k))
            for k in range(0, 30, 2)
        ]
        assert find_conflicts(routes) == []

    def test_backward_reduces_fallbacks_in_corridor(self):
        """The Fig. 13 lift lets SRP survive the chase scenario without
        calling grid A*."""
        from repro import Query, SRPPlanner, Warehouse
        from repro.analysis import assert_collision_free

        wh = Warehouse.from_ascii("...\n...\n...")
        greedy = SRPPlanner(wh)
        a1 = greedy.plan(Query((0, 2), (2, 2), 0))
        b1 = greedy.plan(Query((2, 2), (0, 2), 0))
        assert_collision_free([a1, b1])

        lifted = SRPPlanner(wh, intra_exact=True, intra_backward=True)
        a2 = lifted.plan(Query((0, 2), (2, 2), 0))
        b2 = lifted.plan(Query((2, 2), (0, 2), 0))
        assert_collision_free([a2, b2])
        assert lifted.stats.fallbacks <= greedy.stats.fallbacks
