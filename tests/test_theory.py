"""Tests for the Section VII-A effectiveness theory module."""


import pytest

from repro.analysis.theory import (
    THEOREM1_P_STAR,
    expected_competitive_ratio_bound,
    measure_competitive_ratios,
)
from repro.types import Query
from tests.conftest import random_cells


class TestTheorem1Bound:
    def test_paper_headline_value(self):
        # E[CR] <= 1 + 1/(3 (1 - 0.577)) ~ 1.788 (the paper's constant).
        assert expected_competitive_ratio_bound(THEOREM1_P_STAR) == pytest.approx(
            1.788, abs=2e-3
        )

    def test_no_congestion_is_optimal_plus_third(self):
        assert expected_competitive_ratio_bound(0.0) == pytest.approx(4 / 3)

    def test_monotone_in_p(self):
        values = [expected_competitive_ratio_bound(p / 10) for p in range(10)]
        assert values == sorted(values)

    def test_numerator_switches_at_p_star(self):
        eps = 1e-6
        below = expected_competitive_ratio_bound(THEOREM1_P_STAR - eps)
        above = expected_competitive_ratio_bound(THEOREM1_P_STAR + 1e-3)
        assert above > below

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            expected_competitive_ratio_bound(1.0)
        with pytest.raises(ValueError):
            expected_competitive_ratio_bound(-0.1)


class TestEmpiricalRatios:
    def test_ratios_bounded_and_sane(self, mid_warehouse):
        cells = random_cells(mid_warehouse, 40, seed=51, include_racks=False)
        queries = [
            Query(cells[k], cells[k + 1], 30 * k, query_id=k)
            for k in range(0, 40, 2)
            if cells[k] != cells[k + 1]
        ]
        report = measure_competitive_ratios(mid_warehouse, queries)
        assert all(r >= 0.99 for r in report.ratios)
        assert report.mean < 1.3
        assert report.worst < expected_competitive_ratio_bound(0.5) + 1.0
        assert 0.0 <= report.fraction_within(1.788) <= 1.0

    def test_empty_stream_rejected(self, mid_warehouse):
        with pytest.raises(ValueError):
            measure_competitive_ratios(mid_warehouse, [])
