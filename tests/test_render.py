"""Tests for the ASCII rendering helpers."""

from repro.analysis.render import animate, render_route, render_snapshot
from repro.types import Route


class TestRenderRoute:
    def test_overlay_markers(self, tiny_warehouse):
        route = Route(0, [(0, 0), (0, 1), (0, 2)])
        art = render_route(tiny_warehouse, route)
        lines = art.splitlines()
        assert lines[0][0] == "o"
        assert lines[0][1] == "*"
        assert lines[0][2] == "x"
        assert len(lines) == tiny_warehouse.height
        assert all(len(line) == tiny_warehouse.width for line in lines)

    def test_racks_preserved(self, tiny_warehouse):
        route = Route(0, [(0, 0), (0, 1)])
        art = render_route(tiny_warehouse, route)
        assert art.splitlines()[1][2] == "#"


class TestRenderSnapshot:
    def test_active_robots_drawn(self, tiny_warehouse):
        a = Route(0, [(0, 0), (0, 1), (0, 2)])
        b = Route(0, [(4, 0), (4, 1)])
        art = render_snapshot(tiny_warehouse, [a, b], 1)
        lines = art.splitlines()
        assert lines[0][1] == "0"
        assert lines[4][1] == "1"

    def test_inactive_routes_hidden(self, tiny_warehouse):
        a = Route(5, [(0, 0), (0, 1)])
        art = render_snapshot(tiny_warehouse, [a], 2)
        assert art.splitlines()[0][0] == "."

    def test_picker_marker(self):
        from repro import Warehouse

        wh = Warehouse.from_ascii("P..\n...")
        art = render_snapshot(wh, [], 0)
        assert art.splitlines()[0][0] == "P"


class TestAnimate:
    def test_frame_count_and_headers(self, tiny_warehouse):
        a = Route(0, [(0, 0), (0, 1), (0, 2)])
        frames = list(animate(tiny_warehouse, [a], 0, 2))
        assert len(frames) == 3
        assert frames[0].startswith("t=0")
        assert frames[2].startswith("t=2")
