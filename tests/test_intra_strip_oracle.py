"""Property tests of the intra-strip planner against a brute-force oracle.

The oracle does BFS over (time, position) states with full conflict
checks — the exhaustive monotone search the paper's Algorithm 2
approximates greedily.  Two properties:

* soundness — whenever the greedy planner returns a plan, the plan is
  collision-free and arrives no earlier than the oracle's optimum;
* near-completeness — whenever the oracle finds a monotone route and
  the greedy planner does not, the instance must involve the greedy
  restriction (stop-before-collision) rather than a semantics bug;
  empirically this is rare, and we bound its frequency.
"""

from typing import List, Optional

from hypothesis import given, settings, strategies as st

from repro.core.intra_strip import plan_within_strip
from repro.core.naive_store import NaiveSegmentStore
from repro.core.segments import Segment, make_move, make_wait
from repro.geometry.collision import conflict_between_segments

MAX_T = 120


def oracle_earliest_arrival(
    committed: List[Segment], start: int, origin: int, destination: int, horizon: int
) -> Optional[int]:
    """BFS over (t, p): earliest arrival of any monotone wait/move route."""

    def step_ok(t: int, p_from: int, p_to: int) -> bool:
        probe = Segment(t, p_from, t + 1, p_to)
        return all(conflict_between_segments(probe, o) is None for o in committed)

    def standing_ok(t: int, p: int) -> bool:
        probe = Segment(t, p, t, p)
        return all(conflict_between_segments(probe, o) is None for o in committed)

    if not standing_ok(start, origin):
        return None
    if origin == destination:
        return start
    direction = 1 if destination > origin else -1
    frontier = {(start, origin)}
    seen = set(frontier)
    for t in range(start, horizon):
        nxt = set()
        for (tt, p) in frontier:
            if tt != t:
                nxt.add((tt, p))
                continue
            for p2 in (p, p + direction):
                if step_ok(t, p, p2):
                    if p2 == destination:
                        return t + 1
                    state = (t + 1, p2)
                    if state not in seen:
                        seen.add(state)
                        nxt.add(state)
        frontier = nxt
        if not frontier:
            return None
    return None


@st.composite
def traffic(draw):
    segments = []
    for _ in range(draw(st.integers(0, 6))):
        t0 = draw(st.integers(0, 30))
        p0 = draw(st.integers(0, 12))
        kind = draw(st.integers(0, 2))
        if kind == 0:
            segments.append(make_wait(t0, p0, draw(st.integers(1, 10))))
        else:
            p1 = draw(st.integers(0, 12))
            segments.append(make_move(t0, p0, p1))
    return segments


class TestAgainstOracle:
    @settings(max_examples=300, deadline=None)
    @given(
        traffic(),
        st.integers(0, 10),
        st.integers(0, 12),
        st.integers(0, 12),
    )
    def test_soundness(self, committed, start, origin, destination):
        store = NaiveSegmentStore()
        for seg in committed:
            store.insert(seg)
        plan = plan_within_strip(store, start, origin, destination, max_wait=40)
        if plan is None:
            return
        # 1. Plans are collision-free against every committed segment.
        for seg in plan.segments:
            for other in committed:
                assert conflict_between_segments(seg, other) is None
        # 2. Never beats the oracle's optimum (the oracle explores a
        # superset of the greedy search space).
        opt = oracle_earliest_arrival(committed, start, origin, destination, MAX_T)
        assert opt is not None
        assert plan.arrival_time >= opt if origin != destination else True

    @settings(max_examples=300, deadline=None)
    @given(
        traffic(),
        st.integers(0, 10),
        st.integers(0, 12),
        st.integers(0, 12),
    )
    def test_completeness_gap_is_bounded(self, committed, start, origin, destination):
        """The greedy planner may fail where the oracle succeeds, but
        only by a modest margin in arrival when it does succeed."""
        store = NaiveSegmentStore()
        for seg in committed:
            store.insert(seg)
        plan = plan_within_strip(store, start, origin, destination, max_wait=40)
        opt = oracle_earliest_arrival(committed, start, origin, destination, MAX_T)
        if plan is not None and opt is not None and origin != destination:
            # Greedy never loses more than the theory's style of bound
            # on these small instances: optimum plus all waiting the
            # traffic could force.
            worst = opt + sum(o.duration + 2 for o in committed) + 2
            assert plan.arrival_time <= worst
