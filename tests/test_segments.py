"""Tests for the Segment value type and Eq. (4) rotation equivalence."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.segments import Segment, make_move, make_wait


@st.composite
def segments(draw, max_t=40, max_p=30, max_len=15):
    t0 = draw(st.integers(0, max_t))
    p0 = draw(st.integers(0, max_p))
    slope = draw(st.sampled_from([-1, 0, 1]))
    length = draw(st.integers(0, max_len))
    return Segment(t0, p0, t0 + length, p0 + slope * length if slope else p0)


class TestConstruction:
    def test_forward(self):
        s = Segment(2, 3, 6, 7)
        assert s.slope == 1 and s.duration == 4 and not s.is_wait

    def test_backward(self):
        s = Segment(0, 7, 3, 4)
        assert s.slope == -1

    def test_wait(self):
        s = Segment(1, 5, 4, 5)
        assert s.slope == 0 and s.is_wait and not s.is_point

    def test_point(self):
        s = Segment(1, 5, 1, 5)
        assert s.is_point and not s.is_wait and s.duration == 0

    def test_rejects_backwards_time(self):
        with pytest.raises(ValueError):
            Segment(5, 0, 3, 2)

    def test_rejects_non_unit_speed(self):
        with pytest.raises(ValueError):
            Segment(0, 0, 2, 6)

    def test_raw_round_trip(self):
        s = Segment(1, 2, 5, 6)
        assert s.raw == (1, 2, 5, 6)
        assert Segment(*s.raw) == s

    def test_equality_and_hash(self):
        assert Segment(0, 1, 2, 3) == Segment(0, 1, 2, 3)
        assert Segment(0, 1, 2, 3) != Segment(0, 1, 2, 1)
        assert len({Segment(0, 1, 2, 3), Segment(0, 1, 2, 3)}) == 1


class TestPositionAt:
    def test_interior(self):
        assert Segment(0, 2, 4, 6).position_at(3) == 5

    def test_backward_interior(self):
        assert Segment(0, 6, 4, 2).position_at(1) == 5

    def test_wait(self):
        assert Segment(0, 3, 5, 3).position_at(4) == 3

    def test_outside_raises(self):
        with pytest.raises(ValueError):
            Segment(0, 0, 4, 4).position_at(5)

    @given(segments(), st.data())
    def test_endpoints(self, s, data):
        assert s.position_at(s.t0) == s.p0
        assert s.position_at(s.t1) == s.p1


class TestInterceptRotationEquivalence:
    """The integer intercept must equal sqrt(2) x Eq. (4)'s rotated coordinate."""

    @given(segments())
    def test_intercept_matches_rotation(self, s):
        if s.slope == 0:
            return
        rx, ry = s.rotated()
        if s.slope == 1:
            # theta = -pi/4 rotates the line p = t + b onto a horizontal
            # line whose second coordinate is b / sqrt(2).
            assert math.isclose(ry * math.sqrt(2), s.intercept, abs_tol=1e-9)
        else:
            # theta = +pi/4: the rotated second coordinate carries p0+t0.
            assert math.isclose(ry * math.sqrt(2), s.intercept, abs_tol=1e-9)

    @given(segments())
    def test_sub_segment_keeps_intercept(self, s):
        # Segments sliding along their own line keep the intercept
        # (degenerate one-point tails lose the slope, hence >= 2).
        if s.duration >= 2:
            sub = Segment(s.t0 + 1, s.position_at(s.t0 + 1), s.t1, s.p1)
            assert sub.slope == s.slope
            assert sub.intercept == s.intercept


class TestFactories:
    def test_make_move_forward(self):
        s = make_move(3, 1, 6)
        assert s == Segment(3, 1, 8, 6)

    def test_make_move_backward(self):
        s = make_move(3, 6, 1)
        assert s == Segment(3, 6, 8, 1)

    def test_make_move_in_place(self):
        assert make_move(3, 4, 4).is_point

    def test_make_wait(self):
        assert make_wait(2, 5, 3) == Segment(2, 5, 5, 5)

    def test_make_wait_zero(self):
        assert make_wait(2, 5, 0).is_point

    def test_make_wait_negative_raises(self):
        with pytest.raises(ValueError):
            make_wait(2, 5, -1)
