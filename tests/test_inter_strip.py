"""Tests for the strip-level search (Algorithm 4) and its crossing rules."""


from repro import Query, Warehouse, build_strip_graph
from repro.core.conversion import plan_to_route
from repro.core.inter_strip import (
    CrossingEntry,
    SearchConfig,
    SearchStats,
    _nearest_transit,
    plan_route,
)
from repro.core.slope_index import SlopeIndexedStore


def make_world(art: str):
    wh = Warehouse.from_ascii(art)
    graph = build_strip_graph(wh)
    stores = [SlopeIndexedStore() for _ in graph.strips]
    crossings = set()
    return wh, graph, stores, crossings


def plan(graph, stores, crossings, query, **kw):
    return plan_route(graph, stores, crossings, query, SearchConfig(**kw), SearchStats())


def commit(graph, stores, crossings, route_plan):
    """Commit a RoutePlan the same way SRPPlanner does."""
    for leg in route_plan.legs:
        store = stores[leg.strip]
        if leg.entry is not None:
            store.insert(leg.entry.point)
            crossings.add(leg.entry.key)
        for seg in leg.segments:
            store.insert(seg)


OPEN = """
......
......
......
"""

CLUSTERED = """
........
..##.##.
..##.##.
..##.##.
........
..##.##.
..##.##.
........
"""


class TestBasicRouting:
    def test_trivial_same_cell(self):
        wh, graph, stores, crossings = make_world(OPEN)
        rp = plan(graph, stores, crossings, Query((1, 1), (1, 1), 7))
        assert rp is not None and rp.arrival_time == 7 and rp.legs == []

    def test_same_strip(self):
        wh, graph, stores, crossings = make_world(OPEN)
        rp = plan(graph, stores, crossings, Query((0, 0), (0, 5), 0))
        assert rp is not None and rp.arrival_time == 5
        assert len(rp.legs) == 1

    def test_cross_strip_optimal(self):
        wh, graph, stores, crossings = make_world(CLUSTERED)
        rp = plan(graph, stores, crossings, Query((0, 0), (7, 7), 0))
        assert rp is not None
        assert rp.arrival_time == 14  # Manhattan distance

    def test_rack_destination(self):
        wh, graph, stores, crossings = make_world(CLUSTERED)
        rp = plan(graph, stores, crossings, Query((0, 0), (2, 2), 0))
        assert rp is not None
        route = plan_to_route(graph, rp)
        assert route.destination == (2, 2)
        assert route.duration == 4  # Manhattan distance

    def test_rack_origin(self):
        wh, graph, stores, crossings = make_world(CLUSTERED)
        rp = plan(graph, stores, crossings, Query((2, 5), (0, 0), 0))
        assert rp is not None
        route = plan_to_route(graph, rp)
        assert route.origin == (2, 5) and route.destination == (0, 0)
        assert route.duration == 7

    def test_rack_to_rack(self):
        wh, graph, stores, crossings = make_world(CLUSTERED)
        rp = plan(graph, stores, crossings, Query((2, 2), (6, 6), 0))
        assert rp is not None
        route = plan_to_route(graph, rp)
        assert route.origin == (2, 2) and route.destination == (6, 6)

    def test_no_heuristic_same_arrival(self):
        wh, graph, stores, crossings = make_world(CLUSTERED)
        a = plan(graph, stores, crossings, Query((0, 0), (7, 7), 0), use_heuristic=True)
        b = plan(graph, stores, crossings, Query((0, 0), (7, 7), 0), use_heuristic=False)
        assert a.arrival_time == b.arrival_time


class TestCrossingSemantics:
    def test_head_on_corridor_exchange_needs_fallback(self):
        # Two robots exchanging ends of the same column: the greedy
        # transit restriction (Fig. 14) makes the restricted search give
        # up, and the full planner resolves it with its A* fallback.
        from repro import SRPPlanner
        from repro.analysis import assert_collision_free

        wh = Warehouse.from_ascii(OPEN)
        planner = SRPPlanner(wh)
        route_a = planner.plan(Query((0, 2), (2, 2), 0))
        route_b = planner.plan(Query((2, 2), (0, 2), 0))
        assert_collision_free([route_a, route_b])
        assert planner.stats.fallbacks >= 1

    def test_restricted_search_rejects_head_on_exchange(self):
        wh, graph, stores, crossings = make_world(OPEN)
        first = plan(graph, stores, crossings, Query((0, 2), (2, 2), 0))
        commit(graph, stores, crossings, first)
        # The reverse journey at the same instant would need a sidestep
        # outside the greedy transit choice: the strip search refuses.
        assert plan(graph, stores, crossings, Query((2, 2), (0, 2), 0)) is None

    def test_boundary_swap_blocked(self):
        wh, graph, stores, crossings = make_world(OPEN)
        # Manually commit a crossing (1,2) -> (0,2) arriving t=1.
        crossings.add(((1, 2), (0, 2), 1))
        rp = plan(graph, stores, crossings, Query((0, 2), (2, 2), 0))
        route = plan_to_route(graph, rp)
        # The reverse crossing (0,2) -> (1,2) at t=1 is forbidden.
        assert not (route.position_at(0) == (0, 2) and route.position_at(1) == (1, 2))

    def test_crossing_entry_keys(self):
        entry = CrossingEntry(5, (0, 0), (1, 0), None)
        assert entry.key == ((0, 0), (1, 0), 5)
        assert entry.reverse_key == ((1, 0), (0, 0), 5)


class TestNearestTransit:
    # The helpers take the flattened (lo, hi, offset) tuples of
    # StripGraph.neighbor_transits, not TransitRange objects.
    def test_inside_range(self):
        assert _nearest_transit([(0, 9, 2)], 4) == (4, 6)

    def test_clamped(self):
        assert _nearest_transit([(3, 5, 0)], 0) == (3, 3)

    def test_picks_closest_range(self):
        ranges = [(0, 1, 0), (8, 9, 0)]
        assert _nearest_transit(ranges, 7) == (8, 8)
        assert _nearest_transit(ranges, 2) == (1, 1)


class TestTrafficInteraction:
    def test_second_route_avoids_first(self):
        wh, graph, stores, crossings = make_world(CLUSTERED)
        q1 = Query((0, 0), (7, 7), 0)
        q2 = Query((7, 0), (0, 7), 0)
        rp1 = plan(graph, stores, crossings, q1)
        commit(graph, stores, crossings, rp1)
        rp2 = plan(graph, stores, crossings, q2)
        assert rp2 is not None
        from repro.analysis import assert_collision_free

        assert_collision_free([plan_to_route(graph, rp1), plan_to_route(graph, rp2)])

    def test_search_fails_when_origin_claimed(self):
        wh, graph, stores, crossings = make_world(OPEN)
        idx, pos = graph.locate((0, 3))
        from repro.core.segments import make_wait

        stores[idx].insert(make_wait(0, pos, 10))
        rp = plan(graph, stores, crossings, Query((0, 3), (2, 3), 0))
        assert rp is None

    def test_stats_populated(self):
        wh, graph, stores, crossings = make_world(CLUSTERED)
        stats = SearchStats()
        plan_route(graph, stores, crossings, Query((0, 0), (7, 7), 0), SearchConfig(), stats)
        assert stats.strips_popped > 0
        assert stats.intra_calls > 0


class TestEntryClearTime:
    def test_waiting_obstacle(self):
        from repro.core.inter_strip import _entry_clear_time
        from repro.core.segments import make_wait

        obstacle = make_wait(5, 3, 10)  # occupies pos 3 during [5, 15]
        assert _entry_clear_time(obstacle, 3, 0) == 16
        assert _entry_clear_time(obstacle, 3, 20) == 20

    def test_moving_obstacle(self):
        from repro.core.inter_strip import _entry_clear_time
        from repro.core.segments import make_move

        obstacle = make_move(2, 0, 8)  # passes pos 5 at t=7
        assert _entry_clear_time(obstacle, 5, 0) == 8
        assert _entry_clear_time(obstacle, 5, 9) == 9

    def test_backward_moving_obstacle(self):
        from repro.core.inter_strip import _entry_clear_time
        from repro.core.segments import make_move

        obstacle = make_move(0, 9, 1)  # passes pos 4 at t=5
        assert _entry_clear_time(obstacle, 4, 0) == 6


class TestTransitToward:
    def test_lands_at_target(self):
        from repro.core.inter_strip import _transit_toward

        ranges = [(0, 9, 2)]
        assert _transit_toward(ranges, from_pos=0, target_pos=7) == (5, 7)

    def test_clamped_to_range(self):
        from repro.core.inter_strip import _transit_toward

        ranges = [(3, 5, 0)]
        assert _transit_toward(ranges, from_pos=0, target_pos=9) == (5, 5)

    def test_prefers_landing_accuracy_then_proximity(self):
        from repro.core.inter_strip import _transit_toward

        ranges = [(0, 2, 0), (8, 9, 0)]
        # Target 8 reachable exactly via the second range even though
        # the first is closer to from_pos.
        assert _transit_toward(ranges, from_pos=1, target_pos=8) == (8, 8)


class TestSearchConfigKnobs:
    def test_detour_cutoff_bounds_failed_searches(self):
        wh = Warehouse.from_ascii("\n".join(["." * 40] * 6))
        graph = build_strip_graph(wh)
        stores = [SlopeIndexedStore() for _ in graph.strips]
        # Park a permanent squatter on the destination.
        idx, pos = graph.locate((5, 39))
        from repro.core.segments import make_wait

        stores[idx].insert(make_wait(0, pos, 10_000))
        stats = SearchStats()
        result = plan_route(
            graph, stores, set(), Query((0, 0), (5, 39), 0), SearchConfig(), stats
        )
        assert result is None
        # The cutoff keeps the failed search from sweeping every strip
        # arbitrarily often.
        assert stats.strips_popped <= 4 * graph.n_vertices

    def test_exact_intra_flag_round_trips(self):
        cfg = SearchConfig(intra_exact=True)
        assert cfg.intra_exact
