"""Tests for segment-plan <-> grid-route conversion."""


from repro import Query, SRPPlanner, build_strip_graph
from repro.core.conversion import plan_to_route, route_to_strip_artifacts
from repro.core.inter_strip import SearchConfig, SearchStats, plan_route
from repro.core.slope_index import SlopeIndexedStore
from repro.types import Route
from tests.conftest import random_cells


class TestPlanToRoute:
    def _plan(self, wh, query):
        graph = build_strip_graph(wh)
        stores = [SlopeIndexedStore() for _ in graph.strips]
        rp = plan_route(graph, stores, set(), query, SearchConfig(), SearchStats())
        return graph, rp

    def test_route_matches_plan_envelope(self, tiny_warehouse):
        graph, rp = self._plan(tiny_warehouse, Query((0, 0), (7, 7), 3))
        route = plan_to_route(graph, rp)
        assert route.start_time == 3
        assert route.origin == (0, 0)
        assert route.destination == (7, 7)
        assert route.finish_time == rp.arrival_time
        assert route.is_unit_speed()

    def test_rack_origin_waits_then_steps_out(self, tiny_warehouse):
        graph, rp = self._plan(tiny_warehouse, Query((2, 2), (0, 0), 0))
        route = plan_to_route(graph, rp)
        assert route.grids[0] == (2, 2)
        assert route.is_unit_speed()

    def test_every_step_adjacent_or_wait(self, mid_warehouse):
        planner = SRPPlanner(mid_warehouse)
        cells = random_cells(mid_warehouse, 40, seed=17)
        for k in range(0, 40, 2):
            route = planner.plan(Query(cells[k], cells[k + 1], k))
            assert route.is_unit_speed()


class TestRouteToStripArtifacts:
    def _coverage(self, graph, segments):
        covered = set()
        for strip_idx, seg in segments:
            for t in range(seg.t0, seg.t1 + 1):
                covered.add((t, graph.strips[strip_idx].grid_at(seg.position_at(t))))
        return covered

    def test_artifacts_cover_route(self, mid_warehouse):
        """Every (time, cell) step of the route is covered by a segment."""
        graph = build_strip_graph(mid_warehouse)
        planner = SRPPlanner(mid_warehouse)
        cells = random_cells(mid_warehouse, 30, seed=23, include_racks=False)
        for k in range(0, 30, 2):
            route = planner.plan(Query(cells[k], cells[k + 1], 10 * k))
            segments, crossings = route_to_strip_artifacts(graph, route)
            covered = self._coverage(graph, segments)
            for t, grid in route.steps():
                assert (t, grid) in covered

    def test_crossing_events_match_strip_changes(self, tiny_warehouse):
        graph = build_strip_graph(tiny_warehouse)
        route = Route(0, [(0, 0), (1, 0), (2, 0), (2, 1)])
        segments, crossings = route_to_strip_artifacts(graph, route)
        # (0,0) row strip -> column strip is one change; (2,0) -> (2,1)
        # stays longitudinal? depends on decomposition; verify count by
        # locating each step.
        changes = 0
        prev = graph.strip_index_of((0, 0))
        for _t, g in list(route.steps())[1:]:
            cur = graph.strip_index_of(g)
            if cur != prev:
                changes += 1
            prev = cur
        assert len(crossings) == changes
        for from_cell, to_cell, t in crossings:
            assert route.position_at(t - 1) == from_cell
            assert route.position_at(t) == to_cell

    def test_single_cell_route_empty(self, tiny_warehouse):
        graph = build_strip_graph(tiny_warehouse)
        segments, crossings = route_to_strip_artifacts(graph, Route(4, [(0, 0)]))
        assert segments == [] and crossings == []

    def test_wait_runs_become_wait_segments(self, tiny_warehouse):
        graph = build_strip_graph(tiny_warehouse)
        route = Route(0, [(0, 0), (0, 0), (0, 0), (0, 1)])
        segments, _ = route_to_strip_artifacts(graph, route)
        kinds = sorted((seg.slope, seg.duration) for _i, seg in segments)
        assert (0, 2) in kinds  # the two waiting seconds
