"""Tests for the packed crossing ledger."""

from hypothesis import given, settings, strategies as st

from repro.core.crossings import CrossingLedger

cell = st.tuples(st.integers(0, 19), st.integers(0, 19))


class TestLedgerBasics:
    def test_add_and_contains(self):
        ledger = CrossingLedger(20, 20)
        ledger.add((1, 2), (1, 3), 10)
        assert ledger.contains((1, 2), (1, 3), 10)
        assert ((1, 2), (1, 3), 10) in ledger
        assert not ledger.contains((1, 3), (1, 2), 10)  # direction matters
        assert not ledger.contains((1, 2), (1, 3), 11)  # time matters

    def test_add_key_and_update(self):
        ledger = CrossingLedger(20, 20)
        ledger.add_key(((0, 0), (0, 1), 5))
        ledger.update([((2, 2), (3, 2), 7), ((4, 4), (4, 5), 9)])
        assert len(ledger) == 3
        assert ((2, 2), (3, 2), 7) in ledger

    def test_prune(self):
        ledger = CrossingLedger(20, 20)
        ledger.add((0, 0), (0, 1), 5)
        ledger.add((0, 0), (0, 1), 50)
        assert ledger.prune(10) == 1
        assert len(ledger) == 1
        assert ((0, 0), (0, 1), 50) in ledger

    def test_clear_and_bool(self):
        ledger = CrossingLedger(20, 20)
        assert not ledger
        ledger.add((0, 0), (1, 0), 1)
        assert ledger
        ledger.clear()
        assert not ledger and len(ledger) == 0


class TestPackingIsInjective:
    @settings(max_examples=300)
    @given(cell, cell, st.integers(0, 100_000), cell, cell, st.integers(0, 100_000))
    def test_no_key_collisions(self, f1, t1, time1, f2, t2, time2):
        ledger = CrossingLedger(20, 20)
        ledger.add(f1, t1, time1)
        expected = (f1, t1, time1) == (f2, t2, time2)
        assert ledger.contains(f2, t2, time2) == expected

    @settings(max_examples=200)
    @given(st.lists(st.tuples(cell, cell, st.integers(0, 1000)), max_size=30))
    def test_len_matches_distinct_keys(self, events):
        ledger = CrossingLedger(20, 20)
        for f, t, time in events:
            ledger.add(f, t, time)
        assert len(ledger) == len(set(events))
