"""Shared fixtures and brute-force oracles for the test suite."""

from __future__ import annotations

import random
from typing import Optional, Tuple

import pytest

from repro import LayoutSpec, Warehouse, generate_layout

RawSegment = Tuple[int, int, int, int]


# ----------------------------------------------------------------------
# Brute-force oracles
# ----------------------------------------------------------------------
def positions_of(seg: RawSegment) -> dict:
    """Map integer time -> position for a raw (t0, p0, t1, p1) segment."""
    t0, p0, t1, p1 = seg
    if t1 == t0:
        return {t0: p0}
    step = (p1 - p0) // (t1 - t0)
    return {t: p0 + step * (t - t0) for t in range(t0, t1 + 1)}


def brute_force_conflict(a: RawSegment, b: RawSegment) -> Optional[int]:
    """Earliest blocked time of ``a`` against ``b`` by direct simulation.

    Mirrors the semantics of :func:`repro.geometry.collision.conflict_between`:
    vertex conflicts block at the collision second, swaps at the second
    after the exchange.
    """
    pa, pb = positions_of(a), positions_of(b)
    times = sorted(set(pa) & set(pb))
    blocked = None
    for t in times:
        if pa[t] == pb[t]:
            blocked = t
            break
        if t + 1 in pa and t + 1 in pb and pa[t + 1] == pb[t] and pb[t + 1] == pa[t]:
            blocked = t + 1
            break
    return blocked


# ----------------------------------------------------------------------
# Warehouse fixtures
# ----------------------------------------------------------------------
TINY_ART = """
........
..##.##.
..##.##.
..##.##.
........
..##.##.
..##.##.
........
"""


@pytest.fixture
def tiny_warehouse() -> Warehouse:
    """An 8x8 two-cluster-row warehouse for fast unit tests."""
    return Warehouse.from_ascii(TINY_ART, name="tiny")


@pytest.fixture
def small_warehouse() -> Warehouse:
    """A generated 28x20 warehouse with pickers and robots."""
    spec = LayoutSpec(
        height=28,
        width=20,
        cluster_length=4,
        n_pickers=4,
        n_robots=6,
        seed=2,
    )
    return generate_layout(spec, name="small")


@pytest.fixture
def mid_warehouse() -> Warehouse:
    """A generated 40x30 warehouse for integration tests."""
    spec = LayoutSpec(
        height=40,
        width=30,
        cluster_length=5,
        n_pickers=6,
        n_robots=10,
        seed=3,
    )
    return generate_layout(spec, name="mid")


def random_cells(warehouse: Warehouse, n: int, seed: int, include_racks: bool = True):
    """Deterministic random endpoint cells for stress tests."""
    rng = random.Random(seed)
    pool = warehouse.free_cells()
    if include_racks:
        pool = pool + warehouse.rack_cells()
    return [pool[rng.randrange(len(pool))] for _ in range(n)]
