"""Hand-crafted MAPF scenario battery.

Classic multi-agent path finding stress shapes — corridors,
intersections, bottlenecks, loops — each checked against every planner
for collision-freedom and basic effectiveness.  These are the shapes
where naive planners deadlock or collide; keeping them green guards the
subtle boundary/swap semantics.
"""

import pytest

from repro import ACPPlanner, Query, RPPlanner, SAPPlanner, SRPPlanner, TWPPlanner, Warehouse
from repro.analysis import find_conflicts

ALL_PLANNERS = [SRPPlanner, SAPPlanner, TWPPlanner, RPPlanner, ACPPlanner]

CORRIDOR = Warehouse.from_ascii(
    """
.......
.#####.
.......
"""
)

INTERSECTION = Warehouse.from_ascii(
    """
..#.#..
..#.#..
.......
..#.#..
..#.#..
"""
)

BOTTLENECK = Warehouse.from_ascii(
    """
.......
###.###
.......
"""
)

LOOP = Warehouse.from_ascii(
    """
.....
.###.
.###.
.....
"""
)


def plan_all(planner, queries):
    routes = {}
    for q in queries:
        routes[q.query_id] = planner.plan(q)
        routes.update(planner.take_revisions())
    return list(routes.values())


@pytest.mark.parametrize("planner_cls", ALL_PLANNERS)
class TestCorridor:
    def test_same_direction_convoy(self, planner_cls):
        queries = [
            Query((0, 0), (0, 6), 0, query_id=1),
            Query((0, 1), (2, 6), 0, query_id=2),
            Query((2, 0), (2, 6), 1, query_id=3),
        ]
        routes = plan_all(planner_cls(CORRIDOR), queries)
        assert find_conflicts(routes) == []

    def test_opposing_via_two_lanes(self, planner_cls):
        queries = [
            Query((0, 0), (0, 6), 0, query_id=1),
            Query((2, 6), (2, 0), 0, query_id=2),
        ]
        routes = plan_all(planner_cls(CORRIDOR), queries)
        assert find_conflicts(routes) == []
        # Two free lanes: neither robot should need a big detour.
        assert all(r.duration <= 10 for r in routes)


@pytest.mark.parametrize("planner_cls", ALL_PLANNERS)
class TestIntersection:
    def test_cross_traffic(self, planner_cls):
        queries = [
            Query((2, 0), (2, 6), 0, query_id=1),  # west -> east
            Query((0, 3), (4, 3), 0, query_id=2),  # north -> south
            Query((4, 3), (0, 3), 4, query_id=3),  # south -> north, later
        ]
        routes = plan_all(planner_cls(INTERSECTION), queries)
        assert find_conflicts(routes) == []

    def test_four_way_burst(self, planner_cls):
        queries = [
            Query((2, 0), (2, 6), 0, query_id=1),
            Query((2, 6), (2, 0), 0, query_id=2),
            Query((0, 3), (4, 3), 0, query_id=3),
        ]
        routes = plan_all(planner_cls(INTERSECTION), queries)
        assert find_conflicts(routes) == []


@pytest.mark.parametrize("planner_cls", ALL_PLANNERS)
class TestBottleneck:
    def test_single_gap_shared(self, planner_cls):
        # Both robots must funnel through the one-cell gap at (1, 3).
        queries = [
            Query((0, 0), (2, 6), 0, query_id=1),
            Query((0, 6), (2, 0), 2, query_id=2),
        ]
        routes = plan_all(planner_cls(BOTTLENECK), queries)
        assert find_conflicts(routes) == []
        for route in routes:
            assert (1, 3) in route.grids  # the only way through

    def test_queueing_at_gap(self, planner_cls):
        queries = [
            Query((0, k), (2, k), k % 2, query_id=k) for k in range(3)
        ]
        routes = plan_all(planner_cls(BOTTLENECK), queries)
        assert find_conflicts(routes) == []


@pytest.mark.parametrize("planner_cls", ALL_PLANNERS)
class TestLoop:
    def test_ring_exchange(self, planner_cls):
        # Robots on opposite corners of a ring swap places; the ring
        # always offers a conflict-free rotation.
        queries = [
            Query((0, 0), (3, 4), 0, query_id=1),
            Query((3, 4), (0, 0), 0, query_id=2),
        ]
        routes = plan_all(planner_cls(LOOP), queries)
        assert find_conflicts(routes) == []

    def test_three_rotating(self, planner_cls):
        queries = [
            Query((0, 0), (0, 4), 0, query_id=1),
            Query((0, 4), (3, 4), 0, query_id=2),
            Query((3, 4), (0, 0), 0, query_id=3),
        ]
        routes = plan_all(planner_cls(LOOP), queries)
        assert find_conflicts(routes) == []


class TestSRPSpecificShapes:
    def test_long_aisle_convoy(self):
        """Twenty robots entering one aisle in sequence stay ordered."""
        wh = Warehouse.from_ascii("." * 30 + "\n" + "." * 30)
        planner = SRPPlanner(wh)
        routes = [
            planner.plan(Query((0, 0), (0, 29), 2 * k, query_id=k))
            for k in range(10)
        ]
        assert find_conflicts(routes) == []
        # Unit headway traffic: everyone still drives straight through.
        assert all(r.duration <= 31 for r in routes)

    def test_perpendicular_weave(self):
        """Routes weaving between latitudinal and longitudinal strips."""
        wh = Warehouse.from_ascii(
            """
........
.##.##..
.##.##..
........
.##.##..
.##.##..
........
"""
        )
        planner = SRPPlanner(wh)
        queries = [
            Query((0, 0), (6, 7), 0, query_id=1),
            Query((6, 0), (0, 7), 0, query_id=2),
            Query((0, 7), (6, 0), 1, query_id=3),
            Query((6, 7), (0, 0), 1, query_id=4),
            Query((3, 0), (3, 7), 2, query_id=5),
        ]
        routes = [planner.plan(q) for q in queries]
        assert find_conflicts(routes) == []
