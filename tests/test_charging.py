"""Charging stations, deterministic placement, and the scheduler.

The contract under test (docs/charging.md):

* :func:`place_stations` is a pure function of (warehouse, n): valid,
  non-overlapping, rack-free stations, identical on every call;
* :class:`ChargingScheduler` picks the minimum-admission-time station
  with deterministic ties and accounts queue wait exactly;
* admission estimates use the planner's strip distance maps when
  available and never fall below the Manhattan bound.
"""

import pytest

from repro.core.planner import SRPPlanner
from repro.exceptions import SimulationError
from repro.simulation import ChargingScheduler, ChargingStation, place_stations
from repro.types import manhattan
from repro.warehouse import w1


@pytest.fixture(scope="module")
def warehouse():
    return w1(scale=0.3)


class TestPlaceStations:
    def test_deterministic(self, warehouse):
        assert place_stations(warehouse, 3) == place_stations(warehouse, 3)

    def test_count_and_validity(self, warehouse):
        stations = place_stations(warehouse, 4)
        assert len(stations) == 4
        assert [s.station_id for s in stations] == [0, 1, 2, 3]
        for station in stations:
            station.validate(warehouse)  # rack-free, adjacent flanks

    def test_no_cell_overlap(self, warehouse):
        cells = []
        for s in place_stations(warehouse, 4):
            cells.extend((s.cell, s.queue_cell, s.exit_cell))
        assert len(cells) == len(set(cells))

    def test_avoids_pickers_and_homes(self, warehouse):
        reserved = set(warehouse.pickers) | set(warehouse.robot_homes)
        for s in place_stations(warehouse, 4):
            assert not {s.cell, s.queue_cell, s.exit_cell} & reserved

    def test_zero_stations_rejected(self, warehouse):
        with pytest.raises(SimulationError):
            place_stations(warehouse, 0)

    def test_impossible_count_rejected(self, warehouse):
        with pytest.raises(SimulationError):
            place_stations(warehouse, 10_000)

    def test_station_validation_rejects_rack_pad(self, warehouse):
        rack = warehouse.rack_cells()[0]
        near = (rack[0], rack[1] + 1)
        bad = ChargingStation(0, rack, near, near)
        with pytest.raises(SimulationError):
            bad.validate(warehouse)

    def test_station_validation_rejects_detached_queue(self, warehouse):
        stations = place_stations(warehouse, 1)
        s = stations[0]
        far = s.exit_cell if manhattan(s.exit_cell, s.cell) != 1 else (
            s.cell[0] + 5, s.cell[1] + 5)
        with pytest.raises(SimulationError):
            ChargingStation(0, s.cell, far, s.exit_cell).validate(warehouse)


def _stations():
    # Two synthetic stations on a bare grid: pads 10 apart on one row.
    return [
        ChargingStation(0, (0, 1), (0, 0), (0, 2)),
        ChargingStation(1, (0, 11), (0, 10), (0, 12)),
    ]


class TestChargingScheduler:
    def test_needs_stations(self):
        with pytest.raises(SimulationError):
            ChargingScheduler([])

    def test_picks_nearest_when_both_free(self):
        sched = ChargingScheduler(_stations())
        station, admit = sched.pick(origin=(0, 3), now=100)
        assert station.station_id == 0
        # travel = |3-0| = 3 to the queue cell, +1 docking move
        assert admit == 104

    def test_busy_pad_redirects_to_farther_station(self):
        sched = ChargingScheduler(_stations())
        sched.occupy(sched.stations[0], until=500)
        station, admit = sched.pick(origin=(0, 3), now=100)
        assert station.station_id == 1
        assert admit == 100 + manhattan((0, 3), (0, 10)) + 1

    def test_waits_at_nearer_station_when_both_busy(self):
        sched = ChargingScheduler(_stations())
        sched.occupy(sched.stations[0], until=110)
        sched.occupy(sched.stations[1], until=400)
        station, admit = sched.pick(origin=(0, 3), now=100)
        assert station.station_id == 0
        assert admit == 110  # queued until the pad frees

    def test_tie_breaks_by_station_id(self):
        # Origin equidistant from both queue cells, both pads free.
        sched = ChargingScheduler(_stations())
        station, _ = sched.pick(origin=(0, 5), now=0)
        assert station.station_id == 0

    def test_reserve_accounts_queue_wait_and_horizon(self):
        sched = ChargingScheduler(_stations())
        station = sched.stations[0]
        sched.occupy(station, until=110)
        admit = sched.reserve(station, origin=(0, 3), now=100, duration=30)
        assert admit == 110
        assert sched.queue_wait == 110 - 104  # admit - estimated arrival
        assert sched.free_at(station) == 140  # admit + duration
        assert sched.trips == 1

    def test_reserve_without_congestion_costs_no_wait(self):
        sched = ChargingScheduler(_stations())
        admit = sched.reserve(sched.stations[1], (0, 10), now=0, duration=10)
        assert admit == 1  # adjacent: 0 travel + 1 docking move
        assert sched.queue_wait == 0

    def test_occupy_never_lowers_the_horizon(self):
        sched = ChargingScheduler(_stations())
        station = sched.stations[0]
        sched.occupy(station, until=300)
        sched.occupy(station, until=200)
        assert sched.free_at(station) == 300

    def test_distance_maps_tighten_the_estimate(self, warehouse):
        planner = SRPPlanner(warehouse)
        stations = place_stations(warehouse, 2)
        plain = ChargingScheduler(stations)
        mapped = ChargingScheduler(stations, distance_maps=planner.distance_maps)
        origin = warehouse.robot_homes[0]
        for station in stations:
            lower = plain.travel_estimate(origin, station)
            exact = mapped.travel_estimate(origin, station)
            # dmaps route around racks: at least Manhattan, never less.
            assert exact >= lower
            assert lower == manhattan(origin, station.queue_cell)
