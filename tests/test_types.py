"""Tests for the shared value types (Route, Query, Task)."""

import pytest
from hypothesis import given, strategies as st

from repro.types import Query, QueryKind, Route, Task, concatenate_routes, manhattan


class TestManhattan:
    def test_basic(self):
        assert manhattan((0, 0), (3, 4)) == 7

    def test_symmetric(self):
        assert manhattan((2, 9), (5, 1)) == manhattan((5, 1), (2, 9))

    def test_zero(self):
        assert manhattan((4, 4), (4, 4)) == 0


class TestQuery:
    def test_lower_bound(self):
        assert Query((0, 0), (2, 3)).lower_bound() == 5

    def test_defaults(self):
        q = Query((0, 0), (1, 1))
        assert q.release_time == 0
        assert q.kind is QueryKind.GENERIC
        assert q.query_id == -1

    def test_frozen(self):
        q = Query((0, 0), (1, 1))
        with pytest.raises(AttributeError):
            q.release_time = 5  # type: ignore[misc]


class TestRoute:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Route(0, [])

    def test_times(self):
        r = Route(10, [(0, 0), (0, 1), (0, 1), (1, 1)])
        assert r.finish_time == 13
        assert r.duration == 3
        assert r.origin == (0, 0)
        assert r.destination == (1, 1)

    def test_single_grid(self):
        r = Route(5, [(2, 2)])
        assert r.finish_time == 5 and r.duration == 0

    def test_position_at_inside(self):
        r = Route(10, [(0, 0), (0, 1), (1, 1)])
        assert r.position_at(11) == (0, 1)

    def test_position_at_clamps(self):
        r = Route(10, [(0, 0), (0, 1), (1, 1)])
        assert r.position_at(0) == (0, 0)
        assert r.position_at(99) == (1, 1)

    def test_steps(self):
        r = Route(3, [(0, 0), (0, 1)])
        assert list(r.steps()) == [(3, (0, 0)), (4, (0, 1))]

    def test_unit_speed_check(self):
        assert Route(0, [(0, 0), (0, 1), (0, 1)]).is_unit_speed()
        assert not Route(0, [(0, 0), (2, 2)]).is_unit_speed()

    @given(st.integers(0, 100), st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=10))
    def test_steps_count_matches_duration(self, start, grids):
        r = Route(start, grids)
        steps = list(r.steps())
        assert len(steps) == len(grids)
        assert steps[0][0] == start
        assert steps[-1][0] == r.finish_time


class TestConcatenateRoutes:
    def test_back_to_back(self):
        a = Route(0, [(0, 0), (0, 1)])
        b = Route(1, [(0, 1), (0, 2)])
        joined = concatenate_routes(a, b)
        assert joined.grids == [(0, 0), (0, 1), (0, 2)]
        assert joined.finish_time == 2

    def test_gap_filled_with_waits(self):
        a = Route(0, [(0, 0), (0, 1)])
        b = Route(4, [(0, 1), (0, 2)])
        joined = concatenate_routes(a, b)
        assert joined.grids == [(0, 0), (0, 1), (0, 1), (0, 1), (0, 1), (0, 2)]
        assert joined.finish_time == 5

    def test_mismatched_junction_rejected(self):
        a = Route(0, [(0, 0), (0, 1)])
        b = Route(1, [(5, 5), (5, 6)])
        with pytest.raises(ValueError):
            concatenate_routes(a, b)

    def test_time_travel_rejected(self):
        a = Route(0, [(0, 0), (0, 1)])
        b = Route(0, [(0, 1), (0, 2)])
        with pytest.raises(ValueError):
            concatenate_routes(a, b)


class TestTask:
    def test_fields(self):
        t = Task(5, (1, 1), (9, 9), task_id=3)
        assert t.release_time == 5 and t.rack == (1, 1) and t.picker == (9, 9)
