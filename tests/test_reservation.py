"""Tests for the grid-level reservation table."""

from repro.baselines.reservation import ReservationTable
from repro.types import Route


def make_table_with(route):
    table = ReservationTable()
    token = table.register(route)
    return table, token


class TestReservations:
    def test_vertex_blocking(self):
        table, _ = make_table_with(Route(0, [(0, 0), (0, 1), (0, 2)]))
        assert table.cell_blocked((0, 1), 1)
        assert not table.cell_blocked((0, 1), 0)

    def test_move_blocking_vertex(self):
        table, _ = make_table_with(Route(0, [(0, 0), (0, 1)]))
        # Entering (0,1) at t=1 conflicts.
        assert table.move_blocked((1, 1), (0, 1), 0)

    def test_move_blocking_swap(self):
        table, _ = make_table_with(Route(0, [(0, 0), (0, 1)]))
        assert table.move_blocked((0, 1), (0, 0), 0)

    def test_waits_reserved(self):
        table, _ = make_table_with(Route(5, [(2, 2), (2, 2), (2, 3)]))
        assert table.cell_blocked((2, 2), 5)
        assert table.cell_blocked((2, 2), 6)
        assert not table.cell_blocked((2, 2), 8)

    def test_release_restores(self):
        route = Route(0, [(0, 0), (0, 1), (1, 1)])
        table, token = make_table_with(route)
        released = table.release(token)
        assert released == route
        assert len(table) == 0
        assert not table.cell_blocked((0, 1), 1)

    def test_routes_conflicting_vertex(self):
        table, token = make_table_with(Route(0, [(0, 0), (0, 1), (0, 2)]))
        other = Route(0, [(1, 1), (0, 1)])
        assert table.routes_conflicting(other) == {token}

    def test_routes_conflicting_swap(self):
        table, token = make_table_with(Route(0, [(0, 0), (0, 1)]))
        other = Route(0, [(0, 1), (0, 0)])
        assert table.routes_conflicting(other) == {token}

    def test_routes_conflicting_none(self):
        table, _ = make_table_with(Route(0, [(0, 0), (0, 1)]))
        other = Route(5, [(0, 0), (0, 1)])
        assert table.routes_conflicting(other) == set()

    def test_conflicts_with_start_occupied(self):
        table, _ = make_table_with(Route(0, [(3, 3)] * 4))
        assert table.conflicts_with(Route(2, [(3, 3), (3, 4)]))

    def test_prune_releases_finished(self):
        table = ReservationTable()
        table.register(Route(0, [(0, 0), (0, 1)]))  # finishes at 1
        keep = table.register(Route(0, [(1, 0)] * 10))  # finishes at 9
        assert table.prune(5) == 1
        assert table.n_routes == 1
        assert table.route(keep).finish_time == 9

    def test_clear(self):
        table, _ = make_table_with(Route(0, [(0, 0), (0, 1)]))
        table.clear()
        assert len(table) == 0 and table.n_routes == 0

    def test_len_counts_vertices(self):
        table, _ = make_table_with(Route(0, [(0, 0), (0, 1), (0, 1)]))
        # (0,0)@0, (0,1)@1, (0,1)@2 -> 3 vertex reservations.
        assert len(table) == 3
