"""Tests for both segment stores: naive (V-B) and slope-indexed (V-D).

The central property: on any committed segment set, both stores must
return exactly the same earliest-conflict answer as a brute-force scan,
because the slope index is a pure acceleration of the naive store.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.columnar_store import ColumnarSegmentStore
from repro.core.naive_store import NaiveSegmentStore
from repro.core.segments import Segment, make_move
from repro.core.slope_index import SlopeIndexedStore
from repro.geometry.collision import conflict_between

STORES = [NaiveSegmentStore, SlopeIndexedStore, ColumnarSegmentStore]


@st.composite
def segment_strategy(draw, max_t=25, max_p=15, max_len=8):
    t0 = draw(st.integers(0, max_t))
    p0 = draw(st.integers(0, max_p))
    slope = draw(st.sampled_from([-1, 0, 1]))
    length = draw(st.integers(0, max_len))
    return Segment(t0, p0, t0 + length, p0 + slope * length if slope else p0)


def brute_earliest(query: Segment, committed):
    best = None
    for other in committed:
        c = conflict_between(query.raw, other.raw)
        if c is not None and (best is None or c.blocked_time < best):
            best = c.blocked_time
    return best


@pytest.mark.parametrize("store_cls", STORES)
class TestStoreBasics:
    def test_empty_store_is_clear(self, store_cls):
        store = store_cls()
        assert len(store) == 0
        assert store.earliest_conflict(Segment(0, 0, 5, 5)) is None
        assert not store.occupied(3, 3)

    def test_insert_and_len(self, store_cls):
        store = store_cls()
        store.insert(Segment(0, 0, 4, 4))
        store.insert(Segment(2, 7, 6, 7))
        assert len(store) == 2
        assert sorted(s.t0 for s in store.iter_segments()) == [0, 2]

    def test_point_segments_accepted(self, store_cls):
        store = store_cls()
        store.insert(Segment(3, 3, 3, 3))
        assert len(store) == 1
        assert store.occupied(3, 3)
        assert not store.occupied(3, 4)
        assert not store.occupied(2, 3)

    def test_detects_vertex_conflict(self, store_cls):
        store = store_cls()
        store.insert(Segment(0, 4, 6, 4))  # waits at p=4
        hit = store.earliest_conflict(make_move(0, 0, 8))
        assert hit is not None
        blocked, obstacle = hit
        assert blocked == 4
        assert obstacle == Segment(0, 4, 6, 4)

    def test_detects_swap_conflict(self, store_cls):
        store = store_cls()
        store.insert(make_move(0, 5, 0))  # opposing traffic
        hit = store.earliest_conflict(make_move(0, 0, 5))
        assert hit is not None and hit[0] == 3  # crossing at 2.5

    def test_same_slope_needs_same_line(self, store_cls):
        store = store_cls()
        store.insert(make_move(0, 1, 6))  # slope +1, intercept 1
        # Parallel on a different line: never conflicts.
        assert store.earliest_conflict(make_move(0, 0, 5)) is None
        # Same line (intercept 1), overlapping span: conflicts.
        assert store.earliest_conflict(make_move(2, 3, 8)) is not None

    def test_occupied_queries(self, store_cls):
        store = store_cls()
        store.insert(make_move(2, 1, 5))  # at p=3 when t=4
        assert store.occupied(3, 4)
        assert not store.occupied(3, 5)
        assert not store.occupied(4, 4)
        assert store.occupied(5, 6)  # endpoint

    def test_move_blocked(self, store_cls):
        store = store_cls()
        store.insert(make_move(0, 3, 2))  # 3 -> 2 over [0, 1]
        assert store.move_blocked(0, 2, 3)  # swap
        assert store.move_blocked(0, 1, 2)  # vertex at t=1, p=2
        assert not store.move_blocked(2, 1, 2)

    def test_prune_drops_finished(self, store_cls):
        store = store_cls()
        store.insert(Segment(0, 0, 3, 3))
        store.insert(Segment(5, 0, 9, 4))
        assert store.prune(4) == 1
        assert len(store) == 1
        assert next(iter(store.iter_segments())).t0 == 5

    def test_prune_keeps_active(self, store_cls):
        store = store_cls()
        store.insert(Segment(0, 0, 10, 10))
        assert store.prune(5) == 0
        assert len(store) == 1

    def test_clear(self, store_cls):
        store = store_cls()
        store.insert(Segment(0, 0, 3, 3))
        store.clear()
        assert len(store) == 0
        assert store.earliest_conflict(Segment(0, 0, 3, 3)) is None

    def test_instrumentation_counters(self, store_cls):
        store = store_cls()
        store.insert(Segment(0, 0, 5, 5))
        before = store.queries
        store.earliest_conflict(Segment(0, 5, 5, 0))
        assert store.queries == before + 1


@pytest.mark.parametrize("store_cls", STORES)
class TestAgainstBruteForce:
    @settings(max_examples=250, deadline=None)
    @given(st.lists(segment_strategy(), max_size=14), segment_strategy())
    def test_earliest_conflict_time_matches(self, store_cls, committed, query):
        store = store_cls()
        for s in committed:
            store.insert(s)
        expected = brute_earliest(query, committed)
        hit = store.earliest_conflict(query)
        assert (hit[0] if hit else None) == expected

    @settings(max_examples=250, deadline=None)
    @given(st.lists(segment_strategy(), max_size=12), st.integers(0, 15), st.integers(0, 30))
    def test_occupied_matches_positions(self, store_cls, committed, pos, t):
        store = store_cls()
        for s in committed:
            store.insert(s)
        expected = any(
            s.t0 <= t <= s.t1 and s.position_at(t) == pos for s in committed
        )
        assert store.occupied(pos, t) == expected


class TestStoreEquivalence:
    """Naive and indexed stores answer identically on the same content."""

    @settings(max_examples=200, deadline=None)
    @given(st.lists(segment_strategy(), max_size=16), segment_strategy())
    def test_same_blocked_time(self, committed, query):
        naive, indexed = NaiveSegmentStore(), SlopeIndexedStore()
        for s in committed:
            naive.insert(s)
            indexed.insert(s)
        a = naive.earliest_conflict(query)
        b = indexed.earliest_conflict(query)
        assert (a[0] if a else None) == (b[0] if b else None)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(segment_strategy(), max_size=16), st.integers(0, 30))
    def test_same_prune_counts(self, committed, before):
        naive, indexed = NaiveSegmentStore(), SlopeIndexedStore()
        for s in committed:
            naive.insert(s)
            indexed.insert(s)
        assert naive.prune(before) == indexed.prune(before)
        assert len(naive) == len(indexed)


class TestSlopeIndexStructure:
    def test_buckets_by_intercept(self):
        store = SlopeIndexedStore()
        store.insert(make_move(0, 0, 5))  # slope +1, intercept 0
        store.insert(make_move(2, 2, 7))  # slope +1, intercept 0 (same line)
        store.insert(make_move(0, 1, 6))  # slope +1, intercept 1
        assert len(store._by_intercept[1]) == 2
        assert len(store._by_intercept[1][0]) == 2

    def test_cross_slope_judged_linearly(self):
        store = SlopeIndexedStore()
        store.insert(make_move(0, 9, 0))
        before = store.judged
        store.earliest_conflict(make_move(0, 0, 9))
        assert store.judged == before + 1
