"""Tests for the integer-time segment conflict semantics (Eqs. 2-3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.segments import Segment
from repro.geometry.collision import (
    ConflictKind,
    collision_time,
    conflict_between,
    conflict_between_segments,
    earliest_block_time,
    segment_intercept,
    segment_slope,
    validate_segment,
)
from tests.conftest import brute_force_conflict


# ----------------------------------------------------------------------
# Raw-segment helpers
# ----------------------------------------------------------------------
def seg(t0, p0, t1, p1):
    return (t0, p0, t1, p1)


@st.composite
def raw_segments(draw, max_t=30, max_p=20, max_len=12):
    t0 = draw(st.integers(0, max_t))
    p0 = draw(st.integers(0, max_p))
    slope = draw(st.sampled_from([-1, 0, 1]))
    length = draw(st.integers(0, max_len))
    p1 = p0 + slope * length if slope else p0
    return (t0, p0, t0 + length, p1)


class TestSlopeAndIntercept:
    def test_forward(self):
        assert segment_slope(seg(0, 0, 5, 5)) == 1

    def test_backward(self):
        assert segment_slope(seg(0, 5, 5, 0)) == -1

    def test_wait(self):
        assert segment_slope(seg(0, 3, 4, 3)) == 0

    def test_point(self):
        assert segment_slope(seg(2, 3, 2, 3)) == 0

    def test_intercept_forward(self):
        # p = t + b with b = p0 - t0
        assert segment_intercept(seg(3, 5, 7, 9)) == 2

    def test_intercept_backward(self):
        # p = -t + c with c = p0 + t0
        assert segment_intercept(seg(3, 5, 7, 1)) == 8

    def test_validate_rejects_backwards_time(self):
        with pytest.raises(ValueError):
            validate_segment(seg(5, 0, 3, 2))

    def test_validate_rejects_superspeed(self):
        with pytest.raises(ValueError):
            validate_segment(seg(0, 0, 2, 5))


class TestVertexConflicts:
    def test_crossing_at_integer_time(self):
        # +1 from (0,0), -1 from (0,4): meet at t=2, p=2.
        c = conflict_between(seg(0, 0, 4, 4), seg(0, 4, 4, 0))
        assert c is not None and c.kind is ConflictKind.VERTEX
        assert c.blocked_time == 2

    def test_moving_hits_waiting(self):
        # +1 from (0,0) reaches p=3 at t=3 where a robot waits.
        c = conflict_between(seg(0, 0, 5, 5), seg(1, 3, 6, 3))
        assert c is not None and c.kind is ConflictKind.VERTEX
        assert c.blocked_time == 3

    def test_touching_endpoints_conflict(self):
        # Both robots occupy p=4 at t=4 even though it is an endpoint.
        c = conflict_between(seg(0, 0, 4, 4), seg(4, 4, 8, 8))
        assert c is not None and c.blocked_time == 4

    def test_miss_by_one_second(self):
        # Same cell, one second apart: no conflict.
        assert conflict_between(seg(0, 0, 4, 4), seg(5, 4, 8, 7)) is None


class TestSwapConflicts:
    def test_adjacent_swap(self):
        # (2 -> 3) while (3 -> 2) between t=0 and t=1.
        c = conflict_between(seg(0, 2, 1, 3), seg(0, 3, 1, 2))
        assert c is not None and c.kind is ConflictKind.SWAP
        assert c.blocked_time == 1

    def test_longer_segments_swap(self):
        c = conflict_between(seg(0, 0, 5, 5), seg(0, 5, 5, 0))
        # Crossing at t=2.5: swap between t=2 and t=3.
        assert c is not None and c.kind is ConflictKind.SWAP
        assert c.blocked_time == 3

    def test_half_crossing_outside_span_is_safe(self):
        # The crossing would happen at t=2.5, but one segment ends at t=2.
        assert conflict_between(seg(0, 0, 2, 2), seg(0, 5, 5, 0)) is None

    def test_eq3_collision_time_matches(self):
        a, b = seg(0, 0, 5, 5), seg(0, 5, 5, 0)
        # Eq. (3) returns the floor of the crossing time (the second
        # before the exchange).
        assert collision_time(a, b) == 2


class TestOverlapConflicts:
    def test_same_line_overlap(self):
        c = conflict_between(seg(0, 0, 5, 5), seg(2, 2, 6, 6))
        assert c is not None and c.kind is ConflictKind.OVERLAP
        assert c.blocked_time == 2

    def test_same_line_touching_single_second(self):
        c = conflict_between(seg(0, 0, 3, 3), seg(3, 3, 6, 6))
        assert c is not None and c.kind is ConflictKind.VERTEX
        assert c.blocked_time == 3

    def test_parallel_different_lines(self):
        assert conflict_between(seg(0, 0, 5, 5), seg(0, 2, 5, 7)) is None

    def test_two_waits_same_cell(self):
        c = conflict_between(seg(0, 3, 4, 3), seg(2, 3, 8, 3))
        assert c is not None and c.blocked_time == 2

    def test_two_waits_different_cells(self):
        assert conflict_between(seg(0, 3, 4, 3), seg(0, 4, 8, 4)) is None


class TestDisjointSpans:
    def test_no_time_overlap(self):
        assert conflict_between(seg(0, 0, 2, 2), seg(5, 0, 7, 2)) is None

    def test_point_vs_segment(self):
        assert conflict_between(seg(3, 3, 3, 3), seg(0, 0, 6, 6)) is not None
        assert conflict_between(seg(3, 4, 3, 4), seg(0, 0, 6, 6)) is None


class TestAgainstBruteForce:
    @settings(max_examples=400)
    @given(raw_segments(), raw_segments())
    def test_blocked_time_matches_simulation(self, a, b):
        expected = brute_force_conflict(a, b)
        got = conflict_between(a, b)
        assert (got.blocked_time if got else None) == expected

    @settings(max_examples=400)
    @given(raw_segments(), raw_segments())
    def test_symmetry_of_existence(self, a, b):
        assert (conflict_between(a, b) is None) == (conflict_between(b, a) is None)

    @settings(max_examples=400)
    @given(raw_segments(), raw_segments())
    def test_fast_path_equivalent(self, a, b):
        sa = Segment(*a)
        sb = Segment(*b)
        slow = conflict_between(a, b)
        fast = conflict_between_segments(sa, sb)
        assert (slow is None) == (fast is None)
        if slow is not None:
            assert slow.blocked_time == fast.blocked_time
            assert slow.kind == fast.kind


class TestEarliestBlockTime:
    def test_picks_minimum(self):
        target = seg(0, 0, 9, 9)
        others = [seg(0, 8, 8, 0), seg(2, 4, 6, 4), seg(7, 9, 9, 7)]
        # Conflicts at: crossing t=4, wait-hit at t=4, crossing t=8.
        assert earliest_block_time(target, others) == 4

    def test_none_when_clear(self):
        assert earliest_block_time(seg(0, 0, 3, 3), [seg(0, 10, 5, 10)]) is None

    def test_empty_iterable(self):
        assert earliest_block_time(seg(0, 0, 3, 3), []) is None
