"""Fault injection and decommit/replan recovery, end to end.

The contract under test (docs/robustness.md):

* a seeded :class:`FaultPlan` disturbs a day reproducibly;
* every recovery keeps the executed day collision-free (ground-truth
  validator) and the planner's stores exactly consistent with the
  surviving routes (state audit);
* an *empty* fault plan leaves the simulation bit-identical to a run
  with fault injection disabled entirely.
"""

import pytest

from repro.analysis import assert_collision_free, audit_planner_state
from repro.baselines import make_baseline
from repro.core.planner import SRPPlanner
from repro.exceptions import InvalidQueryError, SimulationError
from repro.simulation import BlockageFault, FaultPlan, Simulation, StallFault, run_day
from repro.types import Query
from repro.warehouse import TaskTraceSpec, generate_tasks, w1


def _routes_snapshot(sim: Simulation):
    return {q: (r.start_time, tuple(r.grids)) for q, r in sim._routes.items()}


class TestFaultPlan:
    def test_generate_is_deterministic(self, small_warehouse):
        kwargs = dict(n_robots=6, day_length=300, n_stalls=5, n_blockages=4, seed=9)
        a = FaultPlan.generate(small_warehouse, **kwargs)
        b = FaultPlan.generate(small_warehouse, **kwargs)
        assert list(a) == list(b)
        c = FaultPlan.generate(small_warehouse, **{**kwargs, "seed": 10})
        assert list(a) != list(c)

    def test_iteration_is_time_ordered(self, small_warehouse):
        plan = FaultPlan.generate(
            small_warehouse, n_robots=6, day_length=300, n_stalls=8, n_blockages=8,
            seed=1,
        )
        times = [f.time for f in plan]
        assert times == sorted(times)
        assert len(plan) == 16 and bool(plan)

    def test_blockages_target_free_cells(self, small_warehouse):
        plan = FaultPlan.generate(
            small_warehouse, n_robots=6, day_length=300, n_blockages=12, seed=4
        )
        assert all(not small_warehouse.is_rack(f.cell) for f in plan.blockages)

    def test_durations_validated(self):
        with pytest.raises(SimulationError) as exc:
            StallFault(time=5, robot_id=0, duration=0)
        assert exc.value.phase == "fault-injection"
        with pytest.raises(SimulationError):
            BlockageFault(time=5, cell=(1, 1), duration=-2)

    def test_empty_plan_is_falsy(self):
        plan = FaultPlan.empty()
        assert not plan and len(plan) == 0 and list(plan) == []


class TestReplanFromAPI:
    def test_unknown_query_rejected(self, small_warehouse):
        planner = SRPPlanner(small_warehouse)
        with pytest.raises(InvalidQueryError):
            planner.replan_from(123, (1, 1), 5)

    def test_wrong_position_rejected(self, small_warehouse):
        planner = SRPPlanner(small_warehouse)
        free = small_warehouse.free_cells()
        route = planner.plan(Query(free[0], free[40], 0, query_id=1))
        mid = route.start_time + route.duration // 2
        wrong = free[40] if route.position_at(mid) != free[40] else free[39]
        with pytest.raises(InvalidQueryError):
            planner.replan_from(1, wrong, mid)

    def test_replan_revises_route_and_stays_consistent(self, small_warehouse):
        planner = SRPPlanner(small_warehouse)
        free = small_warehouse.free_cells()
        route = planner.plan(Query(free[0], free[40], 0, query_id=1))
        assert route.duration >= 2
        mid = route.start_time + route.duration // 2
        cell = route.position_at(mid)
        revised = planner.replan_from(1, cell, mid, hold_until=mid + 4)
        # The revised route replays the executed prefix, holds at the
        # stop cell through the stall, then reaches the destination.
        assert revised.start_time == route.start_time
        assert revised.grids[: mid - route.start_time + 1] == route.grids[
            : mid - route.start_time + 1
        ]
        assert all(
            revised.position_at(t) == cell for t in range(mid, mid + 4)
        )
        assert revised.destination == route.destination
        assert planner.take_revisions() == {1: revised}
        assert planner.stats.replans == 1
        assert planner.stats.decommitted_segments > 0
        # Stores must exactly describe the one surviving (revised) route.
        assert audit_planner_state(planner, [revised]) == []

    def test_replan_is_collision_aware_of_other_routes(self, small_warehouse):
        planner = SRPPlanner(small_warehouse)
        free = small_warehouse.free_cells()
        first = planner.plan(Query(free[0], free[40], 0, query_id=1))
        second = planner.plan(Query(free[40], free[0], 0, query_id=2))
        mid = first.start_time + first.duration // 2
        revised = planner.replan_from(1, first.position_at(mid), mid)
        assert_collision_free([revised, planner.committed_route(2)])
        assert audit_planner_state(planner, [revised, second]) == []

    def test_blockage_commitment_validated(self, small_warehouse):
        planner = SRPPlanner(small_warehouse)
        with pytest.raises(InvalidQueryError):
            planner.commit_blockage((-1, 0), 0, 5)
        with pytest.raises(InvalidQueryError):
            planner.commit_blockage((1, 1), 9, 3)


class TestFaultedSimulation:
    @pytest.fixture(scope="class")
    def w1_small(self):
        return w1(scale=0.35)

    @pytest.fixture(scope="class")
    def w1_tasks(self, w1_small):
        return generate_tasks(
            w1_small, TaskTraceSpec(n_tasks=90, day_length=450, seed=3)
        )

    def test_faulted_day_is_collision_free_and_audited(self, w1_small, w1_tasks):
        """Acceptance: a seeded faulted W-1 day completes with zero
        validator collisions and zero store-audit violations."""
        faults = FaultPlan.generate(
            w1_small,
            n_robots=len(w1_small.robot_homes),
            day_length=700,
            n_stalls=30,
            n_blockages=15,
            seed=5,
        )
        planner = SRPPlanner(w1_small)
        result = run_day(
            w1_small, planner, w1_tasks,
            validate=True, measure_memory=False, faults=faults,
        )
        assert result.faults_injected == len(faults)
        assert result.replans > 0, "fault plan never disturbed an executing robot"
        assert result.conflicts == []
        assert result.audit_violations == []
        assert result.completed_tasks + result.failed_tasks == len(w1_tasks)

    def test_empty_fault_plan_is_bit_identical(self, w1_small, w1_tasks):
        def day(faults):
            planner = SRPPlanner(w1_small)
            sim = Simulation(
                w1_small, planner, w1_tasks,
                validate=False, measure_memory=False, faults=faults,
            )
            result = sim.run()
            return _routes_snapshot(sim), result.makespan

        base_routes, base_makespan = day(None)
        empty_routes, empty_makespan = day(FaultPlan.empty())
        assert empty_routes == base_routes
        assert empty_makespan == base_makespan

    def test_stall_replans_are_recorded_on_robots(self, w1_small, w1_tasks):
        faults = FaultPlan.generate(
            w1_small, n_robots=len(w1_small.robot_homes), day_length=700,
            n_stalls=20, seed=5,
        )
        planner = SRPPlanner(w1_small)
        sim = Simulation(
            w1_small, planner, w1_tasks,
            validate=False, measure_memory=False, faults=faults,
        )
        sim.run()
        assert sum(r.stalls for r in sim.fleet.robots) == 20
        assert planner.stats.replans == sim.replans + sim.recovery_failures

    def test_unrecoverable_planner_rejects_faults(self, small_warehouse):
        tasks = generate_tasks(
            small_warehouse, TaskTraceSpec(n_tasks=5, day_length=100, seed=1)
        )
        faults = FaultPlan(stalls=[StallFault(time=10, robot_id=0, duration=3)])
        planner = make_baseline("SAP", small_warehouse)
        with pytest.raises(SimulationError) as exc:
            Simulation(small_warehouse, planner, tasks, faults=faults)
        assert exc.value.phase == "fault-injection"
        # An empty plan is fine for any planner.
        Simulation(small_warehouse, planner, tasks, faults=FaultPlan.empty())
