"""Fault injection and decommit/replan recovery, end to end.

The contract under test (docs/robustness.md):

* a seeded :class:`FaultPlan` disturbs a day reproducibly;
* every recovery keeps the executed day collision-free (ground-truth
  validator) and the planner's stores exactly consistent with the
  surviving routes (state audit);
* an *empty* fault plan leaves the simulation bit-identical to a run
  with fault injection disabled entirely.
"""

import pytest

from repro.analysis import assert_collision_free, audit_planner_state
from repro.baselines import make_baseline
from repro.core.planner import SRPPlanner
from repro.exceptions import InvalidQueryError, SimulationError
from repro.simulation import (
    AisleClosureFault,
    BlockageFault,
    FaultPlan,
    Simulation,
    SlowdownFault,
    StallFault,
    run_day,
)
from repro.types import Query
from repro.warehouse import TaskTraceSpec, generate_tasks, w1


def _routes_snapshot(sim: Simulation):
    return {q: (r.start_time, tuple(r.grids)) for q, r in sim._routes.items()}


class TestFaultPlan:
    def test_generate_is_deterministic(self, small_warehouse):
        kwargs = dict(n_robots=6, day_length=300, n_stalls=5, n_blockages=4, seed=9)
        a = FaultPlan.generate(small_warehouse, **kwargs)
        b = FaultPlan.generate(small_warehouse, **kwargs)
        assert list(a) == list(b)
        c = FaultPlan.generate(small_warehouse, **{**kwargs, "seed": 10})
        assert list(a) != list(c)

    def test_iteration_is_time_ordered(self, small_warehouse):
        plan = FaultPlan.generate(
            small_warehouse, n_robots=6, day_length=300, n_stalls=8, n_blockages=8,
            seed=1,
        )
        times = [f.time for f in plan]
        assert times == sorted(times)
        assert len(plan) == 16 and bool(plan)

    def test_blockages_target_free_cells(self, small_warehouse):
        plan = FaultPlan.generate(
            small_warehouse, n_robots=6, day_length=300, n_blockages=12, seed=4
        )
        assert all(not small_warehouse.is_rack(f.cell) for f in plan.blockages)

    def test_durations_validated(self):
        with pytest.raises(SimulationError) as exc:
            StallFault(time=5, robot_id=0, duration=0)
        assert exc.value.phase == "fault-injection"
        with pytest.raises(SimulationError):
            BlockageFault(time=5, cell=(1, 1), duration=-2)

    def test_empty_plan_is_falsy(self):
        plan = FaultPlan.empty()
        assert not plan and len(plan) == 0 and list(plan) == []

    def test_generate_with_all_kinds_is_deterministic(self, small_warehouse):
        kwargs = dict(
            n_robots=6, day_length=300, n_stalls=5, n_blockages=4,
            n_slowdowns=3, n_closures=2, seed=9,
        )
        a = FaultPlan.generate(small_warehouse, **kwargs)
        b = FaultPlan.generate(small_warehouse, **kwargs)
        assert list(a) == list(b)
        assert len(a.slowdowns) == 3 and len(a.closures) == 2

    def test_new_kinds_do_not_disturb_earlier_draws(self, small_warehouse):
        """Stalls and blockages are drawn first, so a plan adding
        slowdowns/closures keeps them bit-identical to the old draw."""
        old = FaultPlan.generate(
            small_warehouse, n_robots=6, day_length=300, n_stalls=5,
            n_blockages=4, seed=9,
        )
        new = FaultPlan.generate(
            small_warehouse, n_robots=6, day_length=300, n_stalls=5,
            n_blockages=4, n_slowdowns=3, n_closures=2, seed=9,
        )
        assert new.stalls == old.stalls
        assert new.blockages == old.blockages

    def test_closures_are_contiguous_aisle_runs(self, small_warehouse):
        plan = FaultPlan.generate(
            small_warehouse, n_robots=6, day_length=300, n_closures=6, seed=2
        )
        for closure in plan.closures:
            assert all(not small_warehouse.is_rack(c) for c in closure.cells)
            # __post_init__ enforces collinearity/contiguity; spot-check
            # the span really is a unit-step run.
            cells = sorted(closure.cells)
            steps = {
                (b[0] - a[0], b[1] - a[1]) for a, b in zip(cells, cells[1:])
            }
            assert steps <= {(0, 1), (1, 0)}


class TestRichFaultValidation:
    def test_slowdown_rejects_bad_factor_and_duration(self):
        with pytest.raises(SimulationError) as exc:
            SlowdownFault(time=5, robot_id=0, factor=1, duration=4)
        assert exc.value.phase == "fault-injection"
        with pytest.raises(SimulationError):
            SlowdownFault(time=5, robot_id=0, factor=2, duration=0)

    def test_closure_rejects_degenerate_spans(self):
        with pytest.raises(SimulationError):
            AisleClosureFault(time=5, cells=(), duration=4)
        with pytest.raises(SimulationError) as exc:
            AisleClosureFault(time=5, cells=((0, 0), (1, 1)), duration=4)
        assert "collinear" in str(exc.value)
        with pytest.raises(SimulationError) as exc:
            AisleClosureFault(time=5, cells=((0, 0), (0, 2)), duration=4)
        assert "contiguous" in str(exc.value)
        AisleClosureFault(time=5, cells=((0, 2), (0, 0), (0, 1)), duration=4)

    def test_overlapping_stall_and_slowdown_on_one_robot_rejected(self):
        plan = FaultPlan(
            stalls=[StallFault(time=10, robot_id=3, duration=5)],
            slowdowns=[SlowdownFault(time=12, robot_id=3, factor=2, duration=4)],
        )
        with pytest.raises(SimulationError) as exc:
            plan.validate()
        assert exc.value.phase == "fault-validation"
        assert "robot 3" in str(exc.value)

    def test_overlapping_slowdowns_on_one_robot_rejected(self):
        plan = FaultPlan(
            slowdowns=[
                SlowdownFault(time=10, robot_id=1, factor=2, duration=6),
                SlowdownFault(time=14, robot_id=1, factor=3, duration=6),
            ],
        )
        with pytest.raises(SimulationError):
            plan.validate()

    def test_overlapping_closure_and_blockage_on_one_cell_rejected(self):
        plan = FaultPlan(
            blockages=[BlockageFault(time=10, cell=(2, 3), duration=5)],
            closures=[
                AisleClosureFault(time=12, cells=((2, 2), (2, 3)), duration=4)
            ],
        )
        with pytest.raises(SimulationError) as exc:
            plan.validate()
        assert "(2, 3)" in str(exc.value)

    def test_disjoint_windows_pass_validation(self):
        plan = FaultPlan(
            stalls=[StallFault(time=10, robot_id=3, duration=5)],
            slowdowns=[SlowdownFault(time=30, robot_id=3, factor=2, duration=4)],
            blockages=[BlockageFault(time=10, cell=(2, 3), duration=5)],
            closures=[
                AisleClosureFault(time=40, cells=((2, 2), (2, 3)), duration=4)
            ],
        )
        plan.validate()  # no overlap on any robot or cell: fine
        # Overlapping *stalls* stay legal (they merge via max, as before).
        FaultPlan(
            stalls=[
                StallFault(time=10, robot_id=3, duration=5),
                StallFault(time=12, robot_id=3, duration=5),
            ]
        ).validate()

    def test_iteration_orders_kinds_at_equal_seconds(self):
        plan = FaultPlan(
            stalls=[StallFault(time=10, robot_id=0, duration=2)],
            blockages=[BlockageFault(time=10, cell=(1, 1), duration=2)],
            slowdowns=[SlowdownFault(time=10, robot_id=1, factor=2, duration=3)],
            closures=[
                AisleClosureFault(time=10, cells=((3, 3),), duration=2)
            ],
        )
        kinds = [type(f) for f in plan]
        assert kinds == [StallFault, SlowdownFault, BlockageFault,
                         AisleClosureFault]


class TestReplanFromAPI:
    def test_unknown_query_rejected(self, small_warehouse):
        planner = SRPPlanner(small_warehouse)
        with pytest.raises(InvalidQueryError):
            planner.replan_from(123, (1, 1), 5)

    def test_wrong_position_rejected(self, small_warehouse):
        planner = SRPPlanner(small_warehouse)
        free = small_warehouse.free_cells()
        route = planner.plan(Query(free[0], free[40], 0, query_id=1))
        mid = route.start_time + route.duration // 2
        wrong = free[40] if route.position_at(mid) != free[40] else free[39]
        with pytest.raises(InvalidQueryError):
            planner.replan_from(1, wrong, mid)

    def test_replan_revises_route_and_stays_consistent(self, small_warehouse):
        planner = SRPPlanner(small_warehouse)
        free = small_warehouse.free_cells()
        route = planner.plan(Query(free[0], free[40], 0, query_id=1))
        assert route.duration >= 2
        mid = route.start_time + route.duration // 2
        cell = route.position_at(mid)
        revised = planner.replan_from(1, cell, mid, hold_until=mid + 4)
        # The revised route replays the executed prefix, holds at the
        # stop cell through the stall, then reaches the destination.
        assert revised.start_time == route.start_time
        assert revised.grids[: mid - route.start_time + 1] == route.grids[
            : mid - route.start_time + 1
        ]
        assert all(
            revised.position_at(t) == cell for t in range(mid, mid + 4)
        )
        assert revised.destination == route.destination
        assert planner.take_revisions() == {1: revised}
        assert planner.stats.replans == 1
        assert planner.stats.decommitted_segments > 0
        # Stores must exactly describe the one surviving (revised) route.
        assert audit_planner_state(planner, [revised]) == []

    def test_replan_is_collision_aware_of_other_routes(self, small_warehouse):
        planner = SRPPlanner(small_warehouse)
        free = small_warehouse.free_cells()
        first = planner.plan(Query(free[0], free[40], 0, query_id=1))
        second = planner.plan(Query(free[40], free[0], 0, query_id=2))
        mid = first.start_time + first.duration // 2
        revised = planner.replan_from(1, first.position_at(mid), mid)
        assert_collision_free([revised, planner.committed_route(2)])
        assert audit_planner_state(planner, [revised, second]) == []

    def test_blockage_commitment_validated(self, small_warehouse):
        planner = SRPPlanner(small_warehouse)
        with pytest.raises(InvalidQueryError):
            planner.commit_blockage((-1, 0), 0, 5)
        with pytest.raises(InvalidQueryError):
            planner.commit_blockage((1, 1), 9, 3)


class TestFaultedSimulation:
    @pytest.fixture(scope="class")
    def w1_small(self):
        return w1(scale=0.35)

    @pytest.fixture(scope="class")
    def w1_tasks(self, w1_small):
        return generate_tasks(
            w1_small, TaskTraceSpec(n_tasks=90, day_length=450, seed=3)
        )

    def test_faulted_day_is_collision_free_and_audited(self, w1_small, w1_tasks):
        """Acceptance: a seeded faulted W-1 day completes with zero
        validator collisions and zero store-audit violations."""
        faults = FaultPlan.generate(
            w1_small,
            n_robots=len(w1_small.robot_homes),
            day_length=700,
            n_stalls=30,
            n_blockages=15,
            seed=5,
        )
        planner = SRPPlanner(w1_small)
        result = run_day(
            w1_small, planner, w1_tasks,
            validate=True, measure_memory=False, faults=faults,
        )
        assert result.faults_injected == len(faults)
        assert result.replans > 0, "fault plan never disturbed an executing robot"
        assert result.conflicts == []
        assert result.audit_violations == []
        assert result.completed_tasks + result.failed_tasks == len(w1_tasks)

    def test_empty_fault_plan_is_bit_identical(self, w1_small, w1_tasks):
        def day(faults):
            planner = SRPPlanner(w1_small)
            sim = Simulation(
                w1_small, planner, w1_tasks,
                validate=False, measure_memory=False, faults=faults,
            )
            result = sim.run()
            return _routes_snapshot(sim), result.makespan

        base_routes, base_makespan = day(None)
        empty_routes, empty_makespan = day(FaultPlan.empty())
        assert empty_routes == base_routes
        assert empty_makespan == base_makespan

    def test_stall_replans_are_recorded_on_robots(self, w1_small, w1_tasks):
        faults = FaultPlan.generate(
            w1_small, n_robots=len(w1_small.robot_homes), day_length=700,
            n_stalls=20, seed=5,
        )
        planner = SRPPlanner(w1_small)
        sim = Simulation(
            w1_small, planner, w1_tasks,
            validate=False, measure_memory=False, faults=faults,
        )
        sim.run()
        assert sum(r.stalls for r in sim.fleet.robots) == 20
        assert planner.stats.replans == sim.replans + sim.recovery_failures

    def test_unrecoverable_planner_rejects_faults(self, small_warehouse):
        tasks = generate_tasks(
            small_warehouse, TaskTraceSpec(n_tasks=5, day_length=100, seed=1)
        )
        faults = FaultPlan(stalls=[StallFault(time=10, robot_id=0, duration=3)])
        planner = make_baseline("SAP", small_warehouse)
        with pytest.raises(SimulationError) as exc:
            Simulation(small_warehouse, planner, tasks, faults=faults)
        assert exc.value.phase == "fault-injection"
        # An empty plan is fine for any planner.
        Simulation(small_warehouse, planner, tasks, faults=FaultPlan.empty())
