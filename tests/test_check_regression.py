"""The regression gate's verdict logic on synthetic bench records.

The gate's WARN/FAIL branches almost never fire on a healthy checkout,
so CI would not notice them rotting; these tests drive each branch
directly with hand-built records and assert on the emitted verdicts
(the contract the CI summary and exit codes are built from).
"""

import pytest

from benchmarks.check_regression import (
    SERVICE_CONFIG_KEYS,
    SUMMARY_LINES,
    check,
    find_baseline,
    service_shed_verdict,
    service_throughput,
    soft_checks,
)


@pytest.fixture(autouse=True)
def clean_summary():
    """The gate collects verdicts in a module-global; isolate tests."""
    SUMMARY_LINES.clear()
    yield
    SUMMARY_LINES.clear()


def hotpath_record(**overrides):
    record = {
        "layout": "W-1", "scale": 0.4, "n_queries": 300, "day_length": 1000,
        "seed": 11, "store_layout": "columnar", "machine": "boxA",
        "commit": "abc1234", "qps_cached": 500.0, "speedup_cache": 1.4,
        "cache_hit_rate": 0.9,
    }
    record.update(overrides)
    return record


def service_record(**overrides):
    record = {
        "layout": "W-1", "scale": 0.4, "n_queries": 400, "seed": 97,
        "overload": 2.0, "deadline_ms": 250, "queue_capacity": 64,
        "worker_count": 0, "cpu_count": 8, "machine": "boxA",
        "commit": "abc1234", "sustained_qps": 120.0, "shed_rate": 0.31,
        "service_p99_ms": 40,
    }
    record.update(overrides)
    return record


class TestSoftChecks:
    def test_warns_when_cache_slower_than_uncached(self, capsys):
        soft_checks(hotpath_record(speedup_cache=0.81), hotpath_record())
        out = capsys.readouterr().out
        assert "WARN speedup_cache=0.810 < 1.0" in out

    def test_silent_when_cache_pays_its_way(self, capsys):
        soft_checks(hotpath_record(speedup_cache=1.2), hotpath_record())
        assert capsys.readouterr().out == ""

    def test_warns_on_hit_rate_collapse(self, capsys):
        fresh = hotpath_record(cache_hit_rate=0.5)
        soft_checks(fresh, hotpath_record(cache_hit_rate=0.9))
        assert "WARN cache_hit_rate=0.500" in capsys.readouterr().out

    def test_tolerates_missing_baseline(self, capsys):
        soft_checks(hotpath_record(speedup_cache=1.2), None)
        assert capsys.readouterr().out == ""


class TestServiceShedVerdict:
    def test_full_shed_fails(self, capsys):
        assert service_shed_verdict(service_record(shed_rate=1.0)) == 1
        err = capsys.readouterr().err
        assert "FAIL [service] shed rate 100%" in err
        assert "shed every request at overload 2.0x" in err

    def test_partial_shed_passes(self, capsys):
        assert service_shed_verdict(service_record(shed_rate=0.31)) == 0
        out = capsys.readouterr().out
        assert "PASS [service] shed rate 31.0% at 2.0x overload" in out

    def test_pre_tier_records_stay_flat(self, capsys):
        # Records from checkouts without priority tiers carry no
        # breakdown: the verdict uses the flat field alone.
        assert service_shed_verdict(service_record()) == 0
        assert "tier" not in capsys.readouterr().out

    def test_tier_breakdown_reported(self, capsys):
        fresh = service_record(
            shed_rate_tiers={"0": 0.0, "1": 0.05, "2": 0.42}
        )
        assert service_shed_verdict(fresh) == 0
        out = capsys.readouterr().out
        assert ("INFO [service] shed rate by priority tier: "
                "carrying=0.0%, charge=5.0%, idle=42.0%") in out

    def test_unknown_tier_labelled_by_number(self, capsys):
        service_shed_verdict(service_record(shed_rate_tiers={"7": 0.5}))
        assert "tier 7=50.0%" in capsys.readouterr().out


class TestThroughputGate:
    def test_no_baseline_passes(self, capsys):
        assert check(hotpath_record(), None, 0.2) == 0
        assert "PASS" in capsys.readouterr().out

    def test_same_machine_regression_fails(self, capsys):
        fresh = hotpath_record(qps_cached=300.0)
        baseline = hotpath_record(qps_cached=500.0)
        assert check(fresh, baseline, 0.2) == 1
        err = capsys.readouterr().err
        assert "FAIL [cached-planning]" in err
        assert "dropped more than 20%" in err

    def test_cross_machine_regression_soft_passes(self, capsys):
        fresh = hotpath_record(qps_cached=300.0, machine="boxB")
        baseline = hotpath_record(qps_cached=500.0)
        assert check(fresh, baseline, 0.2) == 0
        assert "SOFT PASS" in capsys.readouterr().out

    def test_within_threshold_passes(self, capsys):
        fresh = hotpath_record(qps_cached=450.0)
        assert check(fresh, hotpath_record(qps_cached=500.0), 0.2) == 0
        assert "PASS [cached-planning]" in capsys.readouterr().out

    def test_service_gate_uses_sustained_qps(self, capsys):
        fresh = service_record(sustained_qps=50.0)
        baseline = service_record(sustained_qps=120.0)
        code = check(fresh, baseline, 0.2, SERVICE_CONFIG_KEYS,
                     service_throughput, label="service")
        assert code == 1
        assert "FAIL [service]" in capsys.readouterr().err


class TestFindBaseline:
    def test_latest_matching_config_wins(self):
        old = service_record(commit="old", sustained_qps=100.0)
        new = service_record(commit="new", sustained_qps=110.0)
        other = service_record(commit="other", overload=4.0)
        found = find_baseline([old, new, other],
                              service_record(), SERVICE_CONFIG_KEYS)
        assert found is not None and found["commit"] == "new"

    def test_no_match_returns_none(self):
        records = [service_record(overload=4.0)]
        assert find_baseline(records, service_record(),
                             SERVICE_CONFIG_KEYS) is None
