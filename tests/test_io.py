"""Round-trip tests for warehouse / task trace (de)serialisation."""

import json

import pytest

from repro import TaskTraceSpec, generate_tasks
from repro.exceptions import LayoutError
from repro.warehouse.io import (
    load_tasks,
    load_warehouse,
    save_tasks,
    save_warehouse,
    warehouse_from_dict,
    warehouse_to_dict,
)


class TestWarehouseIO:
    def test_dict_round_trip(self, small_warehouse):
        data = warehouse_to_dict(small_warehouse)
        assert warehouse_from_dict(data) == small_warehouse

    def test_file_round_trip(self, small_warehouse, tmp_path):
        path = tmp_path / "wh.json"
        save_warehouse(small_warehouse, path)
        loaded = load_warehouse(path)
        assert loaded == small_warehouse
        assert loaded.name == small_warehouse.name

    def test_json_is_plain(self, tiny_warehouse, tmp_path):
        path = tmp_path / "wh.json"
        save_warehouse(tiny_warehouse, path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert all(set(row) <= {"#", "."} for row in payload["racks"])

    def test_bad_version_rejected(self, tiny_warehouse):
        data = warehouse_to_dict(tiny_warehouse)
        data["format_version"] = 99
        with pytest.raises(LayoutError):
            warehouse_from_dict(data)

    def test_empty_rows_rejected(self):
        with pytest.raises(LayoutError):
            warehouse_from_dict({"format_version": 1, "racks": []})


class TestTaskIO:
    def test_round_trip(self, small_warehouse, tmp_path):
        tasks = generate_tasks(small_warehouse, TaskTraceSpec(n_tasks=25, seed=6))
        path = tmp_path / "tasks.json"
        save_tasks(tasks, path)
        assert load_tasks(path) == tasks

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "tasks.json"
        path.write_text(json.dumps({"format_version": 2, "tasks": []}))
        with pytest.raises(LayoutError):
            load_tasks(path)

    def test_empty_trace_round_trip(self, tmp_path):
        path = tmp_path / "tasks.json"
        save_tasks([], path)
        assert load_tasks(path) == []
