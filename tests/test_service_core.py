"""Tests for the deterministic service core: admission, deadlines, rungs.

The central property (the acceptance criterion of the service): driving
the same seeded open-loop schedule through two fresh cores on the same
simulated clock yields identical replies, identical shed/timeout
decisions, identical telemetry, and a byte-identical saved trace.
"""

import filecmp

import pytest

from repro.core.planner import SRPPlanner
from repro.exceptions import PlanningFailedError
from repro.planner_base import Planner
from repro.service import (
    TIER_CARRYING,
    TIER_CHARGE,
    TIER_IDLE,
    Reply,
    ReplyStatus,
    Request,
    Rung,
    ServiceConfig,
    ServiceCore,
    replay_session,
)
from repro.service.loadgen import LoadSpec, drive_simulated, make_schedule
from repro.tracing import load_trace, save_trace
from repro.types import Query


class ExplodingPlanner(Planner):
    """A planner that fails every query — exercises the FAILED path."""

    name = "BOOM"

    def plan(self, query: Query):
        raise PlanningFailedError("nope", query_id=query.query_id)

    def reset(self) -> None:
        pass


@pytest.fixture
def core(small_warehouse) -> ServiceCore:
    return ServiceCore(SRPPlanner(small_warehouse))


def queries_from(warehouse, n=6):
    free = warehouse.free_cells()
    return [Query(free[i], free[-1 - i], 0, query_id=i) for i in range(n)]


class TestAdmission:
    def test_fifo_order_and_answers(self, core, small_warehouse):
        for i, q in enumerate(queries_from(small_warehouse, 4)):
            assert core.submit(Request(i, q, arrival_ms=i), now_ms=i) is None
        answered = core.drain(now_ms=10)
        assert [req.request_id for req, _ in answered] == [0, 1, 2, 3]
        assert all(r.status is ReplyStatus.OK for _, r in answered)
        assert all(r.rung == "full" for _, r in answered)
        assert core.telemetry.count("admitted") == 4

    def test_queue_full_sheds_immediately(self, small_warehouse):
        core = ServiceCore(SRPPlanner(small_warehouse),
                           ServiceConfig(queue_capacity=2))
        qs = queries_from(small_warehouse, 3)
        assert core.submit(Request(0, qs[0], 0), 0) is None
        assert core.submit(Request(1, qs[1], 0), 0) is None
        shed = core.submit(Request(2, qs[2], 0), 0)
        assert shed is not None and shed.status is ReplyStatus.SHED
        assert shed.note == "admission queue full"
        assert core.telemetry.count("shed") == 1
        assert core.pending() == 2
        # the shed request never reaches the trace
        core.drain(0)
        assert len(core.trace) == 2

    def test_default_deadline_is_relative_to_arrival(self, small_warehouse):
        core = ServiceCore(SRPPlanner(small_warehouse),
                           ServiceConfig(default_deadline_ms=30))
        q = queries_from(small_warehouse, 1)[0]
        # submitted late (now=120) but arrived at 100: deadline is 130
        core.submit(Request(0, q, arrival_ms=100), now_ms=120)
        _, reply = core.process_next(now_ms=125)
        assert reply.status is not ReplyStatus.TIMEOUT
        core.submit(Request(1, q, arrival_ms=100), now_ms=120)
        _, reply = core.process_next(now_ms=131)
        assert reply.status is ReplyStatus.TIMEOUT

    def test_timeout_skips_the_planner(self, small_warehouse):
        # the exploding planner would turn any planning attempt into
        # FAILED, so a TIMEOUT reply proves the planner was never called
        core = ServiceCore(ExplodingPlanner())
        q = queries_from(small_warehouse, 1)[0]
        core.submit(Request(0, q, arrival_ms=0, deadline_ms=10), 0)
        _, reply = core.process_next(now_ms=11)
        assert reply.status is ReplyStatus.TIMEOUT
        assert reply.note == "deadline expired in queue"
        assert core.telemetry.count("timeout") == 1
        assert len(core.trace) == 0

    def test_exhausted_ladder_reports_failed(self, small_warehouse):
        core = ServiceCore(ExplodingPlanner())
        q = queries_from(small_warehouse, 1)[0]
        core.submit(Request(0, q, 0), 0)
        _, reply = core.process_next(0)
        assert reply.status is ReplyStatus.FAILED
        assert reply.note == "no rung found a route"
        assert core.telemetry.count("failed") == 1


class TestDegradationLadder:
    def ladder_reply(self, core, small_warehouse, process_at: int) -> Reply:
        q = queries_from(small_warehouse, 1)[0]
        core.submit(Request(0, q, arrival_ms=0, deadline_ms=60), 0)
        _, reply = core.process_next(now_ms=process_at)
        return reply

    def test_ample_budget_runs_full(self, core, small_warehouse):
        reply = self.ladder_reply(core, small_warehouse, process_at=0)
        assert reply.status is ReplyStatus.OK
        assert reply.rung == "full"

    def test_mid_budget_degrades_to_cached(self, core, small_warehouse):
        # remaining 60-15=45 < full_budget 50 but >= cached_budget 10
        reply = self.ladder_reply(core, small_warehouse, process_at=15)
        assert reply.status is ReplyStatus.DEGRADED
        assert reply.rung == "cached"
        assert reply.route is not None and reply.route.is_unit_speed()

    def test_thin_budget_degrades_to_fallback(self, core, small_warehouse):
        # remaining 60-55=5 < cached_budget 10
        reply = self.ladder_reply(core, small_warehouse, process_at=55)
        assert reply.status is ReplyStatus.DEGRADED
        assert reply.rung == "fallback"
        assert reply.route is not None

    def test_no_deadline_always_full(self, core, small_warehouse):
        q = queries_from(small_warehouse, 1)[0]
        core.submit(Request(0, q, arrival_ms=0), 0)
        _, reply = core.process_next(now_ms=10_000)
        assert reply.rung == "full"

    def test_degraded_routes_recorded_with_rung_tag(self, core, small_warehouse):
        self.ladder_reply(core, small_warehouse, process_at=15)
        assert [e.tag for e in core.trace.entries] == ["cached"]
        assert core.telemetry.count("rung_cached") == 1


def overloaded_run(warehouse, seed=11):
    """One deterministic overloaded session: sheds, timeouts, rungs."""
    schedule = make_schedule(
        warehouse, LoadSpec(n_queries=40, rate_qps=400.0, seed=seed,
                            deadline_ms=45),
    )
    core = ServiceCore(SRPPlanner(warehouse), ServiceConfig(queue_capacity=3))
    results = drive_simulated(core, schedule, cost_ms=7)
    return core, results


class TestDeterminism:
    def test_two_drives_are_identical(self, small_warehouse, tmp_path):
        core1, results1 = overloaded_run(small_warehouse)
        core2, results2 = overloaded_run(small_warehouse)
        fps1 = [r.fingerprint() for _, r in results1]
        fps2 = [r.fingerprint() for _, r in results2]
        assert fps1 == fps2
        assert core1.telemetry.snapshot() == core2.telemetry.snapshot()
        # the whole session trace round-trips byte-for-byte
        p1, p2 = tmp_path / "one.jsonl", tmp_path / "two.jsonl"
        save_trace(core1.trace, p1)
        save_trace(core2.trace, p2)
        assert filecmp.cmp(p1, p2, shallow=False)

    def test_overload_mix_is_nontrivial(self, small_warehouse):
        core, results = overloaded_run(small_warehouse)
        statuses = {r.status for _, r in results}
        assert ReplyStatus.SHED in statuses  # queue_capacity=3 must shed
        answered = [r for _, r in results
                    if r.status in (ReplyStatus.OK, ReplyStatus.DEGRADED)]
        assert answered, "the overloaded run still answers something"
        assert len(core.trace) == len(answered)

    def test_stats_snapshot_reports_planner_counters(self, small_warehouse):
        core, _ = overloaded_run(small_warehouse)
        snap = core.stats_snapshot()
        assert snap["pending"] == 0
        assert snap["trace_entries"] == len(core.trace)
        assert "cache_hit_rate" in snap["planner"]


class TestPriorityTiers:
    def full_core(self, warehouse, capacity=2):
        core = ServiceCore(SRPPlanner(warehouse),
                           ServiceConfig(queue_capacity=capacity))
        qs = queries_from(warehouse, capacity)
        for i, q in enumerate(qs):
            assert core.submit(Request(i, q, 0), 0) is None  # idle tier
        return core, queries_from(warehouse, capacity + 2)

    def test_default_tier_is_idle(self, small_warehouse):
        core = ServiceCore(SRPPlanner(small_warehouse))
        q = queries_from(small_warehouse, 1)[0]
        core.submit(Request(0, q, 0), 0)
        assert core.telemetry.count(f"requests_tier_{TIER_IDLE}") == 1

    def test_equal_tier_arrival_is_shed_not_evicting(self, small_warehouse):
        core, qs = self.full_core(small_warehouse)
        shed = core.submit(Request(9, qs[0], 0, priority=TIER_IDLE), 0)
        assert shed is not None and shed.status is ReplyStatus.SHED
        assert core.telemetry.count(f"shed_tier_{TIER_IDLE}") == 1
        # both originally queued requests still get answered
        answered = core.drain(0)
        assert [req.request_id for req, _ in answered] == [0, 1]

    def test_critical_arrival_evicts_newest_idle_request(self, small_warehouse):
        """Acceptance: a critical-battery (charge-tier) request is never
        shed while idle-tier requests sit in the queue."""
        core, qs = self.full_core(small_warehouse)
        assert core.submit(Request(9, qs[0], 0, priority=TIER_CHARGE), 0) is None
        # the *most recent* idle request (id 1) lost its slot
        answered = core.drain(0)
        by_id = {req.request_id: reply for req, reply in answered}
        assert by_id[1].status is ReplyStatus.SHED
        assert by_id[1].note == "evicted by higher-priority admission"
        assert by_id[0].status is ReplyStatus.OK
        assert by_id[9].status is ReplyStatus.OK
        # the shed was charged to the victim's tier, not the arrival's
        assert core.telemetry.count(f"shed_tier_{TIER_IDLE}") == 1
        assert core.telemetry.count(f"shed_tier_{TIER_CHARGE}") == 0

    def test_carrying_outranks_charge(self, small_warehouse):
        core = ServiceCore(SRPPlanner(small_warehouse),
                           ServiceConfig(queue_capacity=1))
        qs = queries_from(small_warehouse, 3)
        assert core.submit(Request(0, qs[0], 0, priority=TIER_CHARGE), 0) is None
        assert core.submit(Request(1, qs[1], 0, priority=TIER_CARRYING), 0) is None
        # charge-tier work cannot displace carrying-tier work
        shed = core.submit(Request(2, qs[2], 0, priority=TIER_CHARGE), 0)
        assert shed is not None and shed.status is ReplyStatus.SHED
        by_id = {req.request_id: r for req, r in core.drain(0)}
        assert by_id[0].status is ReplyStatus.SHED  # evicted by request 1
        assert by_id[1].status is ReplyStatus.OK

    def test_eviction_keeps_capacity_accounting(self, small_warehouse):
        core, qs = self.full_core(small_warehouse)
        assert core.submit(Request(9, qs[0], 0, priority=TIER_CARRYING), 0) is None
        # the evicted slot was freed: live depth is still == capacity,
        # so the next idle arrival sheds rather than overfilling
        assert core.pending() - core._evicted_pending == 2
        shed = core.submit(Request(10, qs[1], 0, priority=TIER_IDLE), 0)
        assert shed is not None and shed.status is ReplyStatus.SHED

    def test_evicted_requests_skip_planner_and_histograms(self, small_warehouse):
        core, qs = self.full_core(small_warehouse)
        core.submit(Request(9, qs[0], 0, priority=TIER_CARRYING), 0)
        core.drain(0)
        hist = core.telemetry.histograms.get("queue_ms")
        served = core.telemetry.count("ok") + core.telemetry.count("degraded")
        assert hist is not None and hist.total == served
        # the evicted request never reaches the trace
        assert len(core.trace) == served

    def test_snapshot_reports_per_tier_shed_rates(self, small_warehouse):
        core, qs = self.full_core(small_warehouse)
        core.submit(Request(9, qs[0], 0, priority=TIER_CHARGE), 0)
        snap = core.stats_snapshot()
        tiers = snap["shed_rate_tiers"]
        assert tiers[str(TIER_IDLE)] == 0.5  # one of two idle requests shed
        assert tiers[str(TIER_CHARGE)] == 0.0

    def test_tierless_session_omits_tier_breakdown(self, small_warehouse):
        core = ServiceCore(SRPPlanner(small_warehouse))
        assert "shed_rate_tiers" not in core.stats_snapshot()


class TestTraceRoundTrip:
    def test_degraded_session_replays_bit_identically(
        self, small_warehouse, tmp_path
    ):
        core, _ = overloaded_run(small_warehouse)
        tags = {e.tag for e in core.trace.entries}
        assert tags - {"full"}, "session must contain degraded answers"

        path = tmp_path / "session.jsonl"
        save_trace(core.trace, path)
        loaded = load_trace(path)
        assert [e.tag for e in loaded.entries] == [
            e.tag for e in core.trace.entries
        ]

        report = replay_session(loaded, SRPPlanner(small_warehouse))
        assert report.duration_deltas == [0] * len(loaded)
        for original, replayed in zip(report.original.entries,
                                      report.replayed.entries):
            assert replayed.route.start_time == original.route.start_time
            assert replayed.route.grids == original.route.grids
            assert replayed.tag == original.tag

        # and the replayed trace serialises to the same bytes
        path2 = tmp_path / "replayed.jsonl"
        save_trace(report.replayed, path2)
        assert filecmp.cmp(path, path2, shallow=False)

    def test_replay_raises_when_recorded_rung_cannot_answer(
        self, small_warehouse
    ):
        core, _ = overloaded_run(small_warehouse)
        assert len(core.trace) > 0
        with pytest.raises(PlanningFailedError) as excinfo:
            replay_session(core.trace, ExplodingPlanner())
        assert excinfo.value.phase in ("full", "cached", "fallback")


class TestRungHelpers:
    def test_plan_at_rung_generic_planner_serves_all_rungs(
        self, small_warehouse
    ):
        from repro.baselines import make_baseline
        from repro.service import plan_at_rung

        planner = make_baseline("SAP", small_warehouse)
        q = queries_from(small_warehouse, 1)[0]
        for rung in Rung:
            route = plan_at_rung(planner, q, rung)
            assert route is not None
            planner.reset()

    def test_srp_rung_methods_commit_routes(self, small_warehouse):
        planner = SRPPlanner(small_warehouse)
        free = small_warehouse.free_cells()
        a = planner.plan_strip_only(Query(free[0], free[-1], 0, query_id=0))
        b = planner.plan_fallback_only(Query(free[1], free[-2], 0, query_id=1))
        assert a is not None and b is not None
        assert planner.timers.queries == 2
