"""Metamorphic properties of the planning stack.

Relations that must hold under input transformations:

* **time-shift equivariance** — shifting every committed segment and the
  query release by Δ shifts conflicts, plans and routes by exactly Δ;
* **planning determinism** — identical planner + identical stream gives
  identical routes;
* **store insertion-order invariance** — a store's answers depend on
  its contents, not the insertion order.
"""


from hypothesis import given, settings, strategies as st

from repro import Query, SRPPlanner
from repro.core.intra_strip import plan_within_strip
from repro.core.naive_store import NaiveSegmentStore
from repro.core.segments import Segment
from repro.core.slope_index import SlopeIndexedStore
from repro.geometry.collision import conflict_between
from tests.conftest import random_cells


@st.composite
def raw_segments(draw, max_t=25, max_p=12, max_len=8):
    t0 = draw(st.integers(0, max_t))
    p0 = draw(st.integers(0, max_p))
    slope = draw(st.sampled_from([-1, 0, 1]))
    length = draw(st.integers(0, max_len))
    return (t0, p0, t0 + length, p0 + slope * length if slope else p0)


def shift(seg, delta):
    t0, p0, t1, p1 = seg
    return (t0 + delta, p0, t1 + delta, p1)


class TestTimeShiftEquivariance:
    @settings(max_examples=300)
    @given(raw_segments(), raw_segments(), st.integers(0, 50))
    def test_conflicts_shift(self, a, b, delta):
        base = conflict_between(a, b)
        moved = conflict_between(shift(a, delta), shift(b, delta))
        assert (base is None) == (moved is None)
        if base is not None:
            assert moved.blocked_time == base.blocked_time + delta
            assert moved.kind == base.kind

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(raw_segments(), max_size=8),
        st.integers(0, 6),
        st.integers(0, 12),
        st.integers(0, 12),
        st.integers(1, 40),
    )
    def test_intra_plans_shift(self, committed, start, origin, dest, delta):
        def build(offset):
            store = NaiveSegmentStore()
            for raw in committed:
                store.insert(Segment(*shift(raw, offset)))
            return plan_within_strip(store, start + offset, origin, dest, max_wait=30)

        base = build(0)
        moved = build(delta)
        assert (base is None) == (moved is None)
        if base is not None:
            assert moved.arrival_time == base.arrival_time + delta
            assert [s.raw for s in moved.segments] == [
                shift(s.raw, delta) for s in base.segments
            ]

    def test_srp_routes_shift(self, mid_warehouse):
        cells = random_cells(mid_warehouse, 20, seed=57)
        delta = 137
        base_planner = SRPPlanner(mid_warehouse)
        moved_planner = SRPPlanner(mid_warehouse)
        for k in range(0, 20, 2):
            q0 = Query(cells[k], cells[k + 1], 11 * k, query_id=k)
            q1 = Query(cells[k], cells[k + 1], 11 * k + delta, query_id=k)
            r0 = base_planner.plan(q0)
            r1 = moved_planner.plan(q1)
            assert r1.start_time == r0.start_time + delta
            assert r1.grids == r0.grids


class TestDeterminism:
    def test_identical_streams_identical_routes(self, mid_warehouse):
        cells = random_cells(mid_warehouse, 30, seed=58)
        queries = [
            Query(cells[k], cells[k + 1], 6 * k, query_id=k) for k in range(0, 30, 2)
        ]
        runs = []
        for _ in range(2):
            planner = SRPPlanner(mid_warehouse)
            runs.append([planner.plan(q).grids for q in queries])
        assert runs[0] == runs[1]


class TestInsertionOrderInvariance:
    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(raw_segments(), max_size=10, unique=True),
        raw_segments(),
        st.randoms(use_true_random=False),
    )
    def test_store_answers_independent_of_order(self, committed, query, rnd):
        probe = Segment(*query)
        in_order = SlopeIndexedStore()
        for raw in committed:
            in_order.insert(Segment(*raw))
        shuffled = list(committed)
        rnd.shuffle(shuffled)
        reordered = SlopeIndexedStore()
        for raw in shuffled:
            reordered.insert(Segment(*raw))
        a = in_order.earliest_conflict(probe)
        b = reordered.earliest_conflict(probe)
        assert (a[0] if a else None) == (b[0] if b else None)
