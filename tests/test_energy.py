"""The battery model and the battery-aware simulated day, end to end.

The contract under test (docs/charging.md):

* :class:`BatterySpec` / :func:`route_drain` / :class:`FleetEnergy` are
  exact integer arithmetic — same route, same spec, same drain, always;
* a seeded charging day replays bit-identically (routes and every
  charging counter);
* ``battery=None`` leaves the simulation bit-identical to a run with
  the battery axis disabled entirely;
* charge-trip routes go through the collision-checked planner: the
  validator and the planner-state audit stay clean with charging on,
  including under a fault storm.
"""

import pytest

from repro.core.planner import SRPPlanner
from repro.exceptions import SimulationError
from repro.simulation import (
    BatterySpec,
    FaultPlan,
    FleetEnergy,
    Simulation,
    place_stations,
    route_drain,
    run_day,
)
from repro.types import Route
from repro.warehouse import TaskTraceSpec, generate_tasks, w1


def _routes_snapshot(sim: Simulation):
    return {q: (r.start_time, tuple(r.grids)) for q, r in sim._routes.items()}


class TestBatterySpec:
    def test_defaults_valid(self):
        spec = BatterySpec()
        assert spec.capacity > spec.low_threshold > spec.critical_threshold

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity": 0},
            {"move_drain": -1},
            {"move_drain": 0, "hold_drain": 0},
            {"low_threshold": 0},
            {"low_threshold": 2000},
            {"critical_threshold": -1},
            {"critical_threshold": 600, "low_threshold": 500},
            {"charge_rate": 0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            BatterySpec(**kwargs)

    def test_charge_duration_is_ceil(self):
        spec = BatterySpec(capacity=100, low_threshold=50,
                           critical_threshold=20, charge_rate=40)
        assert spec.charge_duration(100) == 0
        assert spec.charge_duration(60) == 1  # 40 deficit / 40 rate
        assert spec.charge_duration(30) == 2  # ceil(70 / 40)
        assert spec.charge_duration(0) == 3   # ceil(100 / 40)


class TestRouteDrain:
    SPEC = BatterySpec(capacity=1000, move_drain=3, hold_drain=1,
                       low_threshold=100, critical_threshold=10)

    def test_pure_movement(self):
        route = Route(5, [(0, 0), (0, 1), (0, 2)])
        assert route_drain(route, self.SPEC) == 6  # 2 moves x 3

    def test_holds_drain_less(self):
        route = Route(0, [(0, 0), (0, 0), (0, 1)])
        assert route_drain(route, self.SPEC) == 4  # hold 1 + move 3

    def test_single_cell_route_is_free(self):
        assert route_drain(Route(7, [(2, 2)]), self.SPEC) == 0

    def test_until_prefix(self):
        route = Route(10, [(0, 0), (0, 1), (0, 1), (0, 2)])
        assert route_drain(route, self.SPEC, until=10) == 0
        assert route_drain(route, self.SPEC, until=11) == 3
        assert route_drain(route, self.SPEC, until=12) == 4
        # beyond the finish clamps to the full route
        assert route_drain(route, self.SPEC, until=99) == 7
        assert route_drain(route, self.SPEC) == 7

    def test_prefix_plus_suffix_never_exceeds_whole(self):
        # Drain accounting at a mid-route revision (prefix up to the
        # revision start, then the revised route) must not invent
        # charge: prefix cost == whole cost minus the tail cost.
        route = Route(0, [(0, 0), (0, 1), (1, 1), (1, 1), (1, 2)])
        whole = route_drain(route, self.SPEC)
        for cut in range(route.start_time, route.finish_time + 1):
            prefix = route_drain(route, self.SPEC, until=cut)
            assert 0 <= prefix <= whole


class TestFleetEnergy:
    def spec(self):
        return BatterySpec(capacity=100, move_drain=2, hold_drain=1,
                           low_threshold=40, critical_threshold=10)

    def test_starts_full(self):
        energy = FleetEnergy(self.spec(), 3)
        assert len(energy) == 3
        assert energy.charge == [100, 100, 100]
        assert energy.total_drained == 0

    def test_needs_fleet(self):
        with pytest.raises(SimulationError):
            FleetEnergy(self.spec(), 0)

    def test_thresholds(self):
        energy = FleetEnergy(self.spec(), 1)
        assert not energy.needs_charge(0)
        energy.drain(0, 60)
        assert energy.needs_charge(0) and not energy.is_critical(0)
        energy.drain(0, 30)
        assert energy.is_critical(0) and not energy.is_stranded(0)

    def test_drain_clamps_and_strands_once(self):
        energy = FleetEnergy(self.spec(), 2)
        energy.drain(1, 250)
        assert energy.charge[1] == 0
        assert energy.total_drained == 100  # only what was there
        assert energy.is_stranded(1)
        energy.drain(1, 10)  # already empty: no double stranding
        assert energy.stranded_ids == [1]

    def test_refill_and_duration(self):
        energy = FleetEnergy(self.spec(), 1)
        energy.drain(0, 77)
        assert energy.charge_duration(0) == energy.spec.charge_duration(23)
        energy.refill(0)
        assert energy.charge[0] == 100
        assert energy.charge_duration(0) == 0
        # refill does not erase the drain ledger
        assert energy.total_drained == 77

    def test_drain_route_returns_cost(self):
        energy = FleetEnergy(self.spec(), 1)
        route = Route(0, [(0, 0), (0, 1), (0, 2)])
        assert energy.drain_route(0, route) == 4
        assert energy.charge[0] == 96


class TestChargingDay:
    @pytest.fixture(scope="class")
    def w1_small(self):
        return w1(scale=0.3)

    @pytest.fixture(scope="class")
    def w1_tasks(self, w1_small):
        return generate_tasks(
            w1_small, TaskTraceSpec(n_tasks=80, day_length=400, seed=7)
        )

    def battery(self):
        return BatterySpec(capacity=1200, low_threshold=600,
                           critical_threshold=240, charge_rate=40)

    def charged_day(self, warehouse, tasks, faults=None, recovery="serial",
                    validate=False):
        planner = SRPPlanner(warehouse)
        sim = Simulation(
            warehouse, planner, tasks,
            validate=validate, measure_memory=False,
            battery=self.battery(),
            stations=place_stations(warehouse, 2),
            faults=faults, recovery=recovery,
        )
        result = sim.run()
        return sim, result

    def test_charging_day_is_deterministic(self, w1_small, w1_tasks):
        """Acceptance: a seeded battery-constrained day is bit-identical
        across two runs — routes, trips, waits, and drain."""
        sim_a, res_a = self.charged_day(w1_small, w1_tasks)
        sim_b, res_b = self.charged_day(w1_small, w1_tasks)
        assert res_a.charge_trips > 0, "the day never exercised a charge trip"
        assert _routes_snapshot(sim_a) == _routes_snapshot(sim_b)
        for field in ("makespan", "completed_tasks", "failed_tasks",
                      "charge_trips", "charge_aborts", "charge_queue_wait",
                      "stranded_robots", "energy_drained"):
            assert getattr(res_a, field) == getattr(res_b, field), field

    def test_charging_day_collision_free_and_audited(self, w1_small, w1_tasks):
        """Acceptance: charge-trip routes pass the ground-truth validator
        and the planner-state audit like any delivery route."""
        _, result = self.charged_day(w1_small, w1_tasks, validate=True)
        assert result.charge_trips > 0
        assert result.stranded_robots == 0
        assert result.conflicts == []
        assert result.audit_violations == []
        assert result.completed_tasks + result.failed_tasks == len(w1_tasks)

    def test_battery_none_is_bit_identical(self, w1_small, w1_tasks):
        """Acceptance: ``battery=None`` reproduces the battery-free
        engine byte-for-byte."""
        def day(**kwargs):
            planner = SRPPlanner(w1_small)
            sim = Simulation(
                w1_small, planner, w1_tasks,
                validate=False, measure_memory=False, **kwargs,
            )
            result = sim.run()
            return _routes_snapshot(sim), result.makespan, result.energy_drained

        base = day()
        explicit = day(battery=None)
        assert explicit == base
        assert base[2] == 0

    def test_charging_survives_fault_storm(self, w1_small, w1_tasks):
        """Acceptance: all four fault kinds plus charging stay clean."""
        faults = FaultPlan.generate(
            w1_small,
            n_robots=len(w1_small.robot_homes),
            day_length=600,
            n_stalls=6,
            n_blockages=3,
            n_slowdowns=3,
            n_closures=2,
            seed=9,
        )
        _, result = self.charged_day(
            w1_small, w1_tasks, faults=faults, recovery="joint", validate=True,
        )
        assert result.faults_injected == len(faults)
        assert result.conflicts == []
        assert result.audit_violations == []
        assert result.stranded_robots == 0

    def test_stations_required_with_battery(self, w1_small, w1_tasks):
        with pytest.raises(SimulationError):
            run_day(
                w1_small, SRPPlanner(w1_small), w1_tasks,
                measure_memory=False, battery=self.battery(), stations=[],
            )

    def test_tight_spec_strands_loudly(self, w1_small, w1_tasks):
        """A hopeless provisioning (threshold too low to ever charge in
        time) must surface as stranded robots, not hang or crash."""
        planner = SRPPlanner(w1_small)
        result = run_day(
            w1_small, planner, w1_tasks,
            measure_memory=False,
            battery=BatterySpec(capacity=220, move_drain=2, hold_drain=1,
                                low_threshold=40, critical_threshold=10,
                                charge_rate=40),
            stations=place_stations(w1_small, 2),
        )
        assert result.stranded_robots > 0
        assert result.completed_tasks + result.failed_tasks <= len(w1_tasks)
