"""Tests for the robot fleet, metrics recorder and simulation engine."""

import pytest

from repro import (
    ACPPlanner,
    RPPlanner,
    SAPPlanner,
    SRPPlanner,
    TaskTraceSpec,
    TWPPlanner,
    generate_tasks,
    run_day,
)
from repro.exceptions import SimulationError
from repro.simulation import RobotFleet, Simulation, SimulationMetrics
from repro.simulation.engine import _STAGE_KINDS
from repro.types import QueryKind, Task


class TestRobotFleet:
    def test_requires_robots(self):
        with pytest.raises(SimulationError):
            RobotFleet([])

    def test_nearest_idle(self):
        fleet = RobotFleet([(0, 0), (5, 5), (9, 9)])
        robot = fleet.nearest_idle((6, 6), now=0)
        assert robot.cell == (5, 5)

    def test_busy_excluded(self):
        fleet = RobotFleet([(0, 0), (5, 5)])
        fleet.robots[1].busy_until = 100
        assert fleet.nearest_idle((5, 5), now=10).cell == (0, 0)

    def test_none_when_all_busy(self):
        fleet = RobotFleet([(0, 0)])
        fleet.robots[0].busy_until = 100
        assert fleet.nearest_idle((0, 0), now=0) is None

    def test_tie_broken_by_id(self):
        fleet = RobotFleet([(0, 2), (2, 0)])
        assert fleet.nearest_idle((1, 1), now=0).robot_id == 0

    def test_utilization(self):
        fleet = RobotFleet([(0, 0), (1, 1)])
        fleet.robots[0].busy_until = 10
        assert fleet.utilization(now=5) == 0.5


class TestMetrics:
    class _FakePlanner:
        name = "fake"

        def __init__(self):
            from repro.planner_base import PlannerTimers

            self.timers = PlannerTimers()

        def planning_state(self):
            return [1, 2, 3]

    def test_snapshots_at_thresholds(self):
        metrics = SimulationMetrics(total_tasks=10, snapshot_every=0.5)
        planner = self._FakePlanner()
        for finished in range(1, 11):
            metrics.maybe_snapshot(finished, finished * 7, planner)
        progresses = [s.progress for s in metrics.snapshots]
        assert progresses[0] == pytest.approx(0.1)  # first crossing of 0.0
        assert any(p >= 0.5 for p in progresses)
        assert progresses[-1] == pytest.approx(1.0)

    def test_memory_optional(self):
        metrics = SimulationMetrics(total_tasks=2, measure_memory=False)
        metrics.maybe_snapshot(1, 5, self._FakePlanner())
        assert metrics.snapshots[0].mc_bytes is None
        assert metrics.peak_mc() is None

    def test_series_accessors(self):
        metrics = SimulationMetrics(total_tasks=2, snapshot_every=0.5)
        planner = self._FakePlanner()
        metrics.maybe_snapshot(1, 5, planner)
        metrics.maybe_snapshot(2, 9, planner)
        assert len(metrics.tc_series()) == 2
        assert len(metrics.mc_series()) == 2
        assert metrics.peak_mc() > 0


class TestStageSequence:
    def test_stage_kinds(self):
        assert _STAGE_KINDS == (
            QueryKind.PICKUP,
            QueryKind.TRANSMISSION,
            QueryKind.RETURN,
        )


class TestSimulationEngine:
    def _tasks(self, warehouse, n=12, day=400, seed=5):
        return generate_tasks(warehouse, TaskTraceSpec(n_tasks=n, day_length=day, seed=seed))

    def test_empty_tasks_rejected(self, small_warehouse):
        with pytest.raises(SimulationError):
            Simulation(small_warehouse, SRPPlanner(small_warehouse), [])

    def test_no_robots_rejected(self, tiny_warehouse):
        tasks = [Task(0, (1, 2), (0, 0))]
        with pytest.raises(SimulationError):
            Simulation(tiny_warehouse, SRPPlanner(tiny_warehouse), tasks)

    def test_all_tasks_complete(self, small_warehouse):
        tasks = self._tasks(small_warehouse)
        result = run_day(small_warehouse, SRPPlanner(small_warehouse), tasks, validate=True)
        assert result.completed_tasks == len(tasks)
        assert result.failed_tasks == 0
        assert result.conflicts == []
        assert result.makespan >= max(t.release_time for t in tasks)

    def test_progress_snapshots_cover_day(self, small_warehouse):
        tasks = self._tasks(small_warehouse)
        result = run_day(
            small_warehouse, SRPPlanner(small_warehouse), tasks, snapshot_every=0.25
        )
        assert result.snapshots[-1].progress == pytest.approx(1.0)
        assert all(
            a.tc_seconds <= b.tc_seconds
            for a, b in zip(result.snapshots, result.snapshots[1:])
        )

    def test_og_alias(self, small_warehouse):
        result = run_day(small_warehouse, SRPPlanner(small_warehouse), self._tasks(small_warehouse, n=4))
        assert result.og == result.makespan

    @pytest.mark.parametrize(
        "planner_cls", [SRPPlanner, SAPPlanner, TWPPlanner, RPPlanner, ACPPlanner]
    )
    def test_every_planner_runs_a_day_cleanly(self, small_warehouse, planner_cls):
        tasks = self._tasks(small_warehouse, n=10)
        result = run_day(small_warehouse, planner_cls(small_warehouse), tasks, validate=True)
        assert result.conflicts == []
        assert result.completed_tasks + result.failed_tasks == 10
        assert result.failed_tasks == 0

    def test_queueing_when_few_robots(self, small_warehouse):
        small_warehouse.robot_homes = small_warehouse.robot_homes[:1]
        tasks = self._tasks(small_warehouse, n=6, day=10)
        result = run_day(small_warehouse, SRPPlanner(small_warehouse), tasks, validate=True)
        assert result.completed_tasks == 6
        assert result.conflicts == []
        # One robot serves everything sequentially: makespan far exceeds
        # the release horizon.
        assert result.makespan > 100

    def test_identical_trace_identical_og(self, small_warehouse):
        tasks = self._tasks(small_warehouse)
        a = run_day(small_warehouse, SRPPlanner(small_warehouse), tasks)
        b = run_day(small_warehouse, SRPPlanner(small_warehouse), tasks)
        assert a.makespan == b.makespan


class TestMemoryThrottling:
    def test_memory_every_coarser_than_snapshots(self, small_warehouse):
        from repro import SRPPlanner, TaskTraceSpec, generate_tasks, run_day

        tasks = generate_tasks(
            small_warehouse, TaskTraceSpec(n_tasks=20, day_length=400, seed=5)
        )
        result = run_day(
            small_warehouse,
            SRPPlanner(small_warehouse),
            tasks,
            snapshot_every=0.05,
            memory_every=0.5,
        )
        sampled = [s for s in result.snapshots if s.mc_bytes is not None]
        unsampled = [s for s in result.snapshots if s.mc_bytes is None]
        assert len(sampled) >= 2  # at 0%, 50%, ~100%
        assert len(unsampled) > len(sampled)
        assert result.peak_mc_bytes == max(s.mc_bytes for s in sampled)


class TestStageSequencing:
    class _ScriptedPlanner:
        """Returns straight-line waits so stage order can be asserted."""

        name = "scripted"

        def __init__(self):
            from repro.planner_base import PlannerTimers

            self.timers = PlannerTimers()
            self.queries = []

        def plan(self, query):
            from repro.types import Route

            self.queries.append(query)
            # Teleport-free dummy: stand at origin, then jump is illegal,
            # so emit a wait route when origin == destination else a
            # straight Manhattan walk.
            o, d = query.origin, query.destination
            grids = [o]
            cur = list(o)
            while (cur[0], cur[1]) != d:
                if cur[0] != d[0]:
                    cur[0] += 1 if d[0] > cur[0] else -1
                else:
                    cur[1] += 1 if d[1] > cur[1] else -1
                grids.append((cur[0], cur[1]))
            return Route(query.release_time, grids, query.query_id)

        def take_revisions(self):
            return {}

        def reset(self):
            pass

        def prune(self, before):
            pass

        def planning_state(self):
            return self.queries

    def test_stage_order_and_handover(self, small_warehouse):
        from repro.simulation import Simulation
        from repro.types import QueryKind, Task

        planner = self._ScriptedPlanner()
        task = Task(5, small_warehouse.rack_cells()[0], small_warehouse.pickers[0], task_id=0)
        sim = Simulation(small_warehouse, planner, [task], measure_memory=False)
        result = sim.run()
        kinds = [q.kind for q in planner.queries]
        assert kinds == [QueryKind.PICKUP, QueryKind.TRANSMISSION, QueryKind.RETURN]
        # Handover: each stage starts at least one second after the
        # previous one finished.
        releases = [q.release_time for q in planner.queries]
        assert releases[0] == 5
        assert releases[1] > releases[0]
        assert releases[2] > releases[1]
        assert result.completed_tasks == 1

    def test_pickup_origin_is_robot_cell(self, small_warehouse):
        from repro.simulation import Simulation
        from repro.types import Task

        planner = self._ScriptedPlanner()
        task = Task(0, small_warehouse.rack_cells()[0], small_warehouse.pickers[0], task_id=0)
        Simulation(small_warehouse, planner, [task], measure_memory=False).run()
        pickup = planner.queries[0]
        assert pickup.origin in small_warehouse.robot_homes
        assert pickup.destination == task.rack
