"""Unit and property tests for the exact geometry primitives."""

from hypothesis import given, strategies as st

from repro.geometry import (
    cross,
    on_segment,
    orientation,
    segments_intersect,
    segments_properly_intersect,
)

coord = st.integers(min_value=-50, max_value=50)
point = st.tuples(coord, coord)


class TestCross:
    def test_counter_clockwise_positive(self):
        assert cross((0, 0), (1, 0), (0, 1)) > 0

    def test_clockwise_negative(self):
        assert cross((0, 0), (0, 1), (1, 0)) < 0

    def test_collinear_zero(self):
        assert cross((0, 0), (1, 1), (3, 3)) == 0

    @given(point, point, point)
    def test_antisymmetric(self, o, a, b):
        assert cross(o, a, b) == -cross(o, b, a)

    @given(point, point)
    def test_degenerate_is_zero(self, o, a):
        assert cross(o, a, a) == 0


class TestOrientation:
    @given(point, point, point)
    def test_sign_of_cross(self, o, a, b):
        c = cross(o, a, b)
        expected = (c > 0) - (c < 0)
        assert orientation(o, a, b) == expected


class TestOnSegment:
    def test_midpoint(self):
        assert on_segment((1, 1), (0, 0), (2, 2))

    def test_endpoint(self):
        assert on_segment((0, 0), (0, 0), (2, 2))

    def test_collinear_but_outside(self):
        assert not on_segment((3, 3), (0, 0), (2, 2))

    def test_off_line(self):
        assert not on_segment((1, 2), (0, 0), (2, 2))

    @given(point, point)
    def test_endpoints_always_on(self, a, b):
        assert on_segment(a, a, b)
        assert on_segment(b, a, b)


class TestProperIntersection:
    def test_crossing(self):
        assert segments_properly_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_touching_endpoint_not_proper(self):
        assert not segments_properly_intersect((0, 0), (2, 2), (2, 2), (4, 0))

    def test_parallel(self):
        assert not segments_properly_intersect((0, 0), (2, 2), (0, 1), (2, 3))

    def test_collinear_overlap_not_proper(self):
        assert not segments_properly_intersect((0, 0), (4, 4), (1, 1), (3, 3))

    @given(point, point, point, point)
    def test_symmetric(self, a1, a2, b1, b2):
        assert segments_properly_intersect(a1, a2, b1, b2) == segments_properly_intersect(
            b1, b2, a1, a2
        )

    @given(point, point, point, point)
    def test_proper_implies_intersect(self, a1, a2, b1, b2):
        if segments_properly_intersect(a1, a2, b1, b2):
            assert segments_intersect(a1, a2, b1, b2)


class TestClosedIntersection:
    def test_touching_endpoints(self):
        assert segments_intersect((0, 0), (2, 2), (2, 2), (4, 0))

    def test_collinear_overlap(self):
        assert segments_intersect((0, 0), (4, 4), (1, 1), (3, 3))

    def test_disjoint_parallel(self):
        assert not segments_intersect((0, 0), (2, 0), (0, 1), (2, 1))

    def test_disjoint_collinear(self):
        assert not segments_intersect((0, 0), (1, 1), (3, 3), (5, 5))

    def test_point_on_segment(self):
        assert segments_intersect((1, 1), (1, 1), (0, 0), (2, 2))

    def test_point_off_segment(self):
        assert not segments_intersect((1, 2), (1, 2), (0, 0), (2, 2))
