"""Tests for the conflict-based search substrate."""

import pytest

from repro import Query, Warehouse
from repro.analysis import find_conflicts
from repro.baselines.cbs import _pair_conflict, cbs_solve
from repro.baselines.reservation import ReservationTable
from repro.pathfinding.distance import DistanceMaps
from repro.types import Route


@pytest.fixture
def open_grid():
    return Warehouse.from_ascii("\n".join(["." * 6] * 4))


class TestPairConflict:
    def test_vertex(self):
        a = Route(0, [(0, 0), (0, 1), (0, 2)])
        b = Route(0, [(0, 2), (0, 1), (0, 0)])
        t, kind, payload = _pair_conflict(a, b)
        assert kind == "vertex" and t == 1 and payload == (0, 1)

    def test_edge(self):
        a = Route(0, [(0, 0), (0, 1)])
        b = Route(0, [(0, 1), (0, 0)])
        t, kind, payload = _pair_conflict(a, b)
        assert kind == "edge" and t == 0

    def test_none(self):
        a = Route(0, [(0, 0), (0, 1)])
        b = Route(0, [(2, 0), (2, 1)])
        assert _pair_conflict(a, b) is None

    def test_disjoint_spans_do_not_conflict(self):
        # Definition 3 counts occupancy only within a route's own span
        # (idle robots are non-blocking); CBS matches the validator.
        a = Route(0, [(0, 0), (0, 1)])
        b = Route(3, [(0, 1), (0, 2)])
        assert _pair_conflict(a, b) is None


class TestCBSSolve:
    def test_crossing_pair(self, open_grid):
        maps = DistanceMaps(open_grid)
        queries = [
            Query((0, 0), (3, 0), 0, query_id=1),
            Query((3, 0), (0, 0), 0, query_id=2),
        ]
        routes = cbs_solve(open_grid, queries, maps)
        assert routes is not None
        assert find_conflicts(routes) == []
        assert routes[0].query_id == 1 and routes[1].query_id == 2

    def test_three_way_intersection(self, open_grid):
        maps = DistanceMaps(open_grid)
        queries = [
            Query((0, 2), (3, 2), 0),
            Query((1, 0), (1, 5), 0),
            Query((3, 3), (0, 3), 0),
        ]
        routes = cbs_solve(open_grid, queries, maps)
        assert routes is not None
        assert find_conflicts(routes) == []

    def test_respects_base_traffic(self, open_grid):
        maps = DistanceMaps(open_grid)
        table = ReservationTable()
        table.register(Route(0, [(1, 2)] * 10))  # an immovable squatter
        routes = cbs_solve(
            open_grid, [Query((1, 0), (1, 5), 0)], maps, base_checker=table
        )
        assert routes is not None
        for t, cell in routes[0].steps():
            assert not (cell == (1, 2) and t <= 9)

    def test_node_budget_gives_up(self, open_grid):
        maps = DistanceMaps(open_grid)
        queries = [
            Query((0, 0), (3, 5), 0),
            Query((3, 5), (0, 0), 0),
            Query((0, 5), (3, 0), 0),
            Query((3, 0), (0, 5), 0),
        ]
        assert cbs_solve(open_grid, queries, maps, max_nodes=0) is None

    def test_solution_cost_reasonable(self, open_grid):
        """CBS must not be worse than naive sequential delays."""
        maps = DistanceMaps(open_grid)
        queries = [
            Query((0, 0), (0, 5), 0),
            Query((0, 5), (0, 0), 0),
        ]
        routes = cbs_solve(open_grid, queries, maps)
        assert routes is not None
        total = sum(r.duration for r in routes)
        assert total <= 16  # 5 + 5 plus a small detour allowance
