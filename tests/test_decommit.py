"""Decommit (remove) support of the segment stores and crossing ledger.

The recovery path relies on one property above all: removing exactly
the segments a commit inserted returns a store to *bit-identical*
internal state — not merely behavioural equivalence, but equal index
structures — so a disturbed day leaves no residue the paper's MC metric
or later queries could observe.  The Hypothesis suite here round-trips
random commit/decommit interleavings against that definition for all
three store backends.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.crossings import CrossingLedger
from repro.core.naive_store import NaiveSegmentStore
from repro.core.segments import Segment
from repro.core.slope_index import SlopeIndexedStore
from repro.core.store_base import EMPTY_STORE, StripStoreMap
from repro.core.time_bucket_store import TimeBucketStore
from repro.exceptions import PlanningFailedError, SimulationError

STORES = [NaiveSegmentStore, SlopeIndexedStore, TimeBucketStore]

#: instrumentation and version counters are *expected* to drift across a
#: round trip; everything else must match exactly
#: slots that are not segment content: instrumentation counters, the
#: version (monotone by design), and the last_end high-water mark
#: (deliberately stale-high after remove — see SegmentStore.last_end)
_NON_CONTENT = {"queries", "judged", "version", "last_end"}


def state_of(store):
    """Every content-bearing slot of a store, for bit-identity checks."""
    return {
        name: getattr(store, name)
        for name in store.__slots__
        if name not in _NON_CONTENT
    }


@st.composite
def segment_strategy(draw, max_t=25, max_p=15, max_len=8):
    t0 = draw(st.integers(0, max_t))
    p0 = draw(st.integers(0, max_p))
    slope = draw(st.sampled_from([-1, 0, 1]))
    length = draw(st.integers(0, max_len))
    return Segment(t0, p0, t0 + length, p0 + slope * length if slope else p0)


@pytest.mark.parametrize("store_cls", STORES)
class TestRemoveBasics:
    def test_remove_only_instance(self, store_cls):
        store = store_cls()
        seg = Segment(2, 3, 6, 7)
        store.insert(seg)
        store.remove(seg)
        assert len(store) == 0
        assert list(store.iter_segments()) == []
        assert not store.occupied(3, 2)

    def test_remove_missing_raises(self, store_cls):
        store = store_cls()
        store.insert(Segment(0, 0, 4, 4))
        with pytest.raises(KeyError):
            store.remove(Segment(0, 0, 4, 0))

    def test_multiset_semantics(self, store_cls):
        """Duplicate values are legal; remove drops exactly one copy."""
        store = store_cls()
        seg = Segment(5, 5, 5, 5)
        store.insert(seg)
        store.insert(seg)
        store.remove(seg)
        assert len(store) == 1
        assert store.occupied(5, 5)
        store.remove(seg)
        assert len(store) == 0
        with pytest.raises(KeyError):
            store.remove(seg)

    def test_remove_bumps_version(self, store_cls):
        store = store_cls()
        seg = Segment(1, 1, 3, 3)
        store.insert(seg)
        before = store.version
        store.remove(seg)
        assert store.version != before

    def test_remove_restores_max_duration_answers(self, store_cls):
        """Dropping the longest segment must not leave stale pruning bounds."""
        store = store_cls()
        long = Segment(0, 0, 20, 0)
        short = Segment(30, 5, 32, 7)
        store.insert(long)
        store.insert(short)
        store.remove(long)
        # Only the short segment remains; a query far from it is free.
        assert store.earliest_conflict(Segment(10, 0, 12, 0)) is None
        assert store.earliest_conflict(Segment(30, 5, 30, 5)) is not None


@pytest.mark.parametrize("store_cls", STORES)
class TestRoundTripProperty:
    @settings(max_examples=120, deadline=None)
    @given(
        baseline=st.lists(segment_strategy(), max_size=10),
        extras=st.lists(segment_strategy(), min_size=1, max_size=10),
        order_seed=st.randoms(use_true_random=False),
    )
    def test_commit_decommit_round_trip(self, store_cls, baseline, extras, order_seed):
        """insert(extras) then remove(extras) is a perfect no-op.

        Removal order is shuffled independently of insertion order, and
        extras may duplicate baseline segments (the multiset case) —
        the store must still land on bit-identical content.
        """
        reference = store_cls()
        store = store_cls()
        for seg in baseline:
            reference.insert(seg)
            store.insert(seg)
        expected = state_of(reference)

        for seg in extras:
            store.insert(seg)
        removal = list(extras)
        order_seed.shuffle(removal)
        for seg in removal:
            store.remove(seg)

        assert state_of(store) == expected
        assert sorted(s.raw for s in store.iter_segments()) == sorted(
            s.raw for s in reference.iter_segments()
        )

    @settings(max_examples=60, deadline=None)
    @given(
        segments=st.lists(segment_strategy(), min_size=1, max_size=12),
        probe=segment_strategy(),
    )
    def test_round_trip_preserves_conflict_answers(self, store_cls, segments, probe):
        store = store_cls()
        for seg in segments:
            store.insert(seg)
        baseline_answer = store.earliest_block(probe)
        for seg in segments:
            store.insert(seg)
        for seg in segments:
            store.remove(seg)
        assert store.earliest_block(probe) == baseline_answer


class TestStripStoreMapRemove:
    def test_emptied_store_reverts_to_shared_empty(self):
        stores = StripStoreMap(4, NaiveSegmentStore)
        seg = Segment(0, 0, 3, 3)
        stores.materialize(2).insert(seg)
        assert stores.version_of(2) != 0
        stores.remove(2, seg)
        assert stores[2] is EMPTY_STORE
        assert stores.version_of(2) == 0

    def test_remove_from_untouched_strip_raises(self):
        stores = StripStoreMap(4, NaiveSegmentStore)
        with pytest.raises(KeyError):
            stores.remove(1, Segment(0, 0, 1, 1))


class TestCrossingLedgerVersioning:
    def test_add_and_remove_bump_version(self):
        ledger = CrossingLedger(6, 6)
        v0 = ledger.version
        ledger.add((1, 1), (1, 2), 5)
        v1 = ledger.version
        assert v1 != v0
        # A second reference (a forced recovery commit overlapping an
        # existing claim) is a membership no-op: version is stable and
        # the key stays committed until the last reference is released.
        ledger.add((1, 1), (1, 2), 5)
        assert ledger.version == v1
        ledger.remove((1, 1), (1, 2), 5)
        assert ledger.version == v1
        assert ((1, 1), (1, 2), 5) in ledger
        ledger.remove((1, 1), (1, 2), 5)
        assert ledger.version != v1
        assert ((1, 1), (1, 2), 5) not in ledger

    def test_remove_missing_raises(self):
        ledger = CrossingLedger(6, 6)
        with pytest.raises(KeyError):
            ledger.remove((0, 0), (0, 1), 3)

    def test_round_trip_restores_key_set(self):
        ledger = CrossingLedger(8, 8)
        base = [((0, 0), (0, 1), 2), ((3, 3), (4, 3), 7)]
        extra = [((5, 5), (5, 6), 9), ((1, 2), (1, 1), 4)]
        for key in base:
            ledger.add_key(key)
        before = sorted(ledger.iter_keys())
        for key in extra:
            ledger.add_key(key)
        for key in reversed(extra):
            ledger.remove_key(key)
        assert sorted(ledger.iter_keys()) == before

    def test_prune_bumps_only_on_change(self):
        ledger = CrossingLedger(6, 6)
        ledger.add((2, 2), (2, 3), 10)
        v = ledger.version
        assert ledger.prune(5) == 0
        assert ledger.version == v
        assert ledger.prune(11) == 1
        assert ledger.version != v

    def test_clear_bumps_only_nonempty(self):
        # Regression for the SRP001 restructure: the no-op path exits
        # before any mutation; the mutating path bumps after clearing.
        ledger = CrossingLedger(6, 6)
        v0 = ledger.version
        ledger.clear()
        assert ledger.version == v0
        ledger.add((1, 1), (1, 2), 5)
        v1 = ledger.version
        ledger.clear()
        assert ledger.version != v1
        assert len(ledger) == 0 and not ledger


class TestStructuredExceptions:
    def test_planning_failed_diagnostics(self):
        exc = PlanningFailedError(
            "no route", query_id=7, release_time=42, phase="fallback", expansions=99
        )
        diag = exc.diagnostics()
        assert diag["query_id"] == 7
        assert diag["release_time"] == 42
        assert diag["phase"] == "fallback"
        assert diag["expansions"] == 99
        text = str(exc)
        assert "no route" in text and "query_id=7" in text and "fallback" in text

    def test_simulation_error_diagnostics(self):
        exc = SimulationError("cascade stuck", query_id=3, release_time=8,
                              phase="recovery-cascade")
        diag = exc.diagnostics()
        assert diag == {"query_id": 3, "release_time": 8,
                        "phase": "recovery-cascade"}

    def test_plain_messages_stay_clean(self):
        assert str(PlanningFailedError("boom")) == "boom"
        assert str(SimulationError("bang")) == "bang"
