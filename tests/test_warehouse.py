"""Tests for the warehouse matrix, layout generator, datasets and traces."""

import numpy as np
import pytest

from repro import LayoutSpec, TaskTraceSpec, Warehouse, generate_layout, generate_tasks
from repro.exceptions import LayoutError
from repro.types import QueryKind
from repro.warehouse.datasets import DATASET_SUMMARY, dataset_by_name, w1, w2, w3
from repro.warehouse.tasks import queries_for_task


class TestWarehouseMatrix:
    def test_from_ascii_round_trip(self, tiny_warehouse):
        again = Warehouse.from_ascii(tiny_warehouse.to_ascii())
        assert again == tiny_warehouse

    def test_dimensions(self, tiny_warehouse):
        assert tiny_warehouse.shape == (8, 8)
        assert tiny_warehouse.n_cells == 64
        assert tiny_warehouse.n_racks == 20

    def test_is_rack_and_free(self, tiny_warehouse):
        assert tiny_warehouse.is_rack((1, 2))
        assert tiny_warehouse.is_free((0, 0))
        assert not tiny_warehouse.is_free((-1, 0))

    def test_neighbors_skip_racks(self, tiny_warehouse):
        # (1,1) has rack neighbour (1,2).
        assert (1, 2) not in list(tiny_warehouse.neighbors((1, 1)))
        assert (0, 1) in list(tiny_warehouse.neighbors((1, 1)))

    def test_all_neighbors_include_racks(self, tiny_warehouse):
        assert (1, 2) in list(tiny_warehouse.all_neighbors((1, 1)))

    def test_corner_neighbors(self, tiny_warehouse):
        assert set(tiny_warehouse.neighbors((0, 0))) == {(0, 1), (1, 0)}

    def test_cell_lists_partition(self, tiny_warehouse):
        free = set(tiny_warehouse.free_cells())
        racks = set(tiny_warehouse.rack_cells())
        assert not free & racks
        assert len(free) + len(racks) == tiny_warehouse.n_cells

    def test_grid_graph_counts(self, tiny_warehouse):
        assert tiny_warehouse.grid_vertex_count() == 64
        assert tiny_warehouse.grid_edge_count() == 128

    def test_picker_on_rack_rejected(self):
        with pytest.raises(LayoutError):
            Warehouse(np.ones((3, 3), dtype=bool), pickers=[(0, 0)])

    def test_out_of_bounds_home_rejected(self):
        with pytest.raises(LayoutError):
            Warehouse(np.zeros((3, 3), dtype=bool), robot_homes=[(5, 5)])

    def test_empty_matrix_rejected(self):
        with pytest.raises(LayoutError):
            Warehouse(np.zeros((0, 3), dtype=bool))

    def test_unknown_ascii_char_rejected(self):
        with pytest.raises(LayoutError):
            Warehouse.from_ascii("..X..")

    def test_ascii_markers(self):
        wh = Warehouse.from_ascii("P.R\n...")
        assert wh.pickers == [(0, 0)]
        assert wh.robot_homes == [(0, 2)]


class TestLayoutGenerator:
    def test_respects_dimensions(self, small_warehouse):
        assert small_warehouse.shape == (28, 20)

    def test_cluster_shape(self):
        spec = LayoutSpec(height=30, width=20, cluster_length=4, n_pickers=2, n_robots=2)
        wh = generate_layout(spec)
        racks = wh.racks
        # Every rack run along a column is exactly cluster_length tall.
        for j in range(wh.width):
            runs = []
            run = 0
            for i in range(wh.height):
                if racks[i, j]:
                    run += 1
                elif run:
                    runs.append(run)
                    run = 0
            if run:
                runs.append(run)
            assert all(r == 4 for r in runs)

    def test_full_width_aisles_exist(self, small_warehouse):
        free_rows = ~small_warehouse.racks.any(axis=1)
        assert free_rows.sum() >= 4  # margins plus inter-cluster aisles

    def test_counts(self, small_warehouse):
        assert len(small_warehouse.pickers) == 4
        assert len(small_warehouse.robot_homes) == 6

    def test_fill_ratio_exact(self):
        spec = LayoutSpec(
            height=40, width=30, cluster_length=4, n_pickers=2, n_robots=2, fill_ratio=0.5
        )
        wh = generate_layout(spec)
        slots = len(spec.cluster_row_starts()) * len(spec.cluster_col_starts())
        expected = round(0.5 * slots) * 2 * spec.cluster_length
        assert wh.n_racks == expected

    def test_deterministic(self):
        spec = LayoutSpec(height=30, width=20, cluster_length=4, n_pickers=3, n_robots=3, fill_ratio=0.7)
        assert generate_layout(spec) == generate_layout(spec)

    def test_seed_changes_thinning(self):
        base = dict(height=30, width=20, cluster_length=4, n_pickers=3, n_robots=3, fill_ratio=0.5)
        a = generate_layout(LayoutSpec(seed=1, **base))
        b = generate_layout(LayoutSpec(seed=2, **base))
        assert not np.array_equal(a.racks, b.racks)

    def test_too_small_rejected(self):
        with pytest.raises(LayoutError):
            LayoutSpec(height=5, width=20, cluster_length=4)

    def test_bad_fill_rejected(self):
        with pytest.raises(LayoutError):
            LayoutSpec(height=30, width=20, fill_ratio=1.5)

    def test_too_many_robots_rejected(self):
        with pytest.raises(LayoutError):
            generate_layout(
                LayoutSpec(height=30, width=20, cluster_length=4, n_pickers=2, n_robots=100_000)
            )


class TestDatasets:
    @pytest.mark.parametrize("name", ["W-1", "W-2", "W-3"])
    def test_table2_exact_counts(self, name):
        info = DATASET_SUMMARY[name]
        wh = dataset_by_name(name)
        assert wh.shape == (info.height, info.width)
        assert wh.n_racks == info.n_racks
        assert len(wh.pickers) == info.n_pickers
        assert len(wh.robot_homes) == info.n_robots

    def test_scaling_shrinks(self):
        full, half = w1(), w1(scale=0.5)
        assert half.height < full.height
        assert half.n_racks < full.n_racks
        assert len(half.robot_homes) < len(full.robot_homes)

    def test_factories_distinct(self):
        assert w1().shape != w2().shape != w3().shape

    def test_unknown_name_rejected(self):
        with pytest.raises(LayoutError):
            dataset_by_name("W-9")

    def test_names(self):
        assert w1(scale=0.5).name == "W-1@0.5"
        assert w2().name == "W-2"


class TestTaskTraces:
    def test_deterministic(self, small_warehouse):
        spec = TaskTraceSpec(n_tasks=20, day_length=500, seed=9)
        assert generate_tasks(small_warehouse, spec) == generate_tasks(small_warehouse, spec)

    def test_sorted_releases_in_range(self, small_warehouse):
        tasks = generate_tasks(small_warehouse, TaskTraceSpec(n_tasks=50, day_length=300, seed=1))
        releases = [t.release_time for t in tasks]
        assert releases == sorted(releases)
        assert all(0 <= r < 300 for r in releases)

    def test_endpoints_valid(self, small_warehouse):
        tasks = generate_tasks(small_warehouse, TaskTraceSpec(n_tasks=30, day_length=300, seed=4))
        for t in tasks:
            assert small_warehouse.is_rack(t.rack)
            assert t.picker in small_warehouse.pickers

    def test_diurnal_has_morning_peak(self, small_warehouse):
        tasks = generate_tasks(
            small_warehouse, TaskTraceSpec(n_tasks=2000, day_length=1000, seed=3)
        )
        early = sum(1 for t in tasks if 150 <= t.release_time < 350)
        late = sum(1 for t in tasks if 750 <= t.release_time < 950)
        assert early > 2 * late  # the morning flood dominates the evening

    def test_uniform_pattern_flat(self, small_warehouse):
        tasks = generate_tasks(
            small_warehouse,
            TaskTraceSpec(n_tasks=2000, day_length=1000, pattern="uniform", seed=3),
        )
        first_half = sum(1 for t in tasks if t.release_time < 500)
        assert 800 < first_half < 1200

    def test_bad_specs_rejected(self):
        with pytest.raises(LayoutError):
            TaskTraceSpec(n_tasks=0)
        with pytest.raises(LayoutError):
            TaskTraceSpec(n_tasks=5, pattern="bursty")

    def test_no_pickers_rejected(self, tiny_warehouse):
        with pytest.raises(LayoutError):
            generate_tasks(tiny_warehouse, TaskTraceSpec(n_tasks=5))

    def test_queries_for_task(self):
        from repro.types import Task

        task = Task(10, (2, 2), (7, 0), task_id=1)
        queries = queries_for_task(task, (0, 0), 15)
        assert [q.kind for q in queries] == [
            QueryKind.PICKUP,
            QueryKind.TRANSMISSION,
            QueryKind.RETURN,
        ]
        assert queries[0].origin == (0, 0) and queries[0].destination == (2, 2)
        assert queries[1].origin == (2, 2) and queries[1].destination == (7, 0)
        assert queries[2].origin == (7, 0) and queries[2].destination == (2, 2)
        assert all(q.release_time == 15 for q in queries)


class TestRackSkew:
    def test_skewed_concentrates_demand(self, small_warehouse):
        from collections import Counter

        uniform = generate_tasks(
            small_warehouse, TaskTraceSpec(n_tasks=600, day_length=900, seed=8)
        )
        skewed = generate_tasks(
            small_warehouse,
            TaskTraceSpec(n_tasks=600, day_length=900, rack_skew=1.2, seed=8),
        )
        top_uniform = Counter(t.rack for t in uniform).most_common(1)[0][1]
        top_skewed = Counter(t.rack for t in skewed).most_common(1)[0][1]
        assert top_skewed > 2 * top_uniform

    def test_negative_skew_rejected(self):
        with pytest.raises(LayoutError):
            TaskTraceSpec(n_tasks=5, rack_skew=-0.5)

    def test_skewed_trace_still_valid(self, small_warehouse):
        tasks = generate_tasks(
            small_warehouse, TaskTraceSpec(n_tasks=50, rack_skew=2.0, seed=4)
        )
        assert all(small_warehouse.is_rack(t.rack) for t in tasks)


class TestDayTraceSpec:
    def test_volumes_follow_table2_profile(self):
        from repro.warehouse import day_trace_spec
        from repro.warehouse.datasets import DATASET_SUMMARY

        info = DATASET_SUMMARY["W-3"]
        volumes = [day_trace_spec("W-3", d).n_tasks for d in range(1, 6)]
        published = info.tasks_per_day
        # Relative ordering of days preserved exactly.
        assert sorted(range(5), key=lambda i: volumes[i]) == sorted(
            range(5), key=lambda i: published[i]
        )
        # Day 4 is ~5x Day 3 in the paper; allow rounding slack.
        assert volumes[3] > 4 * volumes[2]

    def test_deterministic_seeds(self):
        from repro.warehouse import day_trace_spec

        a = day_trace_spec("W-1", 2)
        b = day_trace_spec("W-1", 2)
        assert a == b
        assert day_trace_spec("W-2", 2).seed != a.seed

    def test_bad_inputs(self):
        from repro.warehouse import day_trace_spec

        with pytest.raises(LayoutError):
            day_trace_spec("W-9", 1)
        with pytest.raises(LayoutError):
            day_trace_spec("W-1", 6)


class TestClusterOrientation:
    def _spec(self, orientation):
        return LayoutSpec(
            height=60, width=40, cluster_length=8, n_pickers=4, n_robots=4,
            cluster_orientation=orientation,
        )

    def test_horizontal_clusters_shape(self):
        wh = generate_layout(self._spec("horizontal"))
        racks = wh.racks
        # Every rack run along a column is exactly 2 tall now.
        for j in range(wh.width):
            run = 0
            for i in range(wh.height):
                if racks[i, j]:
                    run += 1
                elif run:
                    assert run == 2
                    run = 0
            if run:
                assert run == 2

    def test_vertical_reduces_strips_better(self):
        """The paper's layout assumption quantified: vertical 2xl
        clusters aggregate into far fewer strips than horizontal ones."""
        from repro import build_strip_graph

        vert = build_strip_graph(generate_layout(self._spec("vertical")))
        horiz = build_strip_graph(generate_layout(self._spec("horizontal")))
        assert vert.n_vertices < 0.5 * horiz.n_vertices

    def test_unknown_orientation_rejected(self):
        with pytest.raises(LayoutError):
            LayoutSpec(height=60, width=40, cluster_orientation="diagonal")

    def test_planning_still_works_on_horizontal(self):
        from repro import Query, SRPPlanner
        from repro.analysis import find_conflicts

        wh = generate_layout(self._spec("horizontal"))
        planner = SRPPlanner(wh)
        routes = [
            planner.plan(Query((0, 0), (59, 39), 0, query_id=1)),
            planner.plan(Query((59, 0), (0, 39), 0, query_id=2)),
        ]
        assert find_conflicts(routes) == []
