"""Tests for the shared planner interface defaults."""

import pytest

from repro.planner_base import Planner, PlannerTimers
from repro.types import Query, Route


class _MinimalPlanner(Planner):
    name = "minimal"

    def plan(self, query: Query) -> Route:
        return Route(query.release_time, [query.origin])

    def reset(self) -> None:
        self.timers.reset()


class TestPlannerDefaults:
    def test_timers_start_clean(self):
        p = _MinimalPlanner()
        assert p.timers.total == 0.0
        assert p.timers.queries == 0
        assert p.timers.failures == 0

    def test_take_revisions_default_empty(self):
        assert _MinimalPlanner().take_revisions() == {}

    def test_prune_default_noop(self):
        p = _MinimalPlanner()
        p.prune(100)  # must not raise

    def test_planning_state_defaults_to_self(self):
        p = _MinimalPlanner()
        assert p.planning_state() is p


class TestPlannerTimers:
    def test_reset(self):
        t = PlannerTimers(total=1.5, queries=3, failures=1)
        t.reset()
        assert (t.total, t.queries, t.failures) == (0.0, 0, 0)


class TestPlanBatch:
    def _queries(self, warehouse, n=16, seed=44):
        from tests.conftest import random_cells
        from repro.types import Query

        cells = random_cells(warehouse, 2 * n, seed=seed, include_racks=False)
        return [
            Query(cells[2 * k], cells[2 * k + 1], 0, query_id=k) for k in range(n)
        ]

    @pytest.mark.parametrize("order", ["fifo", "shortest_first", "longest_first"])
    def test_orders_collision_free(self, order, mid_warehouse):
        from repro import SRPPlanner
        from repro.analysis import find_conflicts

        planner = SRPPlanner(mid_warehouse)
        routes = planner.plan_batch(self._queries(mid_warehouse), order=order)
        assert len(routes) == 16
        assert find_conflicts(list(routes.values())) == []

    def test_unknown_order_rejected(self, mid_warehouse):
        from repro import SRPPlanner

        with pytest.raises(ValueError):
            SRPPlanner(mid_warehouse).plan_batch([], order="random")

    def test_release_dominates_ordering(self, mid_warehouse):
        """Later releases never plan before earlier ones."""
        from repro import SRPPlanner
        from repro.types import Query

        planner = SRPPlanner(mid_warehouse)
        seen = []
        original_plan = planner.plan

        def spy(query):
            seen.append(query.release_time)
            return original_plan(query)

        planner.plan = spy
        queries = [
            Query((0, 0), (0, 5), 10, query_id=1),
            Query((5, 0), (10, 0), 0, query_id=2),
        ]
        planner.plan_batch(queries, order="longest_first")
        assert seen == sorted(seen)
