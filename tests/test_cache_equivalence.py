"""Property test: the plan cache never changes planning outcomes.

The versioned-key design promises that SRP with the edge-weight cache
enabled is *bit-for-bit* identical to SRP without it — same routes,
same start times, same failures — on any online query stream.  This
drives randomly generated streams through two planners in lockstep and
compares every outcome.
"""

from hypothesis import given, settings, strategies as st

from repro import Query, SRPPlanner, Warehouse
from repro.exceptions import PlanningFailedError

WORLD = """
........
..##.##.
..##.##.
........
..##.##.
........
"""


def _warehouse() -> Warehouse:
    return Warehouse.from_ascii(WORLD)


_FREE = _warehouse().free_cells()


@st.composite
def query_stream(draw):
    n = draw(st.integers(1, 8))
    queries = []
    release = 0
    for k in range(n):
        release += draw(st.integers(0, 6))
        origin = _FREE[draw(st.integers(0, len(_FREE) - 1))]
        destination = _FREE[draw(st.integers(0, len(_FREE) - 1))]
        if origin == destination:
            continue
        queries.append(Query(origin, destination, release, query_id=k))
    return queries


def _run(planner, queries):
    outcomes = []
    for query in queries:
        try:
            route = planner.plan(query)
        except PlanningFailedError:
            outcomes.append(None)
            continue
        outcomes.append((route.start_time, tuple(route.grids)))
    return outcomes


@settings(max_examples=20, deadline=None)
@given(queries=query_stream())
def test_cached_routes_identical_to_uncached(queries):
    warehouse = _warehouse()
    cached = _run(SRPPlanner(warehouse, cache=True), queries)
    uncached = _run(SRPPlanner(warehouse, cache=False), queries)
    assert cached == uncached


@settings(max_examples=10, deadline=None)
@given(queries=query_stream())
def test_equivalence_survives_pruning(queries):
    warehouse = _warehouse()
    planners = (SRPPlanner(warehouse, cache=True), SRPPlanner(warehouse, cache=False))
    outcomes = ([], [])
    for query in queries:
        for i, planner in enumerate(planners):
            planner.prune(query.release_time)
            try:
                route = planner.plan(query)
            except PlanningFailedError:
                outcomes[i].append(None)
                continue
            outcomes[i].append((route.start_time, tuple(route.grids)))
    assert outcomes[0] == outcomes[1]


@settings(max_examples=10, deadline=None)
@given(queries=query_stream())
def test_tiny_cache_still_equivalent(queries):
    # Heavy eviction pressure: correctness must not depend on entries
    # surviving (eviction only ever costs recomputation).
    warehouse = _warehouse()
    tiny = _run(SRPPlanner(warehouse, cache=True, cache_size=2), queries)
    uncached = _run(SRPPlanner(warehouse, cache=False), queries)
    assert tiny == uncached
