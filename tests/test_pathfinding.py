"""Tests for BFS distance maps and space-time A*."""

import numpy as np
import pytest

from repro import Warehouse
from repro.baselines.reservation import ReservationTable
from repro.core.strips import build_strip_graph
from repro.exceptions import InvalidQueryError
from repro.pathfinding.distance import (
    UNREACHABLE,
    DistanceMaps,
    StripDistanceMaps,
    bfs_distance_map,
)
from repro.pathfinding.space_time_astar import NullConflictChecker, space_time_astar
from repro.types import Route


class TestDistanceMaps:
    def test_open_grid_is_manhattan(self):
        wh = Warehouse.from_ascii("....\n....\n....")
        dist = bfs_distance_map(wh, (0, 0))
        for i in range(3):
            for j in range(4):
                assert dist[i, j] == i + j

    def test_racks_force_detours(self, tiny_warehouse):
        dist = bfs_distance_map(tiny_warehouse, (0, 0))
        # (4,3) sits below the first cluster: straight-line distance is 7
        # and the aisle at column 4 keeps it reachable at that cost.
        assert dist[4, 3] == 7

    def test_rack_cells_get_one_hop_extension(self, tiny_warehouse):
        dist = bfs_distance_map(tiny_warehouse, (0, 0))
        # Rack cell (1,2): its free neighbour (1,1)... the nearest free
        # neighbour determines the value.
        free_neighbors = [
            dist[c] for c in tiny_warehouse.neighbors((1, 2))
        ]
        assert dist[1, 2] == min(free_neighbors) + 1

    def test_rack_target_reachable(self, tiny_warehouse):
        dist = bfs_distance_map(tiny_warehouse, (2, 2))
        assert dist[2, 2] == 0
        assert dist[2, 1] == 1  # the aisle cell west of the rack

    def test_walled_off_unreachable(self):
        wh = Warehouse.from_ascii("..#..\n..#..")
        dist = bfs_distance_map(wh, (0, 0))
        assert dist[0, 4] == UNREACHABLE

    def test_out_of_bounds_target(self, tiny_warehouse):
        with pytest.raises(InvalidQueryError):
            bfs_distance_map(tiny_warehouse, (99, 0))

    def test_cache_hits(self, tiny_warehouse):
        maps = DistanceMaps(tiny_warehouse)
        maps.get((0, 0))
        maps.get((0, 0))
        assert maps.hits == 1 and maps.misses == 1

    def test_lru_eviction(self, tiny_warehouse):
        maps = DistanceMaps(tiny_warehouse, max_entries=2)
        maps.get((0, 0))
        maps.get((0, 1))
        maps.get((0, 2))  # evicts (0, 0)
        assert len(maps) == 2
        maps.get((0, 0))
        assert maps.misses == 4

    def test_greedy_path_is_shortest(self, tiny_warehouse):
        maps = DistanceMaps(tiny_warehouse)
        path = maps.greedy_path((0, 0), (7, 7))
        assert path is not None
        assert len(path) - 1 == maps.distance((0, 0), (7, 7))
        assert path[0] == (0, 0) and path[-1] == (7, 7)

    def test_greedy_path_unreachable(self):
        wh = Warehouse.from_ascii("..#..\n..#..")
        maps = DistanceMaps(wh)
        assert maps.greedy_path((0, 0), (0, 4)) is None

    def test_lru_evicts_by_access_recency(self, tiny_warehouse):
        """A hit refreshes its entry: eviction drops the least recently
        *used* map, not the least recently inserted one."""
        maps = DistanceMaps(tiny_warehouse, max_entries=2)
        maps.get((0, 0))
        maps.get((0, 1))
        maps.get((0, 0))  # touch: (0, 1) is now the LRU entry
        maps.get((0, 2))  # evicts (0, 1)
        assert maps.evictions == 1
        assert maps.get((0, 0)) is not None
        assert maps.hits == 2 and maps.misses == 3  # (0, 0) survived

    def test_distance_touches_lru_order(self, tiny_warehouse):
        """distance() goes through get(), so it refreshes recency too."""
        maps = DistanceMaps(tiny_warehouse, max_entries=2)
        maps.get((0, 0))
        maps.get((0, 1))
        maps.distance((3, 3), (0, 0))  # touch via distance()
        maps.get((0, 2))  # must evict (0, 1), not (0, 0)
        maps.get((0, 0))
        assert maps.hits == 2 and maps.evictions == 1


class TestStripDistanceMaps:
    def _exact_vs_derived(self, warehouse, target):
        maps = StripDistanceMaps(warehouse, build_strip_graph(warehouse))
        return bfs_distance_map(warehouse, target), maps.get(target), maps

    def test_admissible_everywhere(self, tiny_warehouse):
        """The derived map never over-estimates the true distance."""
        for target in [(0, 0), (4, 3), (7, 7), (2, 2)]:  # incl. a rack cell
            exact, derived, _ = self._exact_vs_derived(tiny_warehouse, target)
            reachable = exact >= 0
            assert np.all(derived[reachable] <= exact[reachable])

    def test_exact_along_destination_strip(self, tiny_warehouse):
        """Cells of the target's own strip get the true distance."""
        graph = build_strip_graph(tiny_warehouse)
        target = (4, 3)
        strip_index, _ = graph.locate(target)
        strip = graph.strips[strip_index]
        exact, derived, _ = self._exact_vs_derived(tiny_warehouse, target)
        for p in range(strip.length):
            cell = strip.grid_at(p)
            assert derived[cell] == exact[cell]

    def test_target_cell_is_zero(self, tiny_warehouse):
        _, derived, _ = self._exact_vs_derived(tiny_warehouse, (4, 3))
        assert derived[4, 3] == 0

    def test_unreachable_cells_masked(self):
        wh = Warehouse.from_ascii("..#..\n..#..")
        maps = StripDistanceMaps(wh, build_strip_graph(wh))
        derived = maps.get((0, 0))
        assert derived[0, 4] == UNREACHABLE and derived[1, 4] == UNREACHABLE

    def test_same_strip_targets_share_fields(self, tiny_warehouse):
        """The whole point: N targets in one strip build one field pair."""
        graph = build_strip_graph(tiny_warehouse)
        maps = StripDistanceMaps(tiny_warehouse, graph)
        strip_index, _ = graph.locate((0, 0))
        strip = graph.strips[strip_index]
        for p in range(strip.length):
            maps.get(strip.grid_at(p))
        assert maps.field_builds == 1
        assert maps.misses == strip.length
        maps.get(strip.grid_at(0))
        assert maps.hits == 1

    def test_target_lru_eviction_counts(self, tiny_warehouse):
        maps = StripDistanceMaps(
            tiny_warehouse, build_strip_graph(tiny_warehouse), max_targets=2
        )
        maps.get((0, 0))
        maps.get((0, 1))
        maps.get((0, 0))  # refresh
        maps.get((0, 2))  # evicts (0, 1)
        assert maps.evictions == 1
        assert len(maps) == 2


class TestWeightedFieldSolvers:
    """The scipy-backed solver and the Dial sweep are interchangeable."""

    def _seed_sets(self, warehouse, rng, include_zero=True):
        h, w = warehouse.shape
        free = [
            (i, j) for i in range(h) for j in range(w) if not warehouse.racks[i, j]
        ]
        sets = []
        for _ in range(rng.randint(1, 3)):
            seeds = [
                (rng.choice(free), rng.randint(0, 9))
                for _ in range(rng.choice([0, 1, 2, 5, 15]))
            ]
            if seeds:
                # Duplicate cell with a different weight: the solver must
                # take the minimum, not the sum.
                seeds.append((seeds[0][0], rng.randint(0, 9)))
            if include_zero:
                seeds.append((rng.choice(free), 0))
            sets.append(seeds)
        return sets

    def test_sparse_solver_matches_sweep(self, tiny_warehouse):
        pytest.importorskip("scipy.sparse.csgraph")
        import random

        from repro.pathfinding.distance import _SparseFieldSolver, _swept_fields

        solver = _SparseFieldSolver(tiny_warehouse)
        rng = random.Random(20260808)
        for _ in range(25):
            sets = self._seed_sets(tiny_warehouse, rng)
            got = solver.fields(sets)
            want = _swept_fields(tiny_warehouse, sets)
            assert got is not None
            for g, x in zip(got, want):
                assert g.dtype == x.dtype
                assert np.array_equal(g, x)

    def test_sparse_solver_declines_rack_seeds(self, tiny_warehouse):
        pytest.importorskip("scipy.sparse.csgraph")
        from repro.pathfinding.distance import (
            _SparseFieldSolver,
            _swept_fields,
            _weighted_fields,
        )

        h, w = tiny_warehouse.shape
        rack = next(
            (i, j) for i in range(h) for j in range(w) if tiny_warehouse.racks[i, j]
        )
        free = next(
            (i, j) for i in range(h) for j in range(w) if not tiny_warehouse.racks[i, j]
        )
        solver = _SparseFieldSolver(tiny_warehouse)
        sets = [[(rack, 2), (free, 1)]]
        assert solver.fields(sets) is None
        # The dispatch falls back to the sweep and stays exact.
        assert np.array_equal(
            _weighted_fields(tiny_warehouse, sets, solver)[0],
            _swept_fields(tiny_warehouse, sets)[0],
        )

    def test_empty_seed_set(self, tiny_warehouse):
        pytest.importorskip("scipy.sparse.csgraph")
        from repro.pathfinding.distance import _SparseFieldSolver, _swept_fields

        solver = _SparseFieldSolver(tiny_warehouse)
        assert np.array_equal(
            solver.fields([[]])[0], _swept_fields(tiny_warehouse, [[]])[0]
        )


class TestSpaceTimeAStar:
    def _plan(self, wh, o, d, t=0, checker=None, **kw):
        checker = checker or NullConflictChecker()
        dist = bfs_distance_map(wh, d)
        return space_time_astar(wh, o, d, t, checker, dist, **kw)

    def test_unblocked_is_shortest(self, tiny_warehouse):
        route = self._plan(tiny_warehouse, (0, 0), (7, 7))
        assert route is not None
        assert route.duration == 14

    def test_start_time_respected(self, tiny_warehouse):
        route = self._plan(tiny_warehouse, (0, 0), (0, 5), t=42)
        assert route.start_time == 42 and route.finish_time == 47

    def test_routes_around_reservation(self):
        wh = Warehouse.from_ascii(".....\n.....\n.....")
        table = ReservationTable()
        # A robot parked on the straight-line path.
        table.register(Route(0, [(1, 2)] * 12))
        route = self._plan(wh, (1, 0), (1, 4), checker=table)
        assert route is not None
        assert all(route.position_at(t) != (1, 2) or t > 11 for t in range(12))

    def test_swap_blocked(self):
        wh = Warehouse.from_ascii(".....")
        table = ReservationTable()
        # Opposing robot moves (0,2) -> (0,1) over [1, 2].
        table.register(Route(1, [(0, 2), (0, 1)]))
        route = self._plan(wh, (0, 0), (0, 3), checker=table)
        assert route is not None
        # The direct 3-step march would swap with it; a detour in time
        # is required.
        assert route.duration > 3
        assert not (route.position_at(1) == (0, 1) and route.position_at(2) == (0, 2))

    def test_two_cell_exchange_is_infeasible(self):
        # In a 2-cell corridor an exchange is impossible: the planner
        # must report failure rather than produce a swap.
        wh = Warehouse.from_ascii("..")
        table = ReservationTable()
        table.register(Route(0, [(0, 1), (0, 0)]))
        assert self._plan(wh, (0, 0), (0, 1), checker=table) is None

    def test_blocked_start_returns_none(self):
        wh = Warehouse.from_ascii("...")
        table = ReservationTable()
        table.register(Route(0, [(0, 0)] * 3))
        assert self._plan(wh, (0, 0), (0, 2), checker=table) is None

    def test_unreachable_returns_none(self):
        wh = Warehouse.from_ascii("..#..")
        assert self._plan(wh, (0, 0), (0, 4)) is None

    def test_expansion_budget(self, mid_warehouse):
        route = self._plan(mid_warehouse, (0, 0), (39, 29), max_expansions=3)
        assert route is None

    def test_window_relaxes_conflicts(self):
        wh = Warehouse.from_ascii("......")
        table = ReservationTable()
        table.register(Route(4, [(0, 4)] * 10))  # blocks cell late
        # With a 2-second window the conflict at t>=4 is invisible.
        route = self._plan(wh, (0, 0), (0, 5), checker=table, window=2)
        assert route is not None and route.duration == 5

    def test_rack_origin_can_wait_in_place(self, tiny_warehouse):
        # Waiting under the origin rack is allowed.
        table = ReservationTable()
        table.register(Route(1, [(1, 1), (1, 1), (0, 1), (0, 0)]))
        route = self._plan(tiny_warehouse, (1, 2), (0, 0), t=0, checker=table)
        assert route is not None
        assert route.origin == (1, 2)
