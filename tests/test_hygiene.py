"""Repository hygiene: docstrings, exports, and API stability."""

import importlib
import pkgutil

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            module.__name__
            for module in iter_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_documented(self):
        missing = []
        for module in iter_modules():
            for name in dir(module):
                if name.startswith("_"):
                    continue
                obj = getattr(module, name)
                if isinstance(obj, type) and obj.__module__ == module.__name__:
                    if not (obj.__doc__ or "").strip():
                        missing.append(f"{module.__name__}.{name}")
        assert missing == []


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_names_resolve(self):
        for module in iter_modules():
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_planners_expose_names(self):
        from repro import ACPPlanner, RPPlanner, SAPPlanner, SRPPlanner, TWPPlanner

        names = {cls.name for cls in (SRPPlanner, SAPPlanner, RPPlanner, TWPPlanner, ACPPlanner)}
        assert names == {"SRP", "SAP", "RP", "TWP", "ACP"}

    def test_version(self):
        major = int(repro.__version__.split(".")[0])
        assert major >= 1
