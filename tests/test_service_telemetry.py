"""Tests for the service telemetry registry and its histograms."""

from repro.service.telemetry import (
    DEFAULT_BUCKET_BOUNDS_MS,
    LatencyHistogram,
    TelemetryRegistry,
)


class TestLatencyHistogram:
    def test_empty_percentiles_are_zero(self):
        hist = LatencyHistogram()
        assert hist.percentile(50) == 0
        assert hist.percentile(99) == 0
        assert hist.snapshot()["count"] == 0

    def test_single_sample_lands_in_its_bucket(self):
        hist = LatencyHistogram()
        hist.observe(7)
        # 7 ms falls in the (5, 10] bucket; every percentile reports
        # that bucket's upper bound.
        assert hist.percentile(50) == 10
        assert hist.percentile(99) == 10
        assert hist.total == 1 and hist.sum_ms == 7 and hist.max_ms == 7

    def test_percentile_is_bucket_upper_bound(self):
        hist = LatencyHistogram()
        for v in [1] * 90 + [400] * 10:
            hist.observe(v)
        assert hist.percentile(50) == 1
        assert hist.percentile(90) == 1
        assert hist.percentile(95) == 500  # 400 ms sits in (200, 500]
        assert hist.percentile(99) == 500

    def test_overflow_bucket_reports_observed_max(self):
        hist = LatencyHistogram()
        hist.observe(123456)  # beyond the last bound
        assert hist.percentile(99) == 123456
        assert hist.counts[-1] == 1

    def test_negative_samples_clamp_to_zero(self):
        hist = LatencyHistogram()
        hist.observe(-5)
        assert hist.sum_ms == 0
        assert hist.counts[0] == 1

    def test_snapshot_shape(self):
        hist = LatencyHistogram()
        for v in (1, 2, 3):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["max_ms"] == 3
        assert len(snap["buckets"]) == len(DEFAULT_BUCKET_BOUNDS_MS) + 1

    def test_determinism_same_samples_same_snapshot(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for v in (3, 17, 900, 42, 0, 6000):
            a.observe(v)
            b.observe(v)
        assert a.snapshot() == b.snapshot()


class TestTelemetryRegistry:
    def test_counters_and_count(self):
        reg = TelemetryRegistry()
        reg.incr("requests")
        reg.incr("requests", 2)
        assert reg.count("requests") == 3
        assert reg.count("missing") == 0

    def test_gauge_tracks_peak(self):
        reg = TelemetryRegistry()
        reg.set_gauge("queue_depth", 3)
        reg.set_gauge("queue_depth", 7)
        reg.set_gauge("queue_depth", 2)
        assert reg.gauges["queue_depth"] == 2
        assert reg.gauges["queue_depth_peak"] == 7

    def test_shed_rate(self):
        reg = TelemetryRegistry()
        assert reg.shed_rate() is None
        reg.incr("requests", 10)
        reg.incr("shed", 3)
        assert reg.shed_rate() == (3, 10)

    def test_snapshot_is_sorted_and_merges_extra(self):
        reg = TelemetryRegistry()
        reg.incr("zeta")
        reg.incr("alpha")
        reg.observe("queue_ms", 4)
        snap = reg.snapshot(extra={"cache_hit_rate": 0.5})
        assert list(snap["counters"]) == ["alpha", "zeta"]
        assert snap["planner"] == {"cache_hit_rate": 0.5}
        assert snap["histograms"]["queue_ms"]["count"] == 1
