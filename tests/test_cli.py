"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_cell, build_parser, main


class TestParsing:
    def test_parse_cell(self):
        assert _parse_cell("3,7") == (3, 7)

    def test_parse_cell_bad(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_cell("3;7")

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--dataset", "W-1", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "strip vertices" in out
        assert "W-1@0.2" in out

    def test_info_from_layout_file(self, capsys, tmp_path, small_warehouse):
        from repro.warehouse import save_warehouse

        path = tmp_path / "wh.json"
        save_warehouse(small_warehouse, path)
        assert main(["info", "--layout", str(path)]) == 0
        assert "28 x 20" in capsys.readouterr().out

    def test_plan(self, capsys):
        code = main(
            [
                "plan",
                "--dataset",
                "W-1",
                "--scale",
                "0.2",
                "--origin",
                "0,0",
                "--dest",
                "10,10",
                "--verbose",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "20 steps" in out
        assert "0,0" in out

    def test_simulate_multi_planner(self, capsys):
        code = main(
            [
                "simulate",
                "--dataset",
                "W-1",
                "--scale",
                "0.2",
                "--tasks",
                "8",
                "--day",
                "200",
                "--planner",
                "SRP,ACP",
                "--validate",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SRP" in out and "ACP" in out
        assert "OG (s)" in out


class TestPlannerVariantFlags:
    def test_plan_with_bucket_store(self, capsys):
        code = main(
            [
                "plan", "--dataset", "W-1", "--scale", "0.2",
                "--origin", "0,0", "--dest", "8,8",
                "--store", "bucket",
            ]
        )
        assert code == 0
        assert "16 steps" in capsys.readouterr().out

    def test_simulate_exact_intra(self, capsys):
        code = main(
            [
                "simulate", "--dataset", "W-1", "--scale", "0.2",
                "--tasks", "5", "--day", "120", "--exact", "--validate",
            ]
        )
        assert code == 0
        assert "SRP" in capsys.readouterr().out
