"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_cell, build_parser, main


class TestParsing:
    def test_parse_cell(self):
        assert _parse_cell("3,7") == (3, 7)

    def test_parse_cell_bad(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_cell("3;7")

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--dataset", "W-1", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "strip vertices" in out
        assert "W-1@0.2" in out

    def test_info_from_layout_file(self, capsys, tmp_path, small_warehouse):
        from repro.warehouse import save_warehouse

        path = tmp_path / "wh.json"
        save_warehouse(small_warehouse, path)
        assert main(["info", "--layout", str(path)]) == 0
        assert "28 x 20" in capsys.readouterr().out

    def test_plan(self, capsys):
        code = main(
            [
                "plan",
                "--dataset",
                "W-1",
                "--scale",
                "0.2",
                "--origin",
                "0,0",
                "--dest",
                "10,10",
                "--verbose",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "20 steps" in out
        assert "0,0" in out

    def test_simulate_multi_planner(self, capsys):
        code = main(
            [
                "simulate",
                "--dataset",
                "W-1",
                "--scale",
                "0.2",
                "--tasks",
                "8",
                "--day",
                "200",
                "--planner",
                "SRP,ACP",
                "--validate",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SRP" in out and "ACP" in out
        assert "OG (s)" in out

    def test_simulate_json_rows(self, capsys):
        import json

        code = main(
            [
                "simulate", "--dataset", "W-1", "--scale", "0.2",
                "--tasks", "6", "--day", "150", "--planner", "SRP,ACP",
                "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        rows = [json.loads(line) for line in out.splitlines() if line]
        assert [row["planner"] for row in rows] == ["SRP", "ACP"]
        for row in rows:
            assert row["dataset"] == "W-1@0.2"
            assert row["tasks"] == 6
            assert row["failed"] == 0
            assert isinstance(row["og_s"], int)
            assert isinstance(row["tc_ms"], float)

    def test_simulate_joint_recovery_with_fault_flags(self, capsys):
        import json

        code = main(
            [
                "simulate", "--dataset", "W-1", "--scale", "0.25",
                "--tasks", "12", "--day", "150",
                "--stalls", "4", "--blockages", "2",
                "--slowdowns", "2", "--closures", "1",
                "--fault-seed", "9", "--recovery", "joint",
                "--validate", "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        (row,) = [json.loads(line) for line in out.splitlines() if line]
        assert row["recovery"] == "joint"
        assert row["faults"] == 9
        assert row["closure_cells"] > 0
        for key in ("replan_attempts", "decommitted_segments",
                    "recovery_clusters", "max_cluster_size", "cluster_robots",
                    "recovery_cbs", "recovery_serial", "slowdown_stretches"):
            assert isinstance(row[key], int)

    def test_serve_and_load_round_trip(self, capsys):
        import json
        import threading

        from repro.service.loadgen import request_shutdown

        argv = [
            "serve", "--dataset", "W-1", "--scale", "0.2",
            "--port", "0", "--deadline-ms", "200",
        ]
        codes = {}

        def run_serve():
            codes["serve"] = main(argv)

        # cmd_serve installs signal handlers only from the main thread;
        # patch that out and drain via the wire protocol instead.
        import repro.cli as cli_mod

        original = cli_mod.signal.signal
        cli_mod.signal.signal = lambda *a, **k: None
        try:
            thread = threading.Thread(target=run_serve, daemon=True)
            thread.start()
            import re
            import time

            port = None
            for _ in range(200):
                out = capsys.readouterr().out
                match = re.search(r"on 127\.0\.0\.1:(\d+)", out)
                if match:
                    port = int(match.group(1))
                    break
                time.sleep(0.05)
            assert port, "serve never announced its port"
            codes["load"] = main(
                ["load", "--dataset", "W-1", "--scale", "0.2",
                 "--port", str(port), "--queries", "10", "--rate", "500"]
            )
            summary = json.loads(capsys.readouterr().out)
            assert request_shutdown("127.0.0.1", port)
            thread.join(timeout=20)
            assert not thread.is_alive()
        finally:
            cli_mod.signal.signal = original
        assert codes == {"serve": 0, "load": 0}
        assert summary["replies"] == 10
        assert summary["protocol_errors"] == 0
        assert summary["server_stats"]["counters"]["admitted"] == 10


class TestPlannerVariantFlags:
    def test_plan_with_bucket_store(self, capsys):
        code = main(
            [
                "plan", "--dataset", "W-1", "--scale", "0.2",
                "--origin", "0,0", "--dest", "8,8",
                "--store", "bucket",
            ]
        )
        assert code == 0
        assert "16 steps" in capsys.readouterr().out

    def test_simulate_exact_intra(self, capsys):
        code = main(
            [
                "simulate", "--dataset", "W-1", "--scale", "0.2",
                "--tasks", "5", "--day", "120", "--exact", "--validate",
            ]
        )
        assert code == 0
        assert "SRP" in capsys.readouterr().out
