"""Free-flow window certificates and faulted cached-planner bit-identity.

Two property families guard the PR's caching layers:

* **certificate soundness** — ``free_window`` answers and the
  ``last_end`` high-water mark are checked against brute force on
  random committed-segment soups for all three store backends; a
  window-certified band must reproduce the greedy search's plan
  bit-for-bit via :func:`free_flow_plan`;
* **bit-identity under disturbance** — random interleavings of online
  planning, blockage commits, pruning and ``replan_from`` recoveries
  (the PR 2/3 decommit path) must leave a cached planner's routes
  exactly equal to an uncached one's, because every cached certificate
  is version-checked rather than heuristically invalidated.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Query, SRPPlanner, Warehouse
from repro.core.columnar_store import ColumnarSegmentStore
from repro.core.intra_strip import plan_within_strip
from repro.core.naive_store import NaiveSegmentStore
from repro.core.plan_cache import free_flow_plan
from repro.core.segments import Segment
from repro.core.slope_index import SlopeIndexedStore
from repro.core.store_base import FOREVER, _band_time_interval
from repro.core.time_bucket_store import TimeBucketStore
from repro.exceptions import InvalidQueryError, PlanningFailedError

STORES = [NaiveSegmentStore, SlopeIndexedStore, TimeBucketStore, ColumnarSegmentStore]


@st.composite
def segment_strategy(draw, max_t=30, max_p=12, max_len=8):
    t0 = draw(st.integers(0, max_t))
    p0 = draw(st.integers(0, max_p))
    slope = draw(st.sampled_from([-1, 0, 1]))
    length = draw(st.integers(0, max_len))
    return Segment(t0, p0, t0 + length, p0 + slope * length if slope else p0)


@st.composite
def band_strategy(draw, max_p=12):
    lo = draw(st.integers(0, max_p))
    hi = draw(st.integers(lo, max_p))
    return lo, hi


def _blocks_band(segment: Segment, lo: int, hi: int, t0: int, t1: int) -> bool:
    """Brute-force: is ``segment`` inside ``[lo, hi]`` during ``[t0, t1]``?"""
    interval = _band_time_interval(segment, lo, hi)
    return interval is not None and interval[0] <= t1 and interval[1] >= t0


@pytest.mark.parametrize("store_cls", STORES)
class TestFreeWindowSoundness:
    @settings(max_examples=120, deadline=None)
    @given(
        segments=st.lists(segment_strategy(), max_size=12),
        band=band_strategy(),
        t0=st.integers(0, 40),
        span=st.integers(0, 12),
    )
    def test_window_matches_brute_force(self, store_cls, segments, band, t0, span):
        """A window exists iff the probe span is band-free, it contains
        the probe span, and *no* stored segment enters the band anywhere
        inside it."""
        lo, hi = band
        t1 = t0 + span
        store = store_cls()
        for seg in segments:
            store.insert(seg)
        window = store.free_window(lo, hi, t0, t1)
        if any(_blocks_band(s, lo, hi, t0, t1) for s in segments):
            assert window is None
        else:
            assert window is not None
            w_lo, w_hi = window
            assert 0 <= w_lo <= t0 and t1 <= w_hi <= FOREVER
            for seg in segments:
                assert not _blocks_band(seg, lo, hi, w_lo, w_hi)

    @settings(max_examples=80, deadline=None)
    @given(
        segments=st.lists(segment_strategy(), min_size=1, max_size=10),
        origin=st.integers(0, 12),
        dest=st.integers(0, 12),
        offset=st.integers(1, 20),
    )
    def test_last_end_certificate_reproduces_search(
        self, store_cls, segments, origin, dest, offset
    ):
        """Past the high-water mark the greedy search degenerates to the
        single free-flow move — :func:`free_flow_plan` must rebuild that
        result bit-for-bit, expansions included (the planner's O(1)
        certificate path)."""
        store = store_cls()
        for seg in segments:
            store.insert(seg)
        t = store.last_end + offset
        searched = plan_within_strip(store, t, origin, dest)
        certified = free_flow_plan(t, origin, dest)
        assert searched is not None
        assert [s.raw for s in searched.segments] == [
            s.raw for s in certified.segments
        ]
        assert searched.start_time == certified.start_time
        assert searched.arrival_time == certified.arrival_time
        assert searched.expansions == certified.expansions

    @settings(max_examples=80, deadline=None)
    @given(segments=st.lists(segment_strategy(), min_size=1, max_size=10))
    def test_last_end_is_an_upper_bound(self, store_cls, segments):
        """``last_end`` dominates every live end time, exactly after
        pure inserts, and monotonically (possibly stale-high, never
        stale-low) across removals."""
        store = store_cls()
        for seg in segments:
            store.insert(seg)
        true_max = max(s.t1 for s in segments)
        assert store.last_end == true_max
        for seg in segments[: len(segments) // 2]:
            store.remove(seg)
        live = [s.t1 for s in store.iter_segments()]
        assert store.last_end >= max(live, default=-1)
        assert store.last_end == true_max  # monotone: removals never lower it
        store.clear()
        assert store.last_end == -1


# ----------------------------------------------------------------------
# Cached-vs-uncached bit-identity under fault/decommit interleavings
# ----------------------------------------------------------------------
WORLD = """
........
..##.##.
..##.##.
........
..##.##.
........
"""


def _warehouse() -> Warehouse:
    return Warehouse.from_ascii(WORLD)


_FREE = _warehouse().free_cells()

#: one op per element: plan a query, commit a blockage, prune, or
#: recover an executing route via replan_from (decommit + hold + replan)
_OP = st.one_of(
    st.tuples(
        st.just("plan"),
        st.integers(0, len(_FREE) - 1),
        st.integers(0, len(_FREE) - 1),
        st.integers(0, 6),
    ),
    st.tuples(st.just("blockage"), st.integers(0, len(_FREE) - 1), st.integers(1, 6)),
    st.tuples(st.just("prune"), st.just(0), st.just(0)),
    st.tuples(st.just("replan"), st.integers(0, 31), st.integers(0, 31)),
)


def _apply_ops(planner, ops):
    """Drive one planner through an op sequence; return every outcome.

    Replan targets are derived from the planner's *own* committed
    routes, so if cached and uncached planners ever diverged the
    derived op streams (and hence the outcome logs) would too.
    """
    outcomes = []
    routes = {}
    now = 0
    qid = 0
    pruned_to = 0
    for op in ops:
        kind = op[0]
        if kind == "plan":
            _, oi, di, dt = op
            now += dt
            origin = _FREE[oi]
            destination = _FREE[di]
            if origin == destination:
                continue
            query = Query(origin, destination, now, query_id=qid)
            qid += 1
            try:
                route = planner.plan(query)
            except PlanningFailedError:
                outcomes.append(("fail", query.query_id))
                continue
            routes[query.query_id] = route
            outcomes.append(("route", query.query_id, route.start_time, tuple(route.grids)))
        elif kind == "blockage":
            _, ci, duration = op
            cell = _FREE[ci]
            planner.commit_blockage(cell, now, now + duration)
            outcomes.append(("blockage", cell, now, now + duration))
        elif kind == "prune":
            planner.prune(now)
            pruned_to = max(pruned_to, now)
        else:  # replan: stall some executing route mid-flight
            _, pick, frac = op
            # Only routes no prune has touched are recoverable (the
            # simulation never replans history it already discarded).
            active = [
                (q, r)
                for q, r in sorted(routes.items())
                if r.finish_time > r.start_time + 1 and r.start_time >= pruned_to
            ]
            if not active:
                continue
            query_id, route = active[pick % len(active)]
            stall_t = route.start_time + 1 + frac % (route.finish_time - route.start_time - 1)
            cell = route.position_at(stall_t)
            try:
                revised = planner.replan_from(query_id, cell, stall_t)
            except PlanningFailedError:
                outcomes.append(("replan-fail", query_id, stall_t))
                continue
            except InvalidQueryError:
                # e.g. a second stall scheduled before an earlier one on
                # the same route — rejected deterministically either way
                outcomes.append(("replan-invalid", query_id, stall_t))
                continue
            routes[query_id] = revised
            outcomes.append(
                ("replan", query_id, revised.start_time, tuple(revised.grids))
            )
    return outcomes


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(_OP, min_size=1, max_size=12))
def test_cached_identical_under_fault_interleavings(ops):
    warehouse = _warehouse()
    cached = _apply_ops(SRPPlanner(warehouse, cache=True), ops)
    uncached = _apply_ops(SRPPlanner(warehouse, cache=False), ops)
    assert cached == uncached


@settings(max_examples=10, deadline=None)
@given(ops=st.lists(_OP, min_size=1, max_size=12))
def test_exact_cache_identical_under_fault_interleavings(ops):
    """The per-second exact-key mode must obey the same invariant.

    Both sides run the exact intra-strip search: exact and greedy may
    legitimately place a wait at different (equally legal) cells, so
    the cache-equivalence invariant is per search mode.
    """
    warehouse = _warehouse()
    cached = _apply_ops(SRPPlanner(warehouse, cache=True, intra_exact=True), ops)
    uncached = _apply_ops(SRPPlanner(warehouse, cache=False, intra_exact=True), ops)
    assert cached == uncached
