"""Tests for the time-bucketed segment store extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.naive_store import NaiveSegmentStore
from repro.core.segments import Segment, make_move, make_wait
from repro.core.time_bucket_store import TimeBucketStore


@st.composite
def segment_strategy(draw, max_t=40, max_p=15, max_len=20):
    t0 = draw(st.integers(0, max_t))
    p0 = draw(st.integers(0, max_p))
    slope = draw(st.sampled_from([-1, 0, 1]))
    length = draw(st.integers(0, max_len))
    return Segment(t0, p0, t0 + length, p0 + slope * length if slope else p0)


class TestBasics:
    def test_bucket_width_validated(self):
        with pytest.raises(ValueError):
            TimeBucketStore(bucket_width=0)

    def test_long_segments_span_buckets(self):
        store = TimeBucketStore(bucket_width=4)
        store.insert(make_move(0, 0, 12))  # spans buckets 0..3
        assert len(store) == 1
        # Query landing only in a late bucket still sees it.
        hit = store.earliest_conflict(make_wait(10, 10, 1))
        assert hit is not None and hit[0] == 10

    def test_iter_deduplicates(self):
        store = TimeBucketStore(bucket_width=2)
        seg = make_move(0, 0, 9)
        store.insert(seg)
        assert list(store.iter_segments()) == [seg]

    def test_prune(self):
        store = TimeBucketStore(bucket_width=4)
        store.insert(make_move(0, 0, 3))
        store.insert(make_move(20, 0, 3))
        assert store.prune(10) == 1
        assert len(store) == 1

    def test_clear(self):
        store = TimeBucketStore()
        store.insert(make_move(0, 0, 3))
        store.clear()
        assert len(store) == 0
        assert store.earliest_conflict(make_move(0, 0, 3)) is None


class TestEquivalence:
    @settings(max_examples=250, deadline=None)
    @given(
        st.lists(segment_strategy(), max_size=15),
        segment_strategy(),
        st.sampled_from([1, 4, 16]),
    )
    def test_matches_naive_store(self, committed, query, width):
        naive = NaiveSegmentStore()
        bucket = TimeBucketStore(bucket_width=width)
        for s in committed:
            naive.insert(s)
            bucket.insert(s)
        a = naive.earliest_conflict(query)
        b = bucket.earliest_conflict(query)
        assert (a[0] if a else None) == (b[0] if b else None)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(segment_strategy(), max_size=15), st.integers(0, 50))
    def test_prune_counts_match(self, committed, before):
        naive = NaiveSegmentStore()
        bucket = TimeBucketStore(bucket_width=8)
        for s in committed:
            naive.insert(s)
            bucket.insert(s)
        assert naive.prune(before) == bucket.prune(before)
        assert len(naive) == len(bucket)


class TestPlannerIntegration:
    def test_bucket_backend_collision_free(self, mid_warehouse):
        from repro import Query, SRPPlanner
        from repro.analysis import find_conflicts
        from tests.conftest import random_cells

        planner = SRPPlanner(mid_warehouse, store="bucket")
        assert planner.store_kind == "bucket"
        cells = random_cells(mid_warehouse, 60, seed=91)
        routes = [
            planner.plan(Query(cells[k], cells[k + 1], 7 * k, query_id=k))
            for k in range(0, 60, 2)
        ]
        assert find_conflicts(routes) == []

    def test_unknown_store_rejected(self, tiny_warehouse):
        from repro import SRPPlanner

        with pytest.raises(ValueError):
            SRPPlanner(tiny_warehouse, store="btree")

    def test_backends_agree_on_totals(self, mid_warehouse):
        from repro import Query, SRPPlanner
        from tests.conftest import random_cells

        cells = random_cells(mid_warehouse, 40, seed=92)
        totals = {}
        for store in ("slope", "naive", "bucket"):
            planner = SRPPlanner(mid_warehouse, store=store)
            totals[store] = sum(
                planner.plan(Query(cells[k], cells[k + 1], 9 * k, query_id=k)).duration
                for k in range(0, 40, 2)
            )
        assert totals["slope"] == totals["naive"] == totals["bucket"]
