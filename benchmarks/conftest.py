"""Shared infrastructure of the benchmark harness.

Every benchmark file regenerates one table or figure of the paper.
Absolute numbers differ from the paper (pure-Python planners on scaled
traces versus Java on full traces — see EXPERIMENTS.md), but the rows
and series printed here have the same shape as the published ones.

Scaling knobs (environment variables):

* ``REPRO_BENCH_SCALE``  — linear warehouse scale factor (default 1.0,
  i.e. the full Table II dimensions; set e.g. 0.3 on slow machines);
* ``REPRO_BENCH_TASKS``  — tasks per simulated day (default 200; the
  paper runs 27k-135k tasks/day, far beyond pure-Python planners);
* ``REPRO_BENCH_DAY``    — span of release times (default 1500 s).

Day simulations are cached per (dataset, planner) for the whole pytest
session so the TC/MC/OG artefacts reuse the same runs.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass
from typing import Dict, Tuple

import pytest

from repro import (
    ACPPlanner,
    RPPlanner,
    SAPPlanner,
    SRPPlanner,
    TaskTraceSpec,
    TWPPlanner,
    datasets,
    generate_tasks,
    run_day,
)
from repro.simulation import SimulationResult

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_TASKS = int(os.environ.get("REPRO_BENCH_TASKS", "200"))
BENCH_DAY = int(os.environ.get("REPRO_BENCH_DAY", "1500"))

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: machine-readable perf trajectory, one record appended per bench run
#: (and per PR), so performance history accumulates across the repo's
#: growth instead of living only in commit messages.
BENCH_HOTPATH_PATH = os.path.join(REPO_ROOT, "BENCH_hotpath.json")

#: service-soak trajectory (sustained qps, latency percentiles, shed
#: rate under overload), same schema and append discipline as above
BENCH_SERVICE_PATH = os.path.join(REPO_ROOT, "BENCH_service.json")


def current_commit() -> str:
    """Short hash of the checked-out commit ("unknown" outside git).

    A ``+dirty`` suffix marks runs against uncommitted changes — without
    it, pre-commit bench records mislabel new code with the old hash.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        commit = out.stdout.strip() or "unknown"
        if commit != "unknown":
            status = subprocess.run(
                ["git", "status", "--porcelain"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=10,
            )
            if status.stdout.strip():
                commit += "+dirty"
        return commit
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def machine_fingerprint() -> str:
    """Coarse identity of the machine producing a bench record.

    qps numbers are only comparable between runs on similar hardware;
    the regression gate (``benchmarks/check_regression.py``) hard-fails
    only when the baseline record carries the *same* fingerprint and
    soft-passes across machines.
    """
    return (
        f"{platform.system()}-{platform.machine()}"
        f"-cpu{os.cpu_count() or 0}"
        f"-py{sys.version_info.major}.{sys.version_info.minor}"
    )


def append_bench_record(record: dict, path: str = BENCH_HOTPATH_PATH) -> str:
    """Append one record to the perf-trajectory file and return its path.

    The file is ``{"schema": 1, "records": [...]}``; a corrupt or
    missing file is replaced rather than crashing the bench.  Records
    lacking a ``machine`` field are stamped with the current
    :func:`machine_fingerprint`.
    """
    record.setdefault("machine", machine_fingerprint())
    data = {"schema": 1, "records": []}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                loaded = json.load(fh)
            if isinstance(loaded, dict) and isinstance(loaded.get("records"), list):
                data = loaded
        except (OSError, ValueError):
            pass
    data["records"].append(record)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path

PLANNERS = {
    "SRP": SRPPlanner,
    "SAP": SAPPlanner,
    "RP": RPPlanner,
    "TWP": TWPPlanner,
    "ACP": ACPPlanner,
}
DATASETS = ("W-1", "W-2", "W-3")


@dataclass
class DayRun:
    """One cached simulated day."""

    dataset: str
    planner: str
    result: SimulationResult


class DayRunCache:
    """Session-wide cache of simulated days."""

    def __init__(self) -> None:
        self._runs: Dict[Tuple[str, str, int], DayRun] = {}

    def get(self, dataset: str, planner: str, seed: int = 97) -> DayRun:
        key = (dataset, planner, seed)
        if key not in self._runs:
            warehouse = datasets.dataset_by_name(dataset, scale=BENCH_SCALE)
            tasks = generate_tasks(
                warehouse,
                TaskTraceSpec(n_tasks=BENCH_TASKS, day_length=BENCH_DAY, seed=seed),
            )
            result = run_day(
                warehouse,
                PLANNERS[planner](warehouse),
                tasks,
                snapshot_every=0.02,
                measure_memory=True,
                validate=True,
            )
            assert not result.conflicts, f"{planner} day on {dataset} had conflicts"
            self._runs[key] = DayRun(dataset, planner, result)
        return self._runs[key]


@pytest.fixture(scope="session")
def day_runs() -> DayRunCache:
    return DayRunCache()


@pytest.fixture(scope="session")
def bench_header() -> str:
    return (
        f"[bench config] scale={BENCH_SCALE} tasks/day={BENCH_TASKS} "
        f"day_length={BENCH_DAY}s (set REPRO_BENCH_* env vars to change)"
    )
