"""Figs. 16-21's multi-day dimension: Day1..Day5 volume profile.

The paper plots five real days per warehouse whose task volumes swing
up to 5x (Table II).  This harness replays the Day1..Day5 volume
profile (scaled by a constant divisor) on W-3 and reports per-day TC
for SRP against the strongest-volume sensitivity baseline, SAP.
Expected shape: TC tracks the day's volume, SRP stays cheapest on every
day, and the heaviest day (Day 4 in Table II) is where the largest
absolute gap appears — the regime of the paper's 227x snapshot.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro import SAPPlanner, SRPPlanner, datasets, generate_tasks
from repro.analysis import format_table
from repro.simulation import run_day
from repro.warehouse import day_trace_spec

DATASET = "W-3"
VOLUME_DIVISOR = 1000.0  # Table II thousands -> tasks per simulated day


@pytest.fixture(scope="module")
def multiday_rows():
    warehouse = datasets.dataset_by_name(DATASET, scale=min(BENCH_SCALE, 0.5))
    rows = []
    for day in range(1, 6):
        spec = day_trace_spec(DATASET, day, volume_divisor=VOLUME_DIVISOR)
        tasks = generate_tasks(warehouse, spec)
        tc = {}
        for planner_cls in (SRPPlanner, SAPPlanner):
            planner = planner_cls(warehouse)
            result = run_day(warehouse, planner, tasks, measure_memory=False)
            assert result.failed_tasks == 0
            tc[planner.name] = result.tc_seconds
        rows.append((day, spec.n_tasks, tc["SRP"], tc["SAP"]))
    return rows


def test_day_profile(multiday_rows, bench_header, benchmark):
    print()
    print(bench_header)
    table = [
        [f"Day{day}", n, f"{srp:.3f}", f"{sap:.3f}", f"{sap / srp:.2f}x"]
        for day, n, srp, sap in multiday_rows
    ]
    print(
        format_table(
            ["day", "tasks", "SRP TC s", "SAP TC s", "SAP/SRP"],
            table,
            title=f"{DATASET} Day1..Day5 (Table II volume profile / {VOLUME_DIVISOR:.0f})",
        )
    )
    # Shape: the heavy days dominate the light days for both planners,
    # and SRP wins on the heaviest day.
    by_day = {day: (srp, sap) for day, _n, srp, sap in multiday_rows}
    assert by_day[4][0] > by_day[3][0]  # Day4 >> Day3 volume
    assert by_day[4][1] > by_day[3][1]
    assert by_day[4][0] < by_day[4][1]  # SRP cheaper on the heavy day
    benchmark(lambda: by_day[4][0])


def test_benchmark_heavy_day_query(benchmark):
    warehouse = datasets.dataset_by_name(DATASET, scale=min(BENCH_SCALE, 0.5))
    planner = SRPPlanner(warehouse)
    free = warehouse.free_cells()
    state = {"k": 0}

    def plan_one():
        k = state["k"]
        state["k"] += 1
        return planner.plan(
            __import__("repro").Query(
                free[(53 * k) % len(free)], free[(131 * k + 17) % len(free)], 3 * k
            )
        )

    benchmark(plan_one)
