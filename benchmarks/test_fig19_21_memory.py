"""Figures 19-21 — memory consumption (MC) versus task progress.

MC is the deep size of each planner's traffic-scaling state (per-strip
segment stores + crossing events for SRP; the (cell, time) reservation
table for the grid baselines).  Expected shape: MC fluctuates with the
number of in-flight routes (spikes near the diurnal arrival peaks),
and SRP's peak sits below every baseline because a route costs a few
segment endpoints instead of one reservation per timestep.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, DATASETS, PLANNERS
from repro import Query, SRPPlanner, datasets, deep_sizeof
from repro.analysis import format_series, format_table


@pytest.mark.parametrize("dataset", DATASETS)
def test_mc_curves(day_runs, dataset, bench_header, benchmark):
    fig = {"W-1": "Fig. 19", "W-2": "Fig. 20", "W-3": "Fig. 21"}[dataset]
    print()
    print(bench_header)
    print(f"{fig} — MC (planner state bytes) vs progress on {dataset}")
    peaks = {}
    for planner in PLANNERS:
        result = day_runs.get(dataset, planner).result
        series = [s for s in result.snapshots if s.mc_bytes is not None]
        xs = [f"{s.progress:.0%}" for s in series[:: max(1, len(series) // 10)]]
        ys = [s.mc_bytes for s in series[:: max(1, len(series) // 10)]]
        print(format_series(planner, xs, ys, "progress", "MC bytes"))
        peaks[planner] = result.peak_mc_bytes or 0
    print("peak MC bytes:", peaks)
    # Shape: SRP's peak memory is the smallest of all planners.
    assert peaks["SRP"] == min(peaks.values())
    benchmark(lambda: min(peaks.values()))


def test_mc_peak_table(day_runs, bench_header, benchmark):
    print()
    print(bench_header)
    names = list(PLANNERS)
    rows = []
    for dataset in DATASETS:
        peaks = {p: day_runs.get(dataset, p).result.peak_mc_bytes or 0 for p in names}
        srp = peaks["SRP"]
        rows.append(
            [dataset]
            + [f"{peaks[p] / 1024:.0f}" for p in names]
            + [f"{srp / max(peaks.values()):.0%}"]
        )
    print(
        format_table(
            ["name"] + [f"{p} KiB" for p in names] + ["SRP/worst"],
            rows,
            title="Peak MC per planner (paper: SRP at 1-3% of the others)",
        )
    )
    benchmark(lambda: rows[0][0])


def test_benchmark_mc_measurement(benchmark):
    """Cost of one deep-sizeof MC sample on a loaded SRP planner."""
    warehouse = datasets.w1(scale=BENCH_SCALE)
    planner = SRPPlanner(warehouse)
    free = warehouse.free_cells()
    for k in range(0, 60, 2):
        planner.plan(Query(free[(31 * k) % len(free)], free[(77 * k + 5) % len(free)], 10 * k))
    size = benchmark(deep_sizeof, planner.planning_state())
    assert size > 0
