#!/usr/bin/env python
"""Performance regression gate over the ``BENCH_hotpath.json`` trajectory.

Re-runs the hot-path benchmark and compares its throughput against the
most recent trajectory record with the *same configuration* (layout,
scale, stream length, day span, seed).  The gate fails (exit 1) when
cached-planning qps dropped by more than ``--threshold`` (default 20%).

Baselines taken on different hardware are not comparable, so the gate
is scoped by the ``machine`` fingerprint stamped into every record:

* same config **and** same machine  -> hard gate (fail on regression);
* same config, different/unknown machine -> soft pass with a warning
  (CI runners vs dev boxes would otherwise trade false alarms).

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py           # gate
    PYTHONPATH=src python benchmarks/check_regression.py --quick   # CI
    PYTHONPATH=src python benchmarks/check_regression.py --append  # gate,
        then append the fresh record to the trajectory
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from benchmarks.bench_hotpath import bench_layout  # noqa: E402
from benchmarks.bench_service import bench_service  # noqa: E402
from benchmarks.conftest import (  # noqa: E402
    BENCH_HOTPATH_PATH,
    BENCH_SERVICE_PATH,
    append_bench_record,
    machine_fingerprint,
)

#: record fields that must match for two runs to be comparable
CONFIG_KEYS = ("layout", "scale", "n_queries", "day_length", "seed", "store_layout")

#: values assumed for config fields absent from old records — trajectory
#: entries written before the columnar layout existed were measured on
#: the object-backed stores
CONFIG_DEFAULTS = {
    "store_layout": "object",
    # Service records written before region sharding were single-planner
    # runs: they read as worker_count 0 and never gate a sharded run
    # (and vice versa).  cpu_count keeps multi-worker comparisons on the
    # same class of machine — a 4-worker figure from a 2-core box is not
    # a baseline for a 16-core one.
    "worker_count": 0,
    "cpu_count": None,
}

#: likewise for service-soak records (BENCH_service.json)
SERVICE_CONFIG_KEYS = (
    "layout", "scale", "n_queries", "seed", "overload", "deadline_ms",
    "queue_capacity", "worker_count", "cpu_count",
)


def load_records(path: str = BENCH_HOTPATH_PATH):
    """All trajectory records, oldest first ([] when absent/corrupt)."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return []
    records = data.get("records") if isinstance(data, dict) else None
    return records if isinstance(records, list) else []


def find_baseline(records, fresh: dict, keys=CONFIG_KEYS):
    """The most recent record matching ``fresh``'s configuration.

    Comparisons are like-for-like: a columnar run only gates against a
    columnar baseline (missing fields fall back to
    :data:`CONFIG_DEFAULTS` so pre-columnar records read as "object").
    """
    for record in reversed(records):
        if all(
            record.get(k, CONFIG_DEFAULTS.get(k))
            == fresh.get(k, CONFIG_DEFAULTS.get(k))
            for k in keys
        ):
            return record
    return None


def throughput(record: dict) -> float:
    """Comparable qps of a record: CPU-time based when available.

    CPU-time throughput is immune to frequency throttling and machine
    load, which skew wall-clock qps by tens of percent; old records
    without the CPU figure fall back to wall-clock qps.
    """
    return record.get("qps_cached_cpu") or record.get("qps_cached") or 0.0


def soft_checks(fresh: dict, baseline) -> None:
    """Advisory (non-failing) checks on the cache's effectiveness.

    The hard gate above is about absolute throughput; these warnings
    catch the cache *quietly* stopping to pay its way — a speedup below
    1.0 or a hit rate sliding against the baseline — without failing CI
    on noisy machines.
    """
    speedup = fresh.get("speedup_cache") or 0.0
    if speedup < 1.0:
        print(
            f"WARN speedup_cache={speedup:.3f} < 1.0 — planning with the "
            "cache enabled was slower than without it on this run; the "
            "cache is not paying for its bookkeeping at this scale "
            "(routes are still bit-identical, so this is a perf smell, "
            "not a correctness problem)"
        )
    if baseline is None:
        return
    base_rate = baseline.get("cache_hit_rate")
    rate = fresh.get("cache_hit_rate")
    if base_rate and rate is not None and rate < 0.8 * base_rate:
        print(
            f"WARN cache_hit_rate={rate:.3f} fell more than 20% below the "
            f"baseline {base_rate:.3f} (commit {baseline.get('commit', '?')}) "
            "— certificate coverage regressed"
        )


#: verdict lines of this run, mirrored into ``--summary`` when asked
SUMMARY_LINES: list = []


def emit(line: str, err: bool = False) -> None:
    """Print a verdict line and keep it for the markdown summary."""
    print(line, file=sys.stderr if err else sys.stdout)
    SUMMARY_LINES.append(line)


def write_summary(path: str) -> None:
    """Append this run's verdicts to a markdown summary file."""
    try:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n### performance regression gate\n\n")
            for line in SUMMARY_LINES:
                fh.write(f"- {line}\n")
    except OSError as exc:  # the summary must never fail the gate
        print(f"WARN could not write summary to {path}: {exc}", file=sys.stderr)


def check(
    fresh: dict,
    baseline,
    threshold: float,
    keys=CONFIG_KEYS,
    qps_of=throughput,
    label: str = "cached-planning",
) -> int:
    """Gate one fresh record against its baseline; returns an exit code."""
    config = ", ".join(f"{k}={fresh.get(k)}" for k in keys)
    if baseline is None:
        emit(f"PASS [{label}] (no baseline yet for {config})")
        return 0
    base_qps, new_qps = qps_of(baseline), qps_of(fresh)
    if base_qps <= 0:
        emit(f"PASS [{label}] (baseline for {config} has no usable throughput)")
        return 0
    ratio = new_qps / base_qps
    same_machine = baseline.get("machine") == fresh.get("machine")
    verdict = (
        f"qps {new_qps:.1f} vs baseline {base_qps:.1f} "
        f"({ratio:.2f}x, commit {baseline.get('commit', '?')})"
    )
    if ratio >= 1.0 - threshold:
        emit(f"PASS [{label}] {verdict}")
        return 0
    if not same_machine:
        emit(
            f"SOFT PASS [{label}] {verdict} — baseline machine "
            f"{baseline.get('machine', 'unknown')!r} differs from "
            f"{fresh.get('machine')!r}, not comparable"
        )
        return 0
    emit(
        f"FAIL [{label}] {verdict} — throughput dropped more than "
        f"{threshold:.0%} on the same machine ({fresh.get('machine')})",
        err=True,
    )
    return 1


def service_throughput(record: dict) -> float:
    """Comparable qps of a service-soak record."""
    return record.get("sustained_qps") or 0.0


TIER_LABELS = {"0": "carrying", "1": "charge", "2": "idle"}


def service_shed_verdict(fresh: dict) -> int:
    """Gate the shed rate of one service-soak record; 0 = pass, 1 = fail.

    The flat ``shed_rate`` field stays the verdict input so records from
    checkouts that predate priority tiers gate unchanged.  When the
    record carries the newer ``shed_rate_tiers`` breakdown, each tier's
    rate is reported alongside (most-urgent tier first) — a healthy
    tiered queue sheds from the idle tier long before the carrying tier.
    """
    exit_code = 0
    if fresh.get("shed_rate", 0.0) >= 1.0:
        emit(
            f"FAIL [service] shed rate {fresh['shed_rate']:.0%} — the soak "
            "shed every request at overload "
            f"{fresh.get('overload')}x",
            err=True,
        )
        exit_code = 1
    else:
        emit(
            f"PASS [service] shed rate {fresh.get('shed_rate', 0.0):.1%} at "
            f"{fresh.get('overload')}x overload, p99 "
            f"{fresh.get('service_p99_ms')} ms"
        )
    tiers = fresh.get("shed_rate_tiers") or {}
    if tiers:
        parts = ", ".join(
            f"{TIER_LABELS.get(tier, f'tier {tier}')}={tiers[tier]:.1%}"
            for tier in sorted(tiers)
        )
        emit(f"INFO [service] shed rate by priority tier: {parts}")
    return exit_code


def check_service(args) -> int:
    """Run the service soak and gate it against ``BENCH_service.json``.

    Two conditions: sustained qps must not regress (same rules as the
    hot path — hard gate same-machine, soft pass across machines), and
    the shed rate must stay strictly below 100% at the configured
    overload factor (an admission queue that sheds *everything* is a
    liveness bug, machine speed notwithstanding).
    """
    fresh = bench_service(
        args.layouts.split(",")[0].strip(), args.scale,
        args.service_queries, args.seed, args.overload,
        args.service_deadline_ms, args.service_queue_cap,
    )
    fresh.setdefault("machine", machine_fingerprint())
    exit_code = service_shed_verdict(fresh)
    baseline = find_baseline(
        load_records(BENCH_SERVICE_PATH), fresh, SERVICE_CONFIG_KEYS
    )
    exit_code = max(
        exit_code,
        check(fresh, baseline, args.threshold, SERVICE_CONFIG_KEYS,
              service_throughput, label="service"),
    )
    if args.append:
        append_bench_record(fresh, BENCH_SERVICE_PATH)
    return exit_code


def lint_snapshot(roots: tuple = ("src",)):
    """Structured srplint result for the summary, or ``None``.

    Runs the whole-program analysis in-process and returns the same
    result object ``srplint --json`` emits: per-rule finding counts,
    the pragma inventory (with the mandatory reasons) and the stale
    pragmas the audit caught.  Suppressions are cheap to add and easy
    to forget; surfacing the complete list on every gate run keeps the
    exemption surface reviewed instead of quietly growing.  Returns
    ``None`` when srplint is not on the checkout (pre-lint seeds) so
    old baselines still gate cleanly.
    """
    tools_dir = os.path.join(_ROOT, "tools")
    if tools_dir not in sys.path:
        sys.path.insert(0, tools_dir)
    try:
        from srplint.cli import _DEFAULT_EXCLUDE, _execute
        from srplint.engine import default_rules, iter_python_files
    except ImportError:  # pragma: no cover - only on old checkouts
        return None
    paths = [os.path.join(_ROOT, root) for root in roots]
    files = sorted(iter_python_files(paths, exclude=_DEFAULT_EXCLUDE))
    if not files:
        return None
    return _execute(
        files, default_rules(), True, True, _DEFAULT_EXCLUDE, paths
    )


def pragma_audit(root: str = os.path.join(_ROOT, "src")) -> list:
    """Back-compat view: ``[(path, line, directive, reason), ...]``."""
    result = lint_snapshot((os.path.relpath(root, _ROOT),))
    if result is None:
        return []
    return sorted(
        (os.path.relpath(e["path"], _ROOT), e["line"],
         e["directive"], e["reason"])
        for e in result["pragmas"]
    )


def report_lint(result) -> None:
    """Print the lint snapshot and mirror it into ``$GITHUB_STEP_SUMMARY``."""
    if result is None:
        return
    pragmas = sorted(
        (os.path.relpath(e["path"], _ROOT), e["line"],
         e["directive"], e["reason"])
        for e in result["pragmas"]
    )
    stale = {(os.path.relpath(e["path"], _ROOT), e["line"])
             for e in result.get("unused_pragmas", [])}
    counts = result.get("counts", {})
    rule_cells = ", ".join(
        f"{code}={n}" for code, n in sorted(counts.items())
    ) or "all rules clean"
    print(
        f"srplint snapshot: {result['files_checked']} file(s), "
        f"{len(result['findings'])} finding(s) ({rule_cells}); "
        f"{len(pragmas)} suppression(s)"
    )
    for rel, line, directive, reason in pragmas:
        mark = "  [STALE]" if (rel, line) in stale else ""
        print(f"  {rel}:{line}: {directive} — {reason}{mark}")
    for rel, line in sorted(stale):
        emit(f"WARN stale srplint pragma at {rel}:{line} — the srplint CI "
             "gate fails on it; delete the suppression", err=True)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    with open(summary_path, "a", encoding="utf-8") as fh:
        fh.write(
            f"\n### srplint pragma audit ({len(pragmas)} suppression(s), "
            f"{len(result['findings'])} finding(s))\n\n"
        )
        if counts:
            fh.write("per-rule findings: " + rule_cells + "\n\n")
        if pragmas:
            fh.write("| location | pragma | reason |\n|---|---|---|\n")
            for rel, line, directive, reason in pragmas:
                mark = " **(stale)**" if (rel, line) in stale else ""
                fh.write(f"| `{rel}:{line}` | {directive} "
                         f"| {reason}{mark} |\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--layouts", default="W-1", help="comma-separated, e.g. W-1,W-2")
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--queries", type=int, default=500)
    parser.add_argument("--day", type=int, default=800)
    parser.add_argument("--seed", type=int, default=97)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--store-layout",
        default=None,
        choices=("object", "columnar"),
        help="physical store layout (default: the planner's own default)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="tolerated fractional qps drop before failing (default 0.2)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: tiny stream (still gated against quick baselines)",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="append the fresh records to the trajectory files after gating",
    )
    parser.add_argument(
        "--summary",
        default=None,
        metavar="PATH",
        help="append a markdown gate summary here (e.g. $GITHUB_STEP_SUMMARY)",
    )
    parser.add_argument(
        "--skip-service",
        action="store_true",
        help="skip the service-soak gate (BENCH_service.json)",
    )
    parser.add_argument("--overload", type=float, default=2.0,
                        help="service soak: offered load / measured capacity")
    parser.add_argument("--service-queries", type=int, default=400)
    parser.add_argument("--service-deadline-ms", type=int, default=250)
    parser.add_argument("--service-queue-cap", type=int, default=16)
    args = parser.parse_args(argv)

    if args.quick:
        args.scale = min(args.scale, 0.25)
        args.queries = min(args.queries, 60)
        args.service_queries = min(args.service_queries, 120)
        args.repeats = 1

    report_lint(lint_snapshot())

    records = load_records()
    exit_code = 0
    for layout in args.layouts.split(","):
        layout = layout.strip()
        fresh = bench_layout(
            layout, args.scale, args.queries, args.day, args.seed, args.repeats,
            store_layout=args.store_layout,
        )
        fresh.setdefault("machine", machine_fingerprint())
        if not fresh["routes_identical"]:
            emit(f"FAIL {layout}: cached routes differ from uncached ones", err=True)
            exit_code = 1
        faulted = fresh.get("faulted")
        if faulted is not None and not faulted.get("routes_identical"):
            emit(f"FAIL {layout}: cached routes diverged on the faulted day", err=True)
            exit_code = 1
        joint = fresh.get("faulted_joint")
        if joint is not None:
            if not joint.get("routes_identical"):
                emit(
                    f"FAIL {layout}: cached routes diverged on the "
                    "joint-recovery faulted day",
                    err=True,
                )
                exit_code = 1
            if joint.get("recovery_failures"):
                emit(
                    f"WARN {layout}: joint recovery abandoned "
                    f"{joint['recovery_failures']} task(s) on the benchmark day"
                )
        charging = fresh.get("charging")
        if charging is not None:
            if not charging.get("routes_identical"):
                emit(
                    f"FAIL {layout}: cached routes diverged on the "
                    "battery-constrained charging day",
                    err=True,
                )
                exit_code = 1
            if charging.get("stranded_robots"):
                emit(
                    f"WARN {layout}: {charging['stranded_robots']} robot(s) "
                    "stranded at zero charge on the benchmark charging day"
                )
        baseline = find_baseline(records, fresh)
        soft_checks(fresh, baseline)
        exit_code = max(exit_code, check(fresh, baseline, args.threshold))
        if args.append:
            append_bench_record(fresh)
    if not args.skip_service:
        exit_code = max(exit_code, check_service(args))
    if args.summary:
        write_summary(args.summary)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
