#!/usr/bin/env python
"""Soak benchmark of the online planning service under overload.

The harness answers one question the offline benchmarks cannot: *what
does the service sustain, and how does it degrade, when offered more
load than the planner can plan?*  Procedure:

1. **calibrate** — plan a short closed-loop prefix of the query mix to
   measure the planner's raw capacity (queries per second);
2. **soak** — drive a fresh :class:`~repro.service.core.ServiceCore`
   with a seeded open-loop schedule offered at ``capacity x overload``
   (default 2x) through :func:`repro.service.loadgen.run_soak`;
3. **record** — sustained qps, latency percentiles (p50/p95/p99 from
   the service's own fixed-bucket histograms), and the shed/timeout
   split, appended to ``BENCH_service.json`` with ``--append``.

A healthy admission queue keeps the shed rate strictly below 100% at
any finite overload factor (it sheds the excess, not everything) while
the answered remainder keeps a bounded queue wait — both are gated by
``benchmarks/check_regression.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # print
    PYTHONPATH=src python benchmarks/bench_service.py --quick    # CI
    PYTHONPATH=src python benchmarks/bench_service.py --append   # record
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from benchmarks.conftest import (  # noqa: E402
    BENCH_SERVICE_PATH,
    append_bench_record,
    current_commit,
    machine_fingerprint,
)
from repro.core.planner import SRPPlanner  # noqa: E402
from repro.service import ServiceConfig, ServiceCore  # noqa: E402
from repro.service.loadgen import (  # noqa: E402
    LoadSpec,
    make_schedule,
    run_soak,
    run_soak_concurrent,
)
from repro.warehouse import datasets  # noqa: E402


def calibrate_capacity(warehouse, schedule, n_calibrate: int = 40) -> float:
    """Closed-loop planning rate (queries/s) over a prefix of the mix.

    Uses a throwaway planner so the soak below starts cold, like a
    freshly started service.
    """
    planner = SRPPlanner(warehouse)
    prefix = schedule[: max(1, min(n_calibrate, len(schedule)))]
    t0 = time.perf_counter()
    for item in prefix:
        try:
            planner.plan(item.query)
        except Exception:
            pass  # capacity is about time spent, not success
    elapsed = max(1e-6, time.perf_counter() - t0)
    return len(prefix) / elapsed


def bench_service(
    layout: str,
    scale: float,
    n_queries: int,
    seed: int,
    overload: float,
    deadline_ms: int,
    queue_capacity: int,
    workers: int = 0,
) -> dict:
    """Run one calibrated soak and return the trajectory record.

    ``workers >= 1`` runs the region-sharded planner (that many worker
    processes) with one consumer thread per shard.  Calibration always
    uses a single plain planner, so the offered rate is the same
    like-for-like stream at every point on the ``--workers`` axis —
    scaling shows up as higher sustained qps and a lower shed rate
    against the *same* overload, not as a larger offered load.
    """
    warehouse = datasets.dataset_by_name(layout, scale=scale)
    # The calibration mix reuses the soak's seed so capacity is measured
    # on the same traffic shape the soak offers.
    probe = make_schedule(warehouse, LoadSpec(
        n_queries=min(64, n_queries), rate_qps=1e9, seed=seed,
    ))
    capacity_qps = calibrate_capacity(warehouse, probe)
    offered_qps = capacity_qps * overload

    spec = LoadSpec(
        n_queries=n_queries,
        rate_qps=offered_qps,
        seed=seed,
        deadline_ms=deadline_ms,
    )
    schedule = make_schedule(warehouse, spec)
    config = ServiceConfig(queue_capacity=queue_capacity,
                           default_deadline_ms=deadline_ms)
    router = None
    if workers >= 1:
        from repro.service import ShardedPlanner

        planner = ShardedPlanner(warehouse, workers=workers, mode="process")
        core = ServiceCore(planner, config)
        try:
            results, elapsed_s = run_soak_concurrent(
                core, schedule, shards=planner.shard_count
            )
            router = planner.router_stats()
        finally:
            planner.close()
        worker_count = planner.shard_count
    else:
        core = ServiceCore(SRPPlanner(warehouse), config)
        results, elapsed_s = run_soak(core, schedule)
        worker_count = 0

    counts: dict = {}
    for _, reply in results:
        counts[reply.status.value] = counts.get(reply.status.value, 0) + 1
    answered = counts.get("ok", 0) + counts.get("degraded", 0)
    shed, requests = core.telemetry.shed_rate() or (0, max(1, n_queries))
    service_hist = core.telemetry.histograms.get("service_ms")
    queue_hist = core.telemetry.histograms.get("queue_ms")
    # Per-priority-tier shed rates, present only when the workload tagged
    # requests with tiers (old records stay byte-compatible without it).
    tier_rates: dict = {}
    for name in sorted(core.telemetry.counters):
        if not name.startswith("requests_tier_"):
            continue
        tier = name[len("requests_tier_"):]
        seen = core.telemetry.count(name)
        if seen:
            tier_rates[tier] = round(
                core.telemetry.count(f"shed_tier_{tier}") / seen, 4
            )

    record = {
        # -- configuration (regression-gate identity) ------------------
        "layout": layout,
        "scale": scale,
        "n_queries": n_queries,
        "seed": seed,
        "overload": overload,
        "deadline_ms": deadline_ms,
        "queue_capacity": queue_capacity,
        "worker_count": worker_count,
        "cpu_count": os.cpu_count(),
        # -- measurements ---------------------------------------------
        "capacity_qps": round(capacity_qps, 2),
        "offered_qps": round(offered_qps, 2),
        "sustained_qps": round(answered / max(1e-6, elapsed_s), 2),
        "elapsed_s": round(elapsed_s, 3),
        "answered": answered,
        "status_counts": dict(sorted(counts.items())),
        "shed": shed,
        "shed_rate": round(shed / requests, 4),
        "service_p50_ms": service_hist.percentile(50) if service_hist else 0,
        "service_p95_ms": service_hist.percentile(95) if service_hist else 0,
        "service_p99_ms": service_hist.percentile(99) if service_hist else 0,
        "queue_p95_ms": queue_hist.percentile(95) if queue_hist else 0,
        # -- provenance -----------------------------------------------
        "commit": current_commit(),
        "machine": machine_fingerprint(),
    }
    if tier_rates:
        record["shed_rate_tiers"] = tier_rates
    if router is not None:
        record["router"] = {k: router[k] for k in sorted(router)}
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--layout", default="W-1")
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--queries", type=int, default=400)
    parser.add_argument("--seed", type=int, default=97)
    parser.add_argument("--overload", type=float, default=2.0,
                        help="offered load as a multiple of measured capacity")
    parser.add_argument("--deadline-ms", type=int, default=250)
    parser.add_argument("--queue-cap", type=int, default=16)
    parser.add_argument("--workers", type=int, default=0,
                        help="region-shard the planner across this many "
                             "worker processes (0 = classic single planner)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: small warehouse and short soak")
    parser.add_argument("--append", action="store_true",
                        help="append the record to BENCH_service.json")
    args = parser.parse_args(argv)

    if args.quick:
        args.scale = min(args.scale, 0.25)
        args.queries = min(args.queries, 120)

    record = bench_service(
        args.layout, args.scale, args.queries, args.seed,
        args.overload, args.deadline_ms, args.queue_cap,
        workers=args.workers,
    )
    print(json.dumps(record, indent=2, sort_keys=True))
    if record["shed_rate"] >= 1.0:
        print("FAIL: the service shed every request under overload",
              file=sys.stderr)
        return 1
    if args.append:
        path = append_bench_record(record, BENCH_SERVICE_PATH)
        print(f"appended to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
