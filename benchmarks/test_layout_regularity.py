"""Ablation: how much does layout regularity buy SRP?

The paper's core premise is that warehouse layouts are *regular* —
vertical 2×l rack clusters aligned with long aisles — and that strips
exploit exactly that regularity.  This harness quantifies the premise:
the same floor area with horizontal (l×2) clusters decomposes into far
more strips, and SRP's per-query advantage narrows accordingly.
"""

import random

import pytest

from repro import LayoutSpec, Query, SAPPlanner, SRPPlanner, build_strip_graph, generate_layout
from repro.analysis import format_table


def _spec(orientation):
    return LayoutSpec(
        height=82,
        width=52,
        cluster_length=8,
        n_pickers=6,
        n_robots=6,
        cluster_orientation=orientation,
        seed=5,
    )


def _stream(warehouse, n=60, seed=19, spacing=4):
    rng = random.Random(seed)
    pool = warehouse.free_cells() + warehouse.rack_cells()
    out = []
    for k in range(n):
        o = pool[rng.randrange(len(pool))]
        d = pool[rng.randrange(len(pool))]
        if o != d:
            out.append(Query(o, d, spacing * k, query_id=k))
    return out


@pytest.fixture(scope="module")
def regularity_rows():
    rows = []
    for orientation in ("vertical", "horizontal"):
        warehouse = generate_layout(_spec(orientation), name=orientation)
        graph = build_strip_graph(warehouse)
        stats = graph.reduction_stats()
        queries = _stream(warehouse)
        srp = SRPPlanner(warehouse)
        sap = SAPPlanner(warehouse)
        for q in queries:
            srp.plan(q)
            sap.plan(q)
        rows.append(
            (
                orientation,
                stats["strip_vertices"],
                stats["vertex_ratio"],
                srp.timers.total / srp.timers.queries * 1000,
                sap.timers.total / sap.timers.queries * 1000,
                srp.stats.fallbacks,
            )
        )
    return rows


def test_regularity_ablation(regularity_rows, bench_header, benchmark):
    print()
    print(bench_header)
    table = [
        [
            orient,
            strips,
            f"{ratio:.1%}",
            f"{srp_ms:.2f}",
            f"{sap_ms:.2f}",
            fallbacks,
        ]
        for orient, strips, ratio, srp_ms, sap_ms, fallbacks in regularity_rows
    ]
    print(
        format_table(
            ["clusters", "strips", "V-ratio", "SRP ms/q", "SAP ms/q", "fallbacks"],
            table,
            title="Layout-regularity ablation (same floor area)",
        )
    )
    by_orient = {row[0]: row for row in regularity_rows}
    # Vertical clusters (the paper's premise) aggregate much harder.
    assert by_orient["vertical"][1] < 0.6 * by_orient["horizontal"][1]
    benchmark(lambda: by_orient["vertical"][1])
