"""Ablations beyond the paper's figures.

* Theorem 1 (Sec. VII-A): the analytic E[CR] bound against empirically
  measured per-route competitive ratios — every measured route must sit
  far below the paper's 1.788 worst-case constant at realistic
  congestion.
* Inter-strip search ablation: the admissible heuristic (an
  engineering extension over the paper's plain Dijkstra) must change
  efficiency only, never route quality.
"""

import random

from benchmarks.conftest import BENCH_SCALE
from repro import Query, SRPPlanner, datasets
from repro.analysis import (
    THEOREM1_P_STAR,
    expected_competitive_ratio_bound,
    format_table,
    measure_competitive_ratios,
)


def _query_stream(warehouse, n, seed, spacing):
    rng = random.Random(seed)
    pool = warehouse.free_cells() + warehouse.rack_cells()
    queries = []
    for k in range(n):
        o = pool[rng.randrange(len(pool))]
        d = pool[rng.randrange(len(pool))]
        if o != d:
            queries.append(Query(o, d, spacing * k, query_id=k))
    return queries


def test_theorem1_bound_vs_measured(bench_header, benchmark):
    print()
    print(bench_header)
    rows = [
        [f"{p:.3f}", f"{expected_competitive_ratio_bound(p):.3f}"]
        for p in (0.0, 0.2, 0.4, 0.5, THEOREM1_P_STAR, 0.7)
    ]
    print(
        format_table(
            ["occupancy p", "E[CR] bound"],
            rows,
            title="Theorem 1 — analytic competitive-ratio bound",
        )
    )
    warehouse = datasets.w1(scale=min(BENCH_SCALE, 0.35))
    queries = _query_stream(warehouse, 60, seed=61, spacing=10)
    report = measure_competitive_ratios(warehouse, queries)
    print(
        f"measured on {len(report.ratios)} routes: mean CR {report.mean:.3f}, "
        f"worst {report.worst:.3f}, "
        f"{report.fraction_within(1.788):.0%} within the paper's 1.788"
    )
    # Shape: the theory holds with big margin at this congestion level.
    assert report.mean < 1.25
    assert report.fraction_within(1.788) > 0.9
    benchmark(expected_competitive_ratio_bound, 0.5)


def test_heuristic_ablation(benchmark, bench_header):
    """Plain Dijkstra (paper) vs A*-guided inter-strip search (ours)."""
    warehouse = datasets.w1(scale=min(BENCH_SCALE, 0.35))
    queries = _query_stream(warehouse, 50, seed=62, spacing=12)

    durations = {}
    popped = {}
    for use_heuristic in (True, False):
        planner = SRPPlanner(warehouse, use_heuristic=use_heuristic)
        total = 0
        for q in queries:
            total += planner.plan(q).duration
        durations[use_heuristic] = total
        popped[use_heuristic] = planner.stats.strips_popped
    print()
    print(bench_header)
    print(
        format_table(
            ["search", "sum durations", "strips popped"],
            [
                ["Dijkstra (paper)", durations[False], popped[False]],
                ["A*-guided (ours)", durations[True], popped[True]],
            ],
            title="Inter-strip search ablation",
        )
    )
    # Near-identical effectiveness (time-dependent edge costs make the
    # two searches settle marginally different labels), far less
    # exploration.
    assert abs(durations[True] - durations[False]) <= 0.02 * durations[False]
    assert popped[True] <= popped[False]

    planner = SRPPlanner(warehouse)
    state = {"k": 0}

    def plan_one():
        q = queries[state["k"] % len(queries)]
        state["k"] += 1
        shifted = Query(q.origin, q.destination, q.release_time + 1000 * state["k"])
        return planner.plan(shifted)

    benchmark(plan_one)
