"""Section VII-B — time-complexity scaling: O(HW log HW) vs O((HW)^2).

Runs the full online day pipeline (tasks arriving with the diurnal
pattern, three stages per task) on W-1 replicas of growing size, with
task volume proportional to warehouse area — constant traffic density,
growing extent.  Expected shape: per-query planning time grows for both
planners, SAP's grows faster, and SRP wins at the largest size (the
asymptotic separation the paper proves).
"""

import pytest

from repro import Query, SAPPlanner, SRPPlanner, TaskTraceSpec, datasets, generate_tasks
from repro.analysis import format_table
from repro.simulation import run_day

SIZES = (0.4, 0.7, 1.0)
DATASET = "W-3"  # the largest warehouse carries the clearest signal
DAY_LENGTH = 1500


@pytest.fixture(scope="module")
def scaling_rows(day_runs):
    from benchmarks.conftest import BENCH_TASKS

    rows = []
    for scale in SIZES:
        warehouse = datasets.dataset_by_name(DATASET, scale=scale)
        n_tasks = max(24, round(BENCH_TASKS * scale * scale))
        per_query = {}
        if scale == 1.0:
            # Reuse the session-cached full-scale days (identical
            # workload) so every figure reports consistent numbers.
            for name in ("SRP", "SAP"):
                result = day_runs.get(DATASET, name).result
                per_query[name] = result.tc_seconds / (3 * result.n_tasks)
            n_tasks = BENCH_TASKS
        else:
            tasks = generate_tasks(
                warehouse,
                TaskTraceSpec(n_tasks=n_tasks, day_length=DAY_LENGTH, seed=97),
            )
            for planner_cls in (SRPPlanner, SAPPlanner):
                planner = planner_cls(warehouse)
                result = run_day(warehouse, planner, tasks, measure_memory=False)
                assert result.failed_tasks == 0
                per_query[planner.name] = result.tc_seconds / (3 * n_tasks)
        rows.append((warehouse.n_cells, n_tasks, per_query["SRP"], per_query["SAP"]))
    return rows


def test_scaling_shape(scaling_rows, bench_header, benchmark):
    print()
    print(bench_header)
    table = [
        [hw, n, f"{srp * 1000:.2f}", f"{sap * 1000:.2f}", f"{sap / srp:.2f}x"]
        for hw, n, srp, sap in scaling_rows
    ]
    print(
        format_table(
            ["HW cells", "tasks", "SRP ms/query", "SAP ms/query", "SAP/SRP"],
            table,
            title="Sec. VII-B — per-query planning time vs warehouse size "
            "(constant traffic density)",
        )
    )
    # Shape: SRP is cheaper than SAP at every size and clearly so at
    # the largest.  (The asymptotic O((HW)^2) vs O(HW log HW) gap is a
    # limit statement; at these sizes workload composition and wall
    # clock noise dominate the point-to-point trend, so we assert the
    # per-size ordering rather than monotone ratio growth.)
    for _hw, _n, srp, sap in scaling_rows:
        assert srp < 1.15 * sap  # noise tolerance on shared machines
    last_ratio = scaling_rows[-1][3] / scaling_rows[-1][2]
    assert last_ratio > 1.05
    benchmark(lambda: last_ratio)


def test_benchmark_srp_on_largest(benchmark):
    warehouse = datasets.dataset_by_name(DATASET, scale=0.5)
    planner = SRPPlanner(warehouse)
    free = warehouse.free_cells()
    state = {"k": 0}

    def plan_one():
        k = state["k"]
        state["k"] += 1
        return planner.plan(
            Query(free[(41 * k) % len(free)], free[(97 * k + 13) % len(free)], 25 * k)
        )

    benchmark(plan_one)
