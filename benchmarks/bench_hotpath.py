#!/usr/bin/env python
"""Reproducible hot-path benchmark: the Fig. 16-style online query stream.

Times a deterministic stream of CARP queries planned online (each route
commits its traffic before the next query arrives, exactly like the
paper's evaluation) on the standard Table II layouts, once with the
versioned edge-weight cache enabled and once without, and verifies that
both configurations produce **bit-for-bit identical routes**.  Appends
a machine-readable record to ``BENCH_hotpath.json`` at the repo root so
the repo accumulates a perf trajectory across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full run
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick    # CI smoke

The script also runs unchanged against older checkouts of this repo
(``PYTHONPATH=<old>/src python benchmarks/bench_hotpath.py --no-append``):
planner kwargs unknown to the old code are dropped, which is how
before/after speedups versus the seed are measured.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import List, Optional, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)
try:  # keep an explicitly PYTHONPATH-ed checkout (e.g. the seed) in charge
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro import Query, SRPPlanner, datasets  # noqa: E402
from repro.exceptions import PlanningFailedError  # noqa: E402

from benchmarks.conftest import append_bench_record, current_commit  # noqa: E402


def make_queries(warehouse, n: int, day_length: int, seed: int) -> List[Query]:
    """A deterministic Fig. 16-style stream of ``n`` online queries.

    Mimics warehouse traffic shape: a minority of *hot* cells (pickers,
    popular racks) appear in many queries while the rest of the floor is
    visited uniformly, and release times spread across the day.
    """
    rng = random.Random(seed)
    free = warehouse.free_cells()
    hot = rng.sample(free, max(4, len(free) // 50))
    queries = []
    release = 0
    for k in range(n):
        release += rng.randint(0, max(1, 2 * day_length // max(1, n)))
        pool_o = hot if rng.random() < 0.5 else free
        pool_d = hot if rng.random() < 0.5 else free
        origin = rng.choice(pool_o)
        destination = rng.choice(pool_d)
        if origin == destination:
            destination = rng.choice(free)
        queries.append(Query(origin, destination, release, query_id=k))
    return queries


def make_planner(warehouse, use_cache: bool) -> SRPPlanner:
    """Build an SRP planner, tolerating older code without ``cache``."""
    try:
        return SRPPlanner(warehouse, cache=use_cache)
    except TypeError:  # pre-cache checkout (e.g. the seed)
        return SRPPlanner(warehouse)


def run_stream(
    warehouse, queries: List[Query], use_cache: bool, prune_every: int = 512
) -> Tuple[List[Optional[Tuple[int, tuple]]], float, float, SRPPlanner]:
    """Plan the stream online.

    Returns ``(route fingerprints, wall seconds, cpu seconds, planner)``.
    CPU seconds (:func:`time.process_time`) are reported alongside wall
    time because frequency throttling on busy machines skews wall-clock
    comparisons by tens of percent while CPU time stays stable.
    """
    planner = make_planner(warehouse, use_cache)
    fingerprints: List[Optional[Tuple[int, tuple]]] = []
    last_prune = 0
    started = time.perf_counter()
    cpu_started = time.process_time()
    for query in queries:
        if prune_every > 0 and query.release_time - last_prune >= prune_every:
            planner.prune(query.release_time)
            last_prune = query.release_time
        try:
            route = planner.plan(query)
        except PlanningFailedError:
            fingerprints.append(None)
            continue
        fingerprints.append((route.start_time, tuple(route.grids)))
    cpu_elapsed = time.process_time() - cpu_started
    elapsed = time.perf_counter() - started
    return fingerprints, elapsed, cpu_elapsed, planner


def bench_layout(
    layout: str,
    scale: float,
    n_queries: int,
    day_length: int,
    seed: int,
    repeats: int = 3,
):
    warehouse = datasets.dataset_by_name(layout, scale=scale)
    queries = make_queries(warehouse, n_queries, day_length, seed)

    # Interleave the two configurations and keep the best time of each
    # (timeit-style): CPU frequency drift on busy machines easily skews
    # a single back-to-back pair by tens of percent.
    secs_off = secs_on = cpu_off = cpu_on = None
    routes_off = routes_on = None
    planner = None
    for _ in range(max(1, repeats)):
        routes_off, elapsed, cpu, _ = run_stream(warehouse, queries, use_cache=False)
        if secs_off is None or elapsed < secs_off:
            secs_off = elapsed
        if cpu_off is None or cpu < cpu_off:
            cpu_off = cpu
        routes_on, elapsed, cpu, planner = run_stream(warehouse, queries, use_cache=True)
        if secs_on is None or elapsed < secs_on:
            secs_on = elapsed
        if cpu_on is None or cpu < cpu_on:
            cpu_on = cpu

    identical = routes_off == routes_on
    stats = planner.stats
    hit_rate = getattr(stats, "cache_hit_rate", 0.0)
    record = {
        "commit": current_commit(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "layout": layout,
        "scale": scale,
        "n_queries": len(queries),
        "day_length": day_length,
        "seed": seed,
        "repeats": max(1, repeats),
        "failed_queries": sum(r is None for r in routes_on),
        "qps_cached": len(queries) / secs_on,
        "qps_uncached": len(queries) / secs_off,
        "qps_cached_cpu": len(queries) / cpu_on if cpu_on else 0.0,
        "qps_uncached_cpu": len(queries) / cpu_off if cpu_off else 0.0,
        "speedup_cache": secs_off / secs_on if secs_on else 0.0,
        "cache_hit_rate": hit_rate,
        "cache_hits": getattr(stats, "cache_hits", 0),
        "cache_negative_hits": getattr(stats, "cache_negative_hits", 0),
        "cache_misses": getattr(stats, "cache_misses", 0),
        "fallbacks": stats.fallbacks,
        "routes_identical": identical,
    }
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--layouts", default="W-1", help="comma-separated, e.g. W-1,W-2")
    parser.add_argument("--scale", type=float, default=0.4, help="layout scale factor")
    parser.add_argument("--queries", type=int, default=500, help="stream length")
    parser.add_argument("--day", type=int, default=800, help="release-time span (s)")
    parser.add_argument("--seed", type=int, default=97)
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: tiny stream, no trajectory append",
    )
    parser.add_argument(
        "--no-append",
        action="store_true",
        help="do not append to BENCH_hotpath.json",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.scale = min(args.scale, 0.25)
        args.queries = min(args.queries, 60)
        args.repeats = 1
        args.no_append = True

    ok = True
    for layout in args.layouts.split(","):
        layout = layout.strip()
        record = bench_layout(
            layout, args.scale, args.queries, args.day, args.seed, args.repeats
        )
        print(json.dumps(record, indent=2, sort_keys=True))
        if not record["routes_identical"]:
            print(f"ERROR: {layout}: cached routes differ from uncached ones", file=sys.stderr)
            ok = False
        if not args.no_append:
            path = append_bench_record(record)
            print(f"appended record to {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
