#!/usr/bin/env python
"""Reproducible hot-path benchmark: the Fig. 16-style online query stream.

Times a deterministic stream of CARP queries planned online (each route
commits its traffic before the next query arrives, exactly like the
paper's evaluation) on the standard Table II layouts, once with the
versioned edge-weight cache enabled and once without, and verifies that
both configurations produce **bit-for-bit identical routes**.  Appends
a machine-readable record to ``BENCH_hotpath.json`` at the repo root so
the repo accumulates a perf trajectory across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full run
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick    # CI smoke

The script also runs unchanged against older checkouts of this repo
(``PYTHONPATH=<old>/src python benchmarks/bench_hotpath.py --no-append``):
planner kwargs unknown to the old code are dropped, which is how
before/after speedups versus the seed are measured.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import List, Optional, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)
try:  # keep an explicitly PYTHONPATH-ed checkout (e.g. the seed) in charge
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro import Query, SRPPlanner, datasets  # noqa: E402
from repro.exceptions import PlanningFailedError  # noqa: E402

try:  # faulted-day leg; absent on pre-fault checkouts (PR <= 2)
    from repro.simulation import FaultPlan, Simulation  # noqa: E402
    from repro.warehouse import TaskTraceSpec, generate_tasks  # noqa: E402
except ImportError:  # pragma: no cover - only on old checkouts
    FaultPlan = Simulation = TaskTraceSpec = generate_tasks = None

try:  # charging leg; absent on pre-battery checkouts (PR <= 9)
    from repro.simulation import BatterySpec, place_stations  # noqa: E402
except ImportError:  # pragma: no cover - only on old checkouts
    BatterySpec = place_stations = None

from benchmarks.conftest import append_bench_record, current_commit  # noqa: E402


def _counter(obj, name: str) -> int:
    """Read an instrumentation counter, tolerating older checkouts."""
    return int(getattr(obj, name, 0) or 0)


def cache_counters(planner: SRPPlanner) -> dict:
    """The per-layer cache counters of one planned stream/day.

    All reads go through ``getattr`` so the benchmark still runs against
    checkouts that predate a given cache layer (the counter simply
    reports zero there).
    """
    stats = planner.stats
    counters = {
        "cache_hit_rate": getattr(stats, "cache_hit_rate", 0.0),
        "cache_hits": _counter(stats, "cache_hits"),
        "cache_negative_hits": _counter(stats, "cache_negative_hits"),
        "cache_misses": _counter(stats, "cache_misses"),
        "window_hits": _counter(stats, "window_hits"),
        "shift_hits": _counter(stats, "shift_hits"),
        "band_skips": _counter(stats, "band_skips"),
        "crossing_hits": _counter(stats, "crossing_hits"),
        "crossing_misses": _counter(stats, "crossing_misses"),
    }
    maps = getattr(planner, "distance_maps", None)
    if maps is not None:
        counters["distance_maps"] = {
            "hits": _counter(maps, "hits"),
            "misses": _counter(maps, "misses"),
            "evictions": _counter(maps, "evictions"),
            "field_builds": _counter(maps, "field_builds"),
        }
    return counters


def make_queries(warehouse, n: int, day_length: int, seed: int) -> List[Query]:
    """A deterministic Fig. 16-style stream of ``n`` online queries.

    Mimics warehouse traffic shape: a minority of *hot* cells (pickers,
    popular racks) appear in many queries while the rest of the floor is
    visited uniformly, and release times spread across the day.
    """
    rng = random.Random(seed)
    free = warehouse.free_cells()
    hot = rng.sample(free, max(4, len(free) // 50))
    queries = []
    release = 0
    for k in range(n):
        release += rng.randint(0, max(1, 2 * day_length // max(1, n)))
        pool_o = hot if rng.random() < 0.5 else free
        pool_d = hot if rng.random() < 0.5 else free
        origin = rng.choice(pool_o)
        destination = rng.choice(pool_d)
        if origin == destination:
            destination = rng.choice(free)
        queries.append(Query(origin, destination, release, query_id=k))
    return queries


def make_planner(
    warehouse, use_cache: bool, store_layout: Optional[str] = None
) -> SRPPlanner:
    """Build an SRP planner, tolerating older code without newer kwargs."""
    kwargs = {"cache": use_cache}
    if store_layout is not None:
        kwargs["store_layout"] = store_layout
    while True:
        try:
            return SRPPlanner(warehouse, **kwargs)
        except TypeError:  # older checkout without this kwarg
            if "store_layout" in kwargs:
                del kwargs["store_layout"]
            elif "cache" in kwargs:  # pre-cache checkout (e.g. the seed)
                del kwargs["cache"]
            else:
                raise


def time_breakdown(planner: SRPPlanner) -> dict:
    """Per-layer seconds of one planned stream (zeros on old checkouts).

    ``store_scan`` is the intra-strip share that did real store work:
    total intra time minus the time spent returning plan-cache hits.
    """
    stats = planner.stats
    intra = float(getattr(stats, "intra_time", 0.0))
    cache_t = float(getattr(stats, "cache_time", 0.0))
    return {
        "store_scan_s": max(0.0, intra - cache_t),
        "cache_s": cache_t,
        "dijkstra_s": float(getattr(stats, "inter_time", 0.0)),
        "conversion_s": float(getattr(stats, "conversion_time", 0.0)),
    }


def memory_footprint(planner: SRPPlanner) -> dict:
    """Planning-state bytes, overall and per strip with committed traffic."""
    try:
        from repro.analysis.sizeof import deep_sizeof
    except ImportError:  # pragma: no cover - only on old checkouts
        return {}
    stores = getattr(planner, "stores", None)
    if stores is None or not hasattr(planner, "planning_state"):
        return {}
    active = sum(1 for _ in stores.active_items())
    total = deep_sizeof(planner.planning_state())
    return {
        "state_bytes": total,
        "active_strips": active,
        "bytes_per_strip": total // max(1, active),
    }


def run_stream(
    warehouse,
    queries: List[Query],
    use_cache: bool,
    prune_every: int = 512,
    store_layout: Optional[str] = None,
) -> Tuple[List[Optional[Tuple[int, tuple]]], float, float, SRPPlanner]:
    """Plan the stream online.

    Returns ``(route fingerprints, wall seconds, cpu seconds, planner)``.
    CPU seconds (:func:`time.process_time`) are reported alongside wall
    time because frequency throttling on busy machines skews wall-clock
    comparisons by tens of percent while CPU time stays stable.
    """
    planner = make_planner(warehouse, use_cache, store_layout)
    fingerprints: List[Optional[Tuple[int, tuple]]] = []
    last_prune = 0
    started = time.perf_counter()
    cpu_started = time.process_time()
    for query in queries:
        if prune_every > 0 and query.release_time - last_prune >= prune_every:
            planner.prune(query.release_time)
            last_prune = query.release_time
        try:
            route = planner.plan(query)
        except PlanningFailedError:
            fingerprints.append(None)
            continue
        fingerprints.append((route.start_time, tuple(route.grids)))
    cpu_elapsed = time.process_time() - cpu_started
    elapsed = time.perf_counter() - started
    return fingerprints, elapsed, cpu_elapsed, planner


def supports_joint_recovery() -> bool:
    """True when this checkout has the joint conflict-cluster recovery."""
    try:
        import inspect

        return "recovery" in inspect.signature(Simulation.__init__).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic old checkout
        return False


def run_faulted_day(
    warehouse, tasks, faults, use_cache: bool,
    store_layout: Optional[str] = None, recovery: str = "serial",
):
    """One disturbed simulated day; returns route fingerprints + timings."""
    planner = make_planner(warehouse, use_cache, store_layout)
    kwargs = dict(validate=False, measure_memory=False, faults=faults)
    if recovery != "serial":
        kwargs["recovery"] = recovery
    sim = Simulation(warehouse, planner, tasks, **kwargs)
    started = time.perf_counter()
    cpu_started = time.process_time()
    result = sim.run()
    cpu_elapsed = time.process_time() - cpu_started
    elapsed = time.perf_counter() - started
    routes = {q: (r.start_time, tuple(r.grids)) for q, r in sim._routes.items()}
    return routes, elapsed, cpu_elapsed, planner, result


def bench_faulted(warehouse, n_tasks: int, day_length: int, seed: int,
                  repeats: int = 1,
                  store_layout: Optional[str] = None,
                  recovery: str = "serial") -> Optional[dict]:
    """Cache-on vs cache-off over a seeded faulted day (PR 3 recovery path).

    The interesting gate here is bit-identity *across decommit/replan*:
    every certificate in the plan cache is version-checked, so the
    cached day must reproduce the uncached routes exactly even when
    stalls and blockages force mid-route decommits.  With
    ``recovery="joint"`` the same day runs through the conflict-cluster
    recovery (and a fault plan including slowdowns/closures), adding the
    cluster counters to the record.
    """
    if Simulation is None or FaultPlan is None:
        return None  # old checkout without the fault subsystem
    if recovery != "serial" and not supports_joint_recovery():
        return None  # old checkout without the joint recovery subsystem
    tasks = generate_tasks(
        warehouse, TaskTraceSpec(n_tasks=n_tasks, day_length=day_length, seed=seed)
    )
    fault_kwargs = dict(
        n_robots=len(warehouse.robot_homes),
        day_length=day_length,
        n_stalls=max(2, n_tasks // 10),
        n_blockages=max(1, n_tasks // 20),
        seed=seed + 1,
    )
    if recovery != "serial":
        # The joint leg also exercises the richer disturbance physics.
        fault_kwargs["n_slowdowns"] = max(1, n_tasks // 20)
        fault_kwargs["n_closures"] = max(1, n_tasks // 40)
    faults = FaultPlan.generate(warehouse, **fault_kwargs)
    secs_off = secs_on = cpu_off = cpu_on = None
    routes_off = routes_on = None
    planner = result = None
    for _ in range(max(1, repeats)):
        routes_off, elapsed, cpu, _, _ = run_faulted_day(
            warehouse, tasks, faults, use_cache=False,
            store_layout=store_layout, recovery=recovery,
        )
        if secs_off is None or elapsed < secs_off:
            secs_off = elapsed
        if cpu_off is None or cpu < cpu_off:
            cpu_off = cpu
        routes_on, elapsed, cpu, planner, result = run_faulted_day(
            warehouse, tasks, faults, use_cache=True,
            store_layout=store_layout, recovery=recovery,
        )
        if secs_on is None or elapsed < secs_on:
            secs_on = elapsed
        if cpu_on is None or cpu < cpu_on:
            cpu_on = cpu
    sub = {
        "n_tasks": n_tasks,
        "n_stalls": len(faults.stalls),
        "n_blockages": len(faults.blockages),
        "n_slowdowns": len(getattr(faults, "slowdowns", ())),
        "n_closures": len(getattr(faults, "closures", ())),
        "fault_seed": seed + 1,
        "recovery": getattr(result, "recovery", "serial"),
        "speedup_cache": secs_off / secs_on if secs_on else 0.0,
        "speedup_cache_cpu": cpu_off / cpu_on if cpu_on else 0.0,
        "faults_injected": result.faults_injected,
        "replans": result.replans,
        "recovery_failures": result.recovery_failures,
        "replan_attempts": _counter(result, "replan_attempts"),
        "decommitted_segments": _counter(result, "decommitted_segments"),
        "recovery_clusters": _counter(result, "recovery_clusters"),
        "max_cluster_size": _counter(result, "max_cluster_size"),
        "cluster_robots": _counter(result, "cluster_robots"),
        "recovery_cbs": _counter(result, "recovery_cbs"),
        "recovery_serial": _counter(result, "recovery_serial"),
        "slowdown_stretches": _counter(result, "slowdown_stretches"),
        "closure_cells": _counter(result, "closure_cells"),
        "routes_identical": routes_off == routes_on,
    }
    sub.update(cache_counters(planner))
    return sub


def run_charging_day(warehouse, tasks, battery, stations, use_cache: bool,
                     store_layout: Optional[str] = None):
    """One battery-constrained day; returns route fingerprints + timings."""
    planner = make_planner(warehouse, use_cache, store_layout)
    sim = Simulation(
        warehouse, planner, tasks, validate=False, measure_memory=False,
        battery=battery, stations=stations,
    )
    started = time.perf_counter()
    cpu_started = time.process_time()
    result = sim.run()
    cpu_elapsed = time.process_time() - cpu_started
    elapsed = time.perf_counter() - started
    routes = {q: (r.start_time, tuple(r.grids)) for q, r in sim._routes.items()}
    return routes, elapsed, cpu_elapsed, planner, result


def bench_charging(warehouse, n_tasks: int, day_length: int, seed: int,
                   store_layout: Optional[str] = None) -> Optional[dict]:
    """Cache-on vs cache-off over a seeded battery-constrained day.

    The battery axis closes the loop between routes and the planner's
    inputs (routes drain batteries, low batteries trigger charge-trip
    queries through the same planner), so the bit-identity gate here
    covers the reservation scheduler and the charge-trip legs too.
    Stranded robots are reported so the regression gate can flag a
    provisioning change; the day is sized to keep them at zero.
    """
    if Simulation is None or BatterySpec is None:
        return None  # old checkout without the battery subsystem
    tasks = generate_tasks(
        warehouse, TaskTraceSpec(n_tasks=n_tasks, day_length=day_length, seed=seed)
    )
    # Half-capacity low threshold: a robot taking a three-stage task
    # just above it must still finish without stranding.
    capacity = 1200
    battery = BatterySpec(
        capacity=capacity,
        low_threshold=capacity // 2,
        critical_threshold=capacity // 5,
    )
    stations = place_stations(warehouse, 2)
    routes_off, secs_off, cpu_off, _, _ = run_charging_day(
        warehouse, tasks, battery, stations, use_cache=False,
        store_layout=store_layout,
    )
    routes_on, secs_on, cpu_on, planner, result = run_charging_day(
        warehouse, tasks, battery, stations, use_cache=True,
        store_layout=store_layout,
    )
    sub = {
        "n_tasks": n_tasks,
        "battery_capacity": capacity,
        "n_stations": len(stations),
        "speedup_cache": secs_off / secs_on if secs_on else 0.0,
        "speedup_cache_cpu": cpu_off / cpu_on if cpu_on else 0.0,
        "charge_trips": _counter(result, "charge_trips"),
        "charge_aborts": _counter(result, "charge_aborts"),
        "charge_queue_wait": _counter(result, "charge_queue_wait"),
        "stranded_robots": _counter(result, "stranded_robots"),
        "energy_drained": _counter(result, "energy_drained"),
        "completed_tasks": result.completed_tasks,
        "failed_tasks": result.failed_tasks,
        "routes_identical": routes_off == routes_on,
    }
    sub.update(cache_counters(planner))
    return sub


def bench_layout(
    layout: str,
    scale: float,
    n_queries: int,
    day_length: int,
    seed: int,
    repeats: int = 3,
    store_layout: Optional[str] = None,
):
    warehouse = datasets.dataset_by_name(layout, scale=scale)
    queries = make_queries(warehouse, n_queries, day_length, seed)

    # Interleave the two configurations and keep the best time of each
    # (timeit-style): CPU frequency drift on busy machines easily skews
    # a single back-to-back pair by tens of percent.
    secs_off = secs_on = cpu_off = cpu_on = None
    routes_off = routes_on = None
    planner = planner_off = None
    for _ in range(max(1, repeats)):
        routes_off, elapsed, cpu, planner_off = run_stream(
            warehouse, queries, use_cache=False, store_layout=store_layout
        )
        if secs_off is None or elapsed < secs_off:
            secs_off = elapsed
        if cpu_off is None or cpu < cpu_off:
            cpu_off = cpu
        routes_on, elapsed, cpu, planner = run_stream(
            warehouse, queries, use_cache=True, store_layout=store_layout
        )
        if secs_on is None or elapsed < secs_on:
            secs_on = elapsed
        if cpu_on is None or cpu < cpu_on:
            cpu_on = cpu

    identical = routes_off == routes_on
    record = {
        "commit": current_commit(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "layout": layout,
        "scale": scale,
        "store_layout": getattr(planner, "store_layout", "object"),
        "n_queries": len(queries),
        "day_length": day_length,
        "seed": seed,
        "repeats": max(1, repeats),
        "failed_queries": sum(r is None for r in routes_on),
        "qps_cached": len(queries) / secs_on,
        "qps_uncached": len(queries) / secs_off,
        "qps_cached_cpu": len(queries) / cpu_on if cpu_on else 0.0,
        "qps_uncached_cpu": len(queries) / cpu_off if cpu_off else 0.0,
        "speedup_cache": secs_off / secs_on if secs_on else 0.0,
        "speedup_cache_cpu": cpu_off / cpu_on if cpu_on else 0.0,
        "fallbacks": planner.stats.fallbacks,
        "routes_identical": identical,
    }
    record.update(cache_counters(planner))
    # Per-layer seconds of the *last* repeat each (fresh planner per
    # repeat, so these are one stream's worth, not best-of-N).
    record["time_breakdown_cached"] = time_breakdown(planner)
    record["time_breakdown_uncached"] = time_breakdown(planner_off)
    record.update(memory_footprint(planner))

    # The disturbed-day leg exercises the decommit/replan recovery path:
    # cached certificates must survive (or invalidate exactly) across
    # mid-route decommits.  Sized well below the stream so the whole
    # benchmark stays minutes, not hours.
    faulted = bench_faulted(
        warehouse,
        n_tasks=max(20, n_queries // 5),
        day_length=day_length,
        seed=seed,
        repeats=1,
        store_layout=store_layout,
    )
    if faulted is not None:
        record["faulted"] = faulted
    # The same disturbed day once more through the joint conflict-cluster
    # recovery, with slowdown and aisle-closure faults in the mix.
    faulted_joint = bench_faulted(
        warehouse,
        n_tasks=max(20, n_queries // 5),
        day_length=day_length,
        seed=seed,
        repeats=1,
        store_layout=store_layout,
        recovery="joint",
    )
    if faulted_joint is not None:
        record["faulted_joint"] = faulted_joint
    # The battery-constrained day: charge trips planned through the
    # same planner must keep cached/uncached routes bit-identical.
    charging = bench_charging(
        warehouse,
        n_tasks=max(20, n_queries // 5),
        day_length=day_length,
        seed=seed,
        store_layout=store_layout,
    )
    if charging is not None:
        record["charging"] = charging
    return record


def summary_markdown(records: List[dict]) -> str:
    """A GitHub-flavoured markdown digest for CI job summaries."""
    lines = [
        "### Hot-path benchmark",
        "",
        "| layout | store layout | speedup (cache) | hit rate | window hits |"
        " shift hits | crossing hits | dmap hits/misses | bytes/strip |"
        " routes identical | faulted day | joint recovery | charging day |",
        "|---|---|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for rec in records:
        dmaps = rec.get("distance_maps") or {}
        faulted = rec.get("faulted")
        if faulted is None:
            faulted_cell = "skipped"
        else:
            faulted_cell = "{} ({} replans, {:.2f}x)".format(
                "identical" if faulted["routes_identical"] else "**DIVERGED**",
                faulted["replans"],
                faulted["speedup_cache"],
            )
        joint = rec.get("faulted_joint")
        if joint is None:
            joint_cell = "skipped"
        else:
            joint_cell = "{} ({} clusters, {} attempts)".format(
                "identical" if joint["routes_identical"] else "**DIVERGED**",
                joint.get("recovery_clusters", 0),
                joint.get("replan_attempts", 0),
            )
        charging = rec.get("charging")
        if charging is None:
            charging_cell = "skipped"
        else:
            charging_cell = "{} ({} trips, {} stranded)".format(
                "identical" if charging["routes_identical"] else "**DIVERGED**",
                charging.get("charge_trips", 0),
                charging.get("stranded_robots", 0),
            )
        lines.append(
            "| {layout} ({scale}) | {store_layout} | {speedup:.3f}x | {rate:.1%} |"
            " {window} | {shift} | {crossing} | {dh}/{dm} | {bps} |"
            " {identical} | {faulted} | {joint} | {charging} |".format(
                layout=rec["layout"],
                scale=rec["scale"],
                store_layout=rec.get("store_layout", "object"),
                bps=rec.get("bytes_per_strip", "?"),
                speedup=rec["speedup_cache"],
                rate=rec["cache_hit_rate"],
                window=rec["window_hits"],
                shift=rec["shift_hits"],
                crossing=rec["crossing_hits"],
                dh=dmaps.get("hits", 0),
                dm=dmaps.get("misses", 0),
                identical="yes" if rec["routes_identical"] else "**NO**",
                faulted=faulted_cell,
                joint=joint_cell,
                charging=charging_cell,
            )
        )
    lines.append("")
    lines.append(
        "speedup < 1.0 means the cache cost more than it saved on this "
        "machine/scale; see docs/performance.md for how to read these numbers."
    )
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--layouts", default="W-1", help="comma-separated, e.g. W-1,W-2")
    parser.add_argument("--scale", type=float, default=0.4, help="layout scale factor")
    parser.add_argument("--queries", type=int, default=500, help="stream length")
    parser.add_argument("--day", type=int, default=800, help="release-time span (s)")
    parser.add_argument("--seed", type=int, default=97)
    parser.add_argument(
        "--store-layout",
        default=None,
        choices=("object", "columnar"),
        help="physical store layout (default: the planner's own default)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="best-of-N timing repeats (early iterations run cold — page "
        "cache, allocator warm-up — so best-of-3 often hasn't converged)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: tiny stream, no trajectory append",
    )
    parser.add_argument(
        "--no-append",
        action="store_true",
        help="do not append to BENCH_hotpath.json",
    )
    parser.add_argument(
        "--summary",
        metavar="PATH",
        default=None,
        help="also append a markdown digest to PATH "
        "(e.g. \"$GITHUB_STEP_SUMMARY\" in CI)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.scale = min(args.scale, 0.25)
        args.queries = min(args.queries, 60)
        args.repeats = 1
        args.no_append = True

    ok = True
    records = []
    for layout in args.layouts.split(","):
        layout = layout.strip()
        record = bench_layout(
            layout, args.scale, args.queries, args.day, args.seed, args.repeats,
            store_layout=args.store_layout,
        )
        records.append(record)
        print(json.dumps(record, indent=2, sort_keys=True))
        if not record["routes_identical"]:
            print(f"ERROR: {layout}: cached routes differ from uncached ones", file=sys.stderr)
            ok = False
        faulted = record.get("faulted")
        if faulted is not None and not faulted["routes_identical"]:
            print(
                f"ERROR: {layout}: cached routes diverged on the faulted day",
                file=sys.stderr,
            )
            ok = False
        joint = record.get("faulted_joint")
        if joint is not None and not joint["routes_identical"]:
            print(
                f"ERROR: {layout}: cached routes diverged on the "
                "joint-recovery faulted day",
                file=sys.stderr,
            )
            ok = False
        charging = record.get("charging")
        if charging is not None and not charging["routes_identical"]:
            print(
                f"ERROR: {layout}: cached routes diverged on the "
                "battery-constrained day",
                file=sys.stderr,
            )
            ok = False
        if not args.no_append:
            path = append_bench_record(record)
            print(f"appended record to {path}")
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(summary_markdown(records))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
