"""Table III — effectiveness comparison (OG / makespan).

One scaled day per planner per warehouse on identical task traces.
Expected shape (paper): every algorithm lands within a few percent of
the others; SRP is competitive everywhere and never catastrophically
worse, despite being drastically faster.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, DATASETS, PLANNERS
from repro import Query, SRPPlanner, datasets
from repro.analysis import format_table


@pytest.fixture(scope="module")
def og_matrix(day_runs):
    matrix = {}
    for dataset in DATASETS:
        for planner in PLANNERS:
            matrix[(dataset, planner)] = day_runs.get(dataset, planner).result
    return matrix


def test_table3_effectiveness(og_matrix, bench_header, benchmark):
    print()
    print(bench_header)
    names = list(PLANNERS)
    rows = []
    for dataset in DATASETS:
        rows.append([dataset] + [og_matrix[(dataset, p)].og for p in names])
    print(
        format_table(
            ["name"] + names,
            rows,
            title="Table III — effectiveness comparison (OG = makespan, seconds)",
        )
    )
    for dataset in DATASETS:
        ogs = {p: og_matrix[(dataset, p)].og for p in names}
        # Shape: SRP within 15% of the best planner on every warehouse
        # (the paper's largest gap is ~4 minutes over a full day).
        assert ogs["SRP"] <= 1.15 * min(ogs.values())
        # Everyone completes the whole day.
        for p in names:
            assert og_matrix[(dataset, p)].failed_tasks == 0
    # Keep the table visible under --benchmark-only.
    benchmark(lambda: max(og_matrix[(d, "SRP")].og for d in DATASETS))


def test_benchmark_srp_single_query(benchmark):
    """Per-query SRP planning latency on a scaled W-2 (the headline op)."""
    warehouse = datasets.w2(scale=BENCH_SCALE)
    planner = SRPPlanner(warehouse)
    free = warehouse.free_cells()
    state = {"k": 0}

    def plan_one():
        k = state["k"]
        state["k"] += 1
        origin = free[(37 * k) % len(free)]
        dest = free[(113 * k + 11) % len(free)]
        return planner.plan(Query(origin, dest, 40 * k, query_id=k))

    route = benchmark(plan_one)
    assert route.is_unit_speed()
