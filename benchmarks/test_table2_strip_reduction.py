"""Table II — dataset summary and grid-to-strip reduction.

Prints the full-scale replica rows next to the paper's published
numbers and benchmarks strip graph construction (Algorithm 1) itself.

Paper reference values (Table II):

    name  HxW       racks  robots pickers grid-V  grid-E  strip-V strip-E
    W-1   233x104   4896   408    68      24232   48464   3997    11272
    W-2   240x206   9792   952    136     49440   98880   8230    23257
    W-3   292x278   15088  2208   184     81176   162352  13526   38411
"""

import pytest

from repro import build_strip_graph, datasets
from repro.analysis import format_table
from repro.warehouse.datasets import DATASET_SUMMARY

PAPER_STRIP_COUNTS = {
    "W-1": (3997, 11272),
    "W-2": (8230, 23257),
    "W-3": (13526, 38411),
}


@pytest.fixture(scope="module")
def reduction_rows():
    rows = []
    for name in ("W-1", "W-2", "W-3"):
        warehouse = datasets.dataset_by_name(name)  # full scale
        graph = build_strip_graph(warehouse)
        stats = graph.reduction_stats()
        paper_v, paper_e = PAPER_STRIP_COUNTS[name]
        rows.append(
            [
                name,
                f"{warehouse.height}x{warehouse.width}",
                warehouse.n_racks,
                len(warehouse.robot_homes),
                len(warehouse.pickers),
                stats["grid_vertices"],
                stats["grid_edges"],
                stats["strip_vertices"],
                stats["strip_edges"],
                f"{stats['vertex_ratio']:.1%}",
                f"{paper_v} / {paper_e}",
            ]
        )
    return rows


def test_table2_rows(reduction_rows, bench_header, benchmark):
    print()
    print(bench_header)
    print(
        format_table(
            [
                "name",
                "HxW",
                "#rack",
                "#robot",
                "#picker",
                "grid-V",
                "grid-E",
                "strip-V",
                "strip-E",
                "V-ratio",
                "paper strip V/E",
            ],
            reduction_rows,
            title="Table II — datasets and strip-based extraction (full scale)",
        )
    )
    # Shape assertions: dimensions and entity counts match Table II
    # exactly; strip reduction is at least as strong as the paper's.
    for row, name in zip(reduction_rows, ("W-1", "W-2", "W-3")):
        info = DATASET_SUMMARY[name]
        assert row[1] == f"{info.height}x{info.width}"
        assert row[2] == info.n_racks
        assert row[7] < 0.25 * row[5], "strips must reduce vertices >4x"
    # Representative micro-op so the row stays visible under
    # --benchmark-only: one grid->strip lookup on the largest replica.
    graph = build_strip_graph(datasets.w3(scale=0.3))
    benchmark(graph.locate, (10, 10))


def test_benchmark_strip_graph_construction(benchmark):
    """Time Algorithm 1 on the full-scale W-1 replica."""
    warehouse = datasets.w1()
    graph = benchmark(build_strip_graph, warehouse)
    assert graph.n_vertices > 0
