"""Figure 22 — the need for slope-based indexing.

(a) breakdown of SRP's planning time into inter-strip, intra-strip and
    representation-conversion components, *without* the slope index:
    intra-strip collision detection dominates;
(b) intra-strip time with the naive ordered-set store (Sec. V-B) versus
    the slope-based index (Sec. V-D): the paper reports the index
    cutting intra-strip time by about half on congested traces.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_TASKS
from repro import SRPPlanner, TaskTraceSpec, datasets, generate_tasks, run_day
from repro.analysis import format_table


def _run_day_with(warehouse, tasks, use_slope_index):
    planner = SRPPlanner(warehouse, use_slope_index=use_slope_index)
    result = run_day(warehouse, planner, tasks, measure_memory=False)
    assert result.failed_tasks == 0
    return planner, result


@pytest.fixture(scope="module")
def fig22_runs():
    warehouse = datasets.w1(scale=BENCH_SCALE)
    # A denser trace than the other figures: indexing matters most when
    # strips hold many concurrent segments.
    tasks = generate_tasks(
        warehouse,
        TaskTraceSpec(n_tasks=max(120, int(1.5 * BENCH_TASKS)), day_length=600, seed=31),
    )
    naive = _run_day_with(warehouse, tasks, use_slope_index=False)
    indexed = _run_day_with(warehouse, tasks, use_slope_index=True)
    return naive, indexed


def test_fig22a_breakdown(fig22_runs, bench_header, benchmark):
    naive_planner, _result = fig22_runs[0]
    stats = naive_planner.stats
    total = stats.total_time
    print()
    print(bench_header)
    print(
        format_table(
            ["component", "seconds", "share"],
            [
                ["inter-strip", f"{stats.inter_time:.4f}", f"{stats.inter_time / total:.0%}"],
                ["intra-strip", f"{stats.intra_time:.4f}", f"{stats.intra_time / total:.0%}"],
                ["conversion", f"{stats.conversion_time:.4f}", f"{stats.conversion_time / total:.0%}"],
            ],
            title="Fig. 22(a) — SRP TC breakdown without slope indexing",
        )
    )
    # Shape: collision detection (intra-strip) is a major component and
    # conversion is negligible.  Note: the paper reports intra-strip
    # *dominating*; our implementation's lazy edge evaluation and O(1)
    # wait jumps shrink it below the inter-strip bookkeeping at this
    # scale — see EXPERIMENTS.md for the discussion.
    assert stats.intra_time > 5 * stats.conversion_time
    assert stats.intra_time > 0.2 * total
    benchmark(lambda: stats.total_time)


def test_fig22b_indexing_speedup(fig22_runs, bench_header, benchmark):
    (naive_planner, naive_result), (indexed_planner, indexed_result) = fig22_runs
    print()
    print(bench_header)
    print(
        format_table(
            ["store", "intra-strip s", "total TC s", "judgements"],
            [
                [
                    "naive (V-B)",
                    f"{naive_planner.stats.intra_time:.4f}",
                    f"{naive_result.tc_seconds:.4f}",
                    sum(s.judged for s in naive_planner.stores),
                ],
                [
                    "slope index (V-D)",
                    f"{indexed_planner.stats.intra_time:.4f}",
                    f"{indexed_result.tc_seconds:.4f}",
                    sum(s.judged for s in indexed_planner.stores),
                ],
            ],
            title="Fig. 22(b) — intra-strip time, naive vs slope-based index",
        )
    )
    # Shape: the slope index cuts pairwise judgements hard (the paper's
    # ~50% intra-strip saving comes from exactly this) and the two days
    # agree on the outcome.
    naive_judged = sum(s.judged for s in naive_planner.stores)
    indexed_judged = sum(s.judged for s in indexed_planner.stores)
    assert indexed_judged < 0.6 * naive_judged
    # Wall-clock is machine-noisy; the index must at least not lose
    # badly (the deterministic judgement count above is the real claim).
    assert indexed_planner.stats.intra_time < 1.3 * naive_planner.stats.intra_time
    assert naive_result.og == indexed_result.og
    benchmark(lambda: indexed_judged)


def test_benchmark_collision_judgement(benchmark):
    """Microbenchmark: one earliest-conflict query on a busy strip."""
    from repro.core.segments import make_move, make_wait
    from repro.core.slope_index import SlopeIndexedStore

    store = SlopeIndexedStore()
    for k in range(200):
        if k % 3 == 0:
            store.insert(make_wait(3 * k, k % 30, 4))
        elif k % 3 == 1:
            store.insert(make_move(2 * k, k % 25, (k + 7) % 25))
        else:
            store.insert(make_move(k, (k + 11) % 28, k % 28))
    probe = make_move(290, 0, 29)
    benchmark(store.earliest_conflict, probe)
