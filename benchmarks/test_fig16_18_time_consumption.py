"""Figures 16-18 — cumulative planning time (TC) versus task progress.

One curve per planner per warehouse; the paper plots five days per
warehouse, we plot one scaled day (the trace seed is configurable).
Expected shape: TC grows with progress for every planner, SRP's curve
sits lowest, and the worst-case snapshot ratio versus SRP is large
(the paper reports up to 227x on W-3; our pure-Python gap is smaller
but clearly in SRP's favour and grows with warehouse size).
"""

import pytest

from benchmarks.conftest import BENCH_SCALE, DATASETS, PLANNERS
from repro import Query, SAPPlanner, datasets
from repro.analysis import format_series, format_table


@pytest.mark.parametrize("dataset", DATASETS)
def test_tc_curves(day_runs, dataset, bench_header, benchmark):
    fig = {"W-1": "Fig. 16", "W-2": "Fig. 17", "W-3": "Fig. 18"}[dataset]
    print()
    print(bench_header)
    print(f"{fig} — TC (cumulative planning seconds) vs progress on {dataset}")
    finals = {}
    for planner in PLANNERS:
        result = day_runs.get(dataset, planner).result
        series = result.snapshots
        xs = [f"{s.progress:.0%}" for s in series[:: max(1, len(series) // 10)]]
        ys = [s.tc_seconds for s in series[:: max(1, len(series) // 10)]]
        print(format_series(planner, xs, ys, "progress", "TC s"))
        finals[planner] = result.tc_seconds
        # TC must be non-decreasing in progress.
        tcs = [s.tc_seconds for s in series]
        assert tcs == sorted(tcs)
    print("final TC:", {k: round(v, 3) for k, v in finals.items()})
    # Shape: SRP is the fastest planner end-to-end (10% tolerance for
    # wall-clock noise on shared machines).
    assert finals["SRP"] <= 1.1 * min(finals.values())
    # Keep the series visible under --benchmark-only.
    benchmark(lambda: min(finals.values()))


def test_snapshot_speedup_headline(day_runs, bench_header, benchmark):
    """The paper's 227x headline: max per-snapshot TC ratio vs SRP."""
    print()
    print(bench_header)
    rows = []
    overall = 0.0
    for dataset in DATASETS:
        srp = day_runs.get(dataset, "SRP").result.snapshots
        best = 0.0
        best_against = ""
        for planner in PLANNERS:
            if planner == "SRP":
                continue
            other = day_runs.get(dataset, planner).result.snapshots
            n = min(len(srp), len(other))
            for a, b in zip(srp[:n], other[:n]):
                if a.tc_seconds > 0:
                    ratio = b.tc_seconds / a.tc_seconds
                    if ratio > best:
                        best, best_against = ratio, planner
        rows.append([dataset, f"{best:.1f}x", best_against])
        overall = max(overall, best)
    print(
        format_table(
            ["dataset", "max snapshot TC ratio vs SRP", "against"],
            rows,
            title="Headline snapshot speedup (paper: up to 227x on W-3 Day 5)",
        )
    )
    # Shape assertion: SRP wins by a clear margin somewhere.
    assert overall > 1.5
    benchmark(lambda: overall)


def test_benchmark_sap_single_query_for_contrast(benchmark):
    """Companion number to the SRP single-query benchmark (Table III file)."""
    warehouse = datasets.w2(scale=BENCH_SCALE)
    planner = SAPPlanner(warehouse)
    free = warehouse.free_cells()
    state = {"k": 0}

    def plan_one():
        k = state["k"]
        state["k"] += 1
        origin = free[(37 * k) % len(free)]
        dest = free[(113 * k + 11) % len(free)]
        return planner.plan(Query(origin, dest, 40 * k, query_id=k))

    route = benchmark(plan_one)
    assert route.is_unit_speed()
