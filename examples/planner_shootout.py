#!/usr/bin/env python3
"""Head-to-head comparison of SRP against all four grid baselines.

A compact version of the paper's evaluation: one scaled day per
planner on the same task trace, reporting OG / TC / MC side by side
(the rows of Table III plus the endpoints of Figs. 16-21).

Run:  python examples/planner_shootout.py [scale] [n_tasks]
"""

import sys

from repro import (
    ACPPlanner,
    RPPlanner,
    SAPPlanner,
    SRPPlanner,
    TaskTraceSpec,
    TWPPlanner,
    datasets,
    generate_tasks,
    run_day,
)
from repro.analysis import format_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    n_tasks = int(sys.argv[2]) if len(sys.argv) > 2 else 120

    warehouse = datasets.w2(scale=scale)
    tasks = generate_tasks(
        warehouse, TaskTraceSpec(n_tasks=n_tasks, day_length=2500, seed=23)
    )
    print(f"{warehouse.name}: {warehouse.shape}, {warehouse.n_racks} racks, "
          f"{len(warehouse.robot_homes)} robots, {len(tasks)} tasks\n")

    rows = []
    srp_tc = None
    for factory in (SRPPlanner, SAPPlanner, RPPlanner, TWPPlanner, ACPPlanner):
        planner = factory(warehouse)
        result = run_day(warehouse, planner, tasks, validate=True)
        assert not result.conflicts, f"{planner.name} produced conflicts"
        if planner.name == "SRP":
            srp_tc = result.tc_seconds
        speedup = (result.tc_seconds / srp_tc) if srp_tc else float("nan")
        rows.append(
            [
                result.planner_name,
                result.og,
                f"{result.tc_seconds * 1000:.0f}",
                f"{speedup:.1f}x",
                f"{(result.peak_mc_bytes or 0) / 1024:.0f}",
                result.completed_tasks,
                result.failed_tasks,
            ]
        )
    print(
        format_table(
            ["planner", "OG (s)", "TC (ms)", "TC vs SRP", "MC peak (KiB)", "done", "failed"],
            rows,
            title="one scaled day, identical task trace",
        )
    )


if __name__ == "__main__":
    main()
