#!/usr/bin/env python3
"""Design a custom warehouse layout and inspect its strip structure.

Shows the substrate API: parametric layout generation, strip graph
construction (Algorithm 1 of the paper), the grid-to-strip reduction
that drives SRP's speedups, and JSON round-tripping of the result.

Run:  python examples/custom_layout.py
"""

import tempfile
from pathlib import Path

from repro import LayoutSpec, Query, SRPPlanner, generate_layout
from repro.core.strips import Direction, StripKind
from repro.warehouse import load_warehouse, save_warehouse


def main() -> None:
    spec = LayoutSpec(
        height=48,
        width=36,
        cluster_length=6,  # the paper's "2 x l" clusters with l = 6
        h_aisle_width=2,
        v_aisle_width=1,
        n_pickers=8,
        n_robots=12,
        fill_ratio=0.85,  # keep some staging space rack-free
        seed=11,
    )
    warehouse = generate_layout(spec, name="custom")
    print(warehouse)
    print(warehouse.to_ascii()[: 37 * 8])  # first eight rows
    print("...")

    planner = SRPPlanner(warehouse)
    graph = planner.graph
    by_kind = {
        (Direction.LATITUDINAL, StripKind.AISLE): 0,
        (Direction.LONGITUDINAL, StripKind.AISLE): 0,
        (Direction.LONGITUDINAL, StripKind.RACK): 0,
    }
    for strip in graph.strips:
        by_kind[(strip.direction, strip.kind)] += 1
    print("strip inventory:")
    for (direction, kind), count in by_kind.items():
        print(f"  {direction.value:12s} {kind.value:5s}: {count}")
    stats = graph.reduction_stats()
    print(f"reduction: {stats['grid_vertices']} grid vertices -> "
          f"{stats['strip_vertices']} strips ({stats['vertex_ratio']:.1%})")

    # Plan across the warehouse and display which strips the route uses.
    route = planner.plan(Query((0, 0), (warehouse.height - 1, warehouse.width - 1)))
    strips_used = []
    for grid in route.grids:
        idx = graph.strip_index_of(grid)
        if not strips_used or strips_used[-1] != idx:
            strips_used.append(idx)
    print(f"route of {route.duration} steps passes {len(strips_used)} strips: "
          f"{strips_used}")

    # Round-trip the layout through JSON.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "custom.json"
        save_warehouse(warehouse, path)
        reloaded = load_warehouse(path)
        assert reloaded == warehouse
        print(f"layout round-tripped through {path.name} "
              f"({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
