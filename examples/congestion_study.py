#!/usr/bin/env python3
"""Study SRP's behaviour as congestion rises, with an ASCII animation.

Sweeps task density on one warehouse and reports, per level: planning
time per query, empirical competitive ratio against an optimal
space-time A* comparator, and the A* fallback rate (the paper's
Section VI remark).  Finishes with a short ASCII animation of traffic.

Run:  python examples/congestion_study.py
"""

import random

from repro import Query, SRPPlanner, datasets
from repro.analysis import (
    expected_competitive_ratio_bound,
    format_table,
    measure_competitive_ratios,
    render_snapshot,
)


def make_queries(warehouse, n, spacing, seed=13):
    rng = random.Random(seed)
    pool = warehouse.free_cells() + warehouse.rack_cells()
    queries = []
    for k in range(n):
        o = pool[rng.randrange(len(pool))]
        d = pool[rng.randrange(len(pool))]
        if o != d:
            queries.append(Query(o, d, spacing * k, query_id=k))
    return queries


def main() -> None:
    warehouse = datasets.w1(scale=0.35)
    print(f"{warehouse.name}: {warehouse.shape}, {warehouse.n_racks} racks")

    rows = []
    for label, spacing in (("light", 20), ("moderate", 6), ("heavy", 2)):
        queries = make_queries(warehouse, 60, spacing)
        report = measure_competitive_ratios(warehouse, queries)
        planner = SRPPlanner(warehouse)
        for q in queries:
            planner.plan(q)
        per_query_ms = planner.timers.total / planner.timers.queries * 1000
        rows.append(
            [
                label,
                f"1/{spacing}s",
                f"{per_query_ms:.2f}",
                f"{report.mean:.3f}",
                f"{report.worst:.3f}",
                f"{planner.stats.fallbacks}/{len(queries)}",
            ]
        )
    print(
        format_table(
            ["load", "arrival rate", "ms/query", "mean CR", "worst CR", "fallbacks"],
            rows,
            title="SRP under increasing congestion "
            "(Theorem 1 bound at p=0.577: "
            f"{expected_competitive_ratio_bound(0.577):.3f})",
        )
    )

    # A tiny traffic animation on a small replica.
    small = datasets.w1(scale=0.15)
    planner = SRPPlanner(small)
    routes = [planner.plan(q) for q in make_queries(small, 6, 1, seed=3)]
    t_mid = sorted(r.start_time for r in routes)[len(routes) // 2] + 3
    print(f"\ntraffic snapshot at t={t_mid} (digits are robots):")
    print(render_snapshot(small, routes, t_mid))


if __name__ == "__main__":
    main()
