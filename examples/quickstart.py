#!/usr/bin/env python3
"""Quickstart: plan a handful of collision-free routes with SRP.

Builds a small warehouse from ASCII art, constructs the strip-based
planner, plans three routes whose shortest paths all funnel through the
same aisles, and shows how SRP makes the later routes wait or detour
around the earlier ones.

Run:  python examples/quickstart.py
"""

from repro import Query, SRPPlanner, Warehouse, assert_collision_free

LAYOUT = """
............
..##.##.##..
..##.##.##..
..##.##.##..
..##.##.##..
............
..##.##.##..
..##.##.##..
..##.##.##..
..##.##.##..
............
"""


def main() -> None:
    warehouse = Warehouse.from_ascii(LAYOUT, name="quickstart")
    print(f"warehouse: {warehouse.height} x {warehouse.width}, "
          f"{warehouse.n_racks} rack cells")

    planner = SRPPlanner(warehouse)
    stats = planner.graph.reduction_stats()
    print(f"strip graph: {stats['strip_vertices']} strips "
          f"({stats['vertex_ratio']:.0%} of the grid vertices), "
          f"{stats['strip_edges']} edges")

    # Three queries released at the same second, all crossing the
    # middle aisle: SRP serialises them without collisions.
    queries = [
        Query(origin=(0, 0), destination=(10, 11), release_time=0),
        Query(origin=(10, 0), destination=(0, 11), release_time=0),
        Query(origin=(5, 0), destination=(5, 11), release_time=0),
        # A rack endpoint: deliver to the rack cell at (2, 6).
        Query(origin=(0, 11), destination=(2, 6), release_time=0),
    ]
    routes = [planner.plan(q) for q in queries]

    for query, route in zip(queries, routes):
        lower_bound = query.lower_bound()
        print(f"{query.origin} -> {query.destination}: "
              f"{route.duration} steps (shortest possible {lower_bound}), "
              f"departs t={route.start_time}")
        print("   ", " ".join(f"{g[0]},{g[1]}" for g in route.grids))

    assert_collision_free(routes)
    print("all routes verified collision-free")
    print(f"planner stats: {planner.stats.intra_calls} intra-strip searches, "
          f"{planner.stats.fallbacks} A* fallbacks, "
          f"{planner.n_segments} committed segments")


if __name__ == "__main__":
    main()
