#!/usr/bin/env python3
"""Tour of SRP's ablation axes.

Runs the same online query stream through SRP variants and compares
planning time, route quality and fallback counts:

* segment store backends: slope index (Alg. 3) / naive (Sec. V-B) /
  time-bucket (extension);
* intra-strip search: greedy (Alg. 2) / exact / exact+backward
  (lifting the Fig. 13 restriction);
* inter-strip search: A*-guided (ours) / plain Dijkstra (paper).

Run:  python examples/ablation_tour.py
"""

import random

from repro import Query, SRPPlanner, datasets
from repro.analysis import format_table


def make_queries(warehouse, n=80, seed=29, spacing=4):
    rng = random.Random(seed)
    pool = warehouse.free_cells() + warehouse.rack_cells()
    queries = []
    for k in range(n):
        o = pool[rng.randrange(len(pool))]
        d = pool[rng.randrange(len(pool))]
        if o != d:
            queries.append(Query(o, d, spacing * k, query_id=k))
    return queries


def run(planner, queries):
    total = 0
    for q in queries:
        total += planner.plan(q).duration
    return {
        "sum_durations": total,
        "tc_ms": planner.timers.total * 1000,
        "fallbacks": planner.stats.fallbacks,
        "segments": planner.n_segments,
    }


def main() -> None:
    warehouse = datasets.w1(scale=0.35)
    queries = make_queries(warehouse)
    print(f"{warehouse.name}: {warehouse.shape}, {len(queries)} queries\n")

    variants = [
        ("slope index (default)", dict()),
        ("naive store (V-B)", dict(store="naive")),
        ("time-bucket store", dict(store="bucket")),
        ("plain Dijkstra", dict(use_heuristic=False)),
        ("exact intra", dict(intra_exact=True)),
        ("exact + backward", dict(intra_exact=True, intra_backward=True)),
    ]
    rows = []
    for label, kwargs in variants:
        stats = run(SRPPlanner(warehouse, **kwargs), queries)
        rows.append(
            [
                label,
                f"{stats['tc_ms']:.0f}",
                stats["sum_durations"],
                stats["fallbacks"],
            ]
        )
    print(
        format_table(
            ["variant", "TC (ms)", "sum durations", "A* fallbacks"],
            rows,
            title="SRP ablation axes on one identical query stream",
        )
    )
    print("\nReading guide: route quality (sum durations) is nearly flat —")
    print("the restrictions cost little; the axes trade planning time for")
    print("the rare cases the greedy search cannot thread.")


if __name__ == "__main__":
    main()
