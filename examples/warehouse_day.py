#!/usr/bin/env python3
"""Simulate a full warehouse day on a scaled W-1 replica.

Reproduces the paper's end-to-end pipeline: a day of delivery tasks
arrives online with a diurnal pattern; each task triggers pickup /
transmission / return route planning; the simulator executes routes,
validates that the whole day stayed collision-free, and reports the
paper's three metrics (OG, TC, MC) for SRP and one baseline.

Run:  python examples/warehouse_day.py [scale] [n_tasks]
"""

import sys

from repro import SAPPlanner, SRPPlanner, TaskTraceSpec, datasets, generate_tasks, run_day


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    n_tasks = int(sys.argv[2]) if len(sys.argv) > 2 else 150

    warehouse = datasets.w1(scale=scale)
    print(f"{warehouse.name}: {warehouse.height} x {warehouse.width}, "
          f"{warehouse.n_racks} racks, {len(warehouse.pickers)} pickers, "
          f"{len(warehouse.robot_homes)} robots")

    tasks = generate_tasks(
        warehouse, TaskTraceSpec(n_tasks=n_tasks, day_length=3000, seed=7)
    )
    print(f"{len(tasks)} tasks, releases {tasks[0].release_time}"
          f"..{tasks[-1].release_time} (diurnal pattern)")

    for planner in (SRPPlanner(warehouse), SAPPlanner(warehouse)):
        result = run_day(warehouse, planner, tasks, validate=True)
        assert not result.conflicts, "day must be collision-free"
        mc_kb = (result.peak_mc_bytes or 0) / 1024
        print(f"\n{result.planner_name}:")
        print(f"  OG (makespan)      : {result.og} s of warehouse time")
        print(f"  TC (planning time) : {result.tc_seconds * 1000:.1f} ms total")
        print(f"  MC (peak memory)   : {mc_kb:.0f} KiB of planner state")
        print(f"  tasks              : {result.completed_tasks} completed, "
              f"{result.failed_tasks} failed")
        mid = [s for s in result.snapshots if s.progress >= 0.5]
        if mid:
            s = mid[0]
            print(f"  at 50% progress    : t={s.sim_time}, "
                  f"TC={s.tc_seconds * 1000:.1f} ms")


if __name__ == "__main__":
    main()
