"""Query/route trace recording and replay.

A *trace* is the full transcript of an online planning session: every
query in arrival order plus the route the planner answered with.
Traces serve three workflows:

* **reproducibility** — persist a day's planning to JSONL and rerun it
  bit-for-bit later (`save_trace` / `load_trace` / `replay_trace`);
* **cross-planner comparison** — replay one trace through another
  planner and diff durations per query (`replay_trace` returns both);
* **debugging** — shrink a failing day to the offending prefix.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from repro.planner_base import Planner
from repro.types import Query, QueryKind, Route

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


@dataclass
class TraceEntry:
    """One planned query and its answer.

    ``tag`` is free-form provenance: the planning service stamps the
    degradation-ladder rung that produced the route (``"full"``,
    ``"cached"``, ``"fallback"``) so a session can be replayed through
    the exact same rung sequence offline.  Empty for plain recordings.
    """

    query: Query
    route: Route
    tag: str = ""


@dataclass
class PlannerTrace:
    """An ordered transcript of an online planning session."""

    planner_name: str
    entries: List[TraceEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def queries(self) -> List[Query]:
        return [e.query for e in self.entries]

    @property
    def total_duration(self) -> int:
        return sum(e.route.duration for e in self.entries)

    @property
    def makespan(self) -> int:
        return max(e.route.finish_time for e in self.entries) if self.entries else 0


class TraceRecorder(Planner):
    """Planner wrapper that transcribes every successful plan call.

    Drop-in: behaves exactly like the wrapped planner (including
    revisions and pruning) while accumulating a :class:`PlannerTrace`.
    """

    def __init__(self, inner: Planner) -> None:
        super().__init__()
        self.inner = inner
        self.name = inner.name
        self.trace = PlannerTrace(planner_name=inner.name)

    def plan(self, query: Query) -> Route:
        route = self.inner.plan(query)
        self.trace.entries.append(TraceEntry(query, route))
        return route

    def take_revisions(self) -> Dict[int, Route]:
        revisions = self.inner.take_revisions()
        if revisions:
            by_id = {e.query.query_id: e for e in self.trace.entries}
            for query_id, route in revisions.items():
                entry = by_id.get(query_id)
                if entry is not None:
                    entry.route = route
        return revisions

    def reset(self) -> None:
        self.inner.reset()
        self.trace = PlannerTrace(planner_name=self.inner.name)

    def prune(self, before: int) -> None:
        self.inner.prune(before)

    def planning_state(self) -> object:
        return self.inner.planning_state()

    @property
    def timers(self):
        return self.inner.timers

    @timers.setter
    def timers(self, value) -> None:  # Planner.__init__ assigns a dummy
        pass


@dataclass
class ReplayReport:
    """Outcome of replaying a trace through another planner."""

    original: PlannerTrace
    replayed: PlannerTrace
    #: per-query duration difference: replayed - original
    duration_deltas: List[int]

    @property
    def total_delta(self) -> int:
        return sum(self.duration_deltas)

    @property
    def n_faster(self) -> int:
        return sum(1 for d in self.duration_deltas if d < 0)

    @property
    def n_slower(self) -> int:
        return sum(1 for d in self.duration_deltas if d > 0)


def replay_trace(trace: PlannerTrace, planner: Planner) -> ReplayReport:
    """Feed a trace's queries to ``planner`` in order and diff durations."""
    replayed = PlannerTrace(planner_name=planner.name)
    deltas: List[int] = []
    for entry in trace.entries:
        route = planner.plan(entry.query)
        replayed.entries.append(TraceEntry(entry.query, route, entry.tag))
        deltas.append(route.duration - entry.route.duration)
    return ReplayReport(trace, replayed, deltas)


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
def save_trace(trace: PlannerTrace, path: PathLike) -> None:
    """Write a trace as JSONL: one header line, one line per entry."""
    with open(path, "w", encoding="utf-8") as f:
        header = {
            "format_version": _FORMAT_VERSION,
            "planner": trace.planner_name,
            "entries": len(trace.entries),
        }
        f.write(json.dumps(header) + "\n")
        for entry in trace.entries:
            q, r = entry.query, entry.route
            record = {
                "origin": list(q.origin),
                "destination": list(q.destination),
                "release_time": q.release_time,
                "kind": q.kind.value,
                "query_id": q.query_id,
                "start_time": r.start_time,
                "grids": [list(g) for g in r.grids],
            }
            if entry.tag:
                record["tag"] = entry.tag
            f.write(json.dumps(record) + "\n")


def load_trace(path: PathLike) -> PlannerTrace:
    """Read a trace written by :func:`save_trace`."""
    with open(path, "r", encoding="utf-8") as f:
        header = json.loads(f.readline())
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version: {header.get('format_version')!r}"
            )
        trace = PlannerTrace(planner_name=header.get("planner", ""))
        for line in f:
            record = json.loads(line)
            query = Query(
                tuple(record["origin"]),
                tuple(record["destination"]),
                record["release_time"],
                QueryKind(record["kind"]),
                record["query_id"],
            )
            route = Route(
                record["start_time"],
                [tuple(g) for g in record["grids"]],
                record["query_id"],
            )
            trace.entries.append(TraceEntry(query, route, record.get("tag", "")))
    return trace
