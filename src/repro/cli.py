"""Command-line interface: inspect warehouses, plan routes, run days.

Usage (also available as ``python -m repro.cli``)::

    repro-warehouse info --dataset W-1
    repro-warehouse plan --dataset W-1 --origin 0,0 --dest 200,90
    repro-warehouse simulate --dataset W-2 --scale 0.3 --tasks 80 \
        --planner SRP --seed 7
    repro-warehouse simulate --dataset W-1 --scale 0.5 --tasks 120 \
        --stalls 20 --blockages 10 --slowdowns 6 --closures 3 \
        --fault-seed 5 --recovery joint --validate
    repro-warehouse serve --dataset W-1 --scale 0.3 --port 7717 \
        --deadline-ms 100 --trace session.jsonl
    repro-warehouse load --port 7717 --queries 500 --rate 150
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from typing import Optional

from repro import (
    Query,
    SRPPlanner,
    TaskTraceSpec,
    build_strip_graph,
    datasets,
    generate_tasks,
    make_baseline,
    run_day,
)
from repro.analysis import format_table
from repro.exceptions import (
    CollisionError,
    InvalidQueryError,
    PlanningFailedError,
    SimulationError,
)
from repro.simulation import FaultPlan
from repro.warehouse import load_warehouse

PLANNER_NAMES = ("SRP", "SAP", "RP", "TWP", "ACP")


def _make_planner(
    name: str,
    warehouse,
    store: str = "slope",
    exact: bool = False,
    store_layout: str | None = None,
):
    if name == "SRP":
        return SRPPlanner(
            warehouse, store=store, store_layout=store_layout, intra_exact=exact
        )
    return make_baseline(name, warehouse)


def _load_warehouse(args):
    if args.layout:
        return load_warehouse(args.layout)
    return datasets.dataset_by_name(args.dataset, scale=args.scale)


def _parse_cell(text: str):
    try:
        i, j = text.split(",")
        return (int(i), int(j))
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected 'row,col', got {text!r}")


def cmd_info(args) -> int:
    warehouse = _load_warehouse(args)
    graph = build_strip_graph(warehouse)
    stats = graph.reduction_stats()
    print(
        format_table(
            ["property", "value"],
            [
                ["name", warehouse.name or "(custom)"],
                ["size (H x W)", f"{warehouse.height} x {warehouse.width}"],
                ["rack cells", warehouse.n_racks],
                ["pickers", len(warehouse.pickers)],
                ["robot homes", len(warehouse.robot_homes)],
                ["grid vertices", stats["grid_vertices"]],
                ["grid edges", stats["grid_edges"]],
                ["strip vertices", stats["strip_vertices"]],
                ["strip edges", stats["strip_edges"]],
                ["vertex reduction", f"{stats['vertex_ratio']:.1%}"],
                ["edge reduction", f"{stats['edge_ratio']:.1%}"],
            ],
            title="warehouse summary",
        )
    )
    return 0


def _report_failure(kind: str, exc) -> int:
    """Structured one-line error report for planning/simulation failures."""
    parts = [f"error: {kind}: {exc.args[0] if exc.args else exc}"]
    if hasattr(exc, "diagnostics"):
        for key, value in exc.diagnostics().items():
            parts.append(f"  {key}: {value}")
    print("\n".join(parts), file=sys.stderr)
    return 1


def cmd_plan(args) -> int:
    warehouse = _load_warehouse(args)
    planner = _make_planner(args.planner, warehouse, args.store, args.exact, args.store_layout)
    query = Query(args.origin, args.dest, args.time)
    try:
        route = planner.plan(query)
    except PlanningFailedError as exc:
        return _report_failure("planning failed", exc)
    except InvalidQueryError as exc:
        return _report_failure("invalid query", exc)
    print(
        f"{args.planner} route {args.origin} -> {args.dest}: "
        f"{route.duration} steps, departs t={route.start_time}, "
        f"arrives t={route.finish_time}"
    )
    if args.verbose:
        print(" ".join(f"{i},{j}" for i, j in route.grids))
    return 0


def cmd_simulate(args) -> int:
    warehouse = _load_warehouse(args)
    tasks = generate_tasks(
        warehouse,
        TaskTraceSpec(n_tasks=args.tasks, day_length=args.day, seed=args.seed,
                      duty_cycle=args.duty_cycle),
    )
    battery = None
    stations = None
    if args.battery > 0:
        from repro.simulation import BatterySpec, place_stations

        try:
            # Head to a charger at half capacity: a robot picking up a
            # three-stage task just above the threshold must still
            # finish it without stranding.
            battery = BatterySpec(
                capacity=args.battery,
                charge_rate=args.charge_rate,
                low_threshold=max(1, args.battery // 2),
                critical_threshold=max(0, args.battery // 5),
            )
            stations = place_stations(warehouse, args.stations)
        except SimulationError as exc:
            return _report_failure("charging setup failed", exc)
    faults = None
    if args.stalls or args.blockages or args.slowdowns or args.closures:
        faults = FaultPlan.generate(
            warehouse,
            n_robots=len(warehouse.robot_homes),
            day_length=args.day,
            n_stalls=args.stalls,
            n_blockages=args.blockages,
            n_slowdowns=args.slowdowns,
            n_closures=args.closures,
            seed=args.fault_seed,
        )
    rows = []
    for name in args.planner.split(","):
        name = name.strip().upper()
        planner = _make_planner(name, warehouse, args.store, args.exact, args.store_layout)
        try:
            result = run_day(
                warehouse, planner, tasks, validate=args.validate, faults=faults,
                recovery=args.recovery, battery=battery, stations=stations,
            )
        except SimulationError as exc:
            return _report_failure("simulation failed", exc)
        if result.conflicts:
            first = result.conflicts[0]
            return _report_failure(
                "conflict check failed",
                CollisionError(
                    f"{name} produced {len(result.conflicts)} conflicting "
                    f"route pair(s); first: {first.kind} at {first.grid}",
                    release_time=first.time,
                    phase="validate",
                ),
            )
        if result.audit_violations:
            shown = "; ".join(str(v) for v in result.audit_violations[:3])
            return _report_failure(
                "planner-state audit failed",
                SimulationError(
                    f"{name} audit found {len(result.audit_violations)} "
                    f"violation(s): {shown}",
                    phase="audit",
                ),
            )
        if result.stranded_robots:
            # A stranded robot means the battery provisioning cannot
            # carry the workload — fail loudly so CI smoke catches it.
            return _report_failure(
                "battery provisioning failed",
                SimulationError(
                    f"{name} stranded {result.stranded_robots} robot(s) "
                    f"(capacity {args.battery}, {args.stations} stations, "
                    f"charge rate {args.charge_rate})",
                    phase="charging",
                ),
            )
        rows.append(
            {
                "planner": name,
                "og_s": result.og,
                "tc_ms": round(result.tc_seconds * 1000, 3),
                "mc_peak_kib": round((result.peak_mc_bytes or 0) / 1024),
                "completed": result.completed_tasks,
                "failed": result.failed_tasks,
                "faults": result.faults_injected,
                "replans": result.replans,
                "recovery": result.recovery,
                "replan_attempts": result.replan_attempts,
                "decommitted_segments": result.decommitted_segments,
                "recovery_clusters": result.recovery_clusters,
                "max_cluster_size": result.max_cluster_size,
                "cluster_robots": result.cluster_robots,
                "recovery_cbs": result.recovery_cbs,
                "recovery_serial": result.recovery_serial,
                "slowdown_stretches": result.slowdown_stretches,
                "closure_cells": result.closure_cells,
                "charge_trips": result.charge_trips,
                "charge_aborts": result.charge_aborts,
                "charge_queue_wait": result.charge_queue_wait,
                "stranded_robots": result.stranded_robots,
                "energy_drained": result.energy_drained,
                "charge_stations": result.charge_stations,
            }
        )
    if args.json:
        for row in rows:
            row.update(dataset=warehouse.name, tasks=args.tasks, day=args.day,
                       seed=args.seed)
            print(json.dumps(row, sort_keys=True))
        return 0
    title = f"{warehouse.name}: {args.tasks} tasks over {args.day}s"
    if faults is not None:
        title += (f", {len(faults)} faults (seed {args.fault_seed}, "
                  f"recovery={args.recovery})")
    if battery is not None:
        trips = "/".join(str(row["charge_trips"]) for row in rows)
        title += (f", battery {args.battery} ({args.stations} stations, "
                  f"{trips} trips)")
    print(
        format_table(
            ["planner", "OG (s)", "TC (ms)", "MC peak (KiB)", "done", "failed",
             "faults/replans", "attempts/decommits"],
            [
                [
                    row["planner"],
                    row["og_s"],
                    f"{row['tc_ms']:.1f}",
                    f"{row['mc_peak_kib']:.0f}",
                    row["completed"],
                    row["failed"],
                    f"{row['faults']}/{row['replans']}",
                    f"{row['replan_attempts']}/{row['decommitted_segments']}",
                ]
                for row in rows
            ],
            title=title,
        )
    )
    return 0


def cmd_serve(args) -> int:
    """Run the online planning service until SIGTERM/SIGINT or `shutdown`."""
    from repro.service import ServiceConfig, ServiceServer
    from repro.tracing import save_trace

    warehouse = _load_warehouse(args)
    if args.workers >= 1:
        if args.planner != "SRP":
            print("--workers requires the SRP planner", file=sys.stderr)
            return 2
        from repro.service import ShardedPlanner

        planner = ShardedPlanner(
            warehouse, workers=args.workers, partition=args.partition
        )
        print(f"region-sharded: {planner.shard_count} worker process(es)",
              flush=True)
    else:
        planner = _make_planner(args.planner, warehouse, args.store, args.exact,
                                args.store_layout)
    config = ServiceConfig(
        queue_capacity=args.queue_cap,
        default_deadline_ms=args.deadline_ms,
        full_budget_ms=args.full_budget_ms,
        cached_budget_ms=args.cached_budget_ms,
    )
    server = ServiceServer(
        planner,
        config,
        host=args.host,
        port=args.port,
        telemetry_log=args.telemetry_log,
        log_interval=args.log_interval,
    ).start()

    def _drain(signum, frame) -> None:
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    print(f"serving {warehouse.name or '(custom)'} with {args.planner} "
          f"on {args.host}:{server.port}", flush=True)
    server.drained.wait()
    clean = server.stop()
    if args.trace:
        save_trace(server.core.trace, args.trace)
        print(f"session trace ({len(server.core.trace)} entries) "
              f"saved to {args.trace}")
    snapshot = server.core.stats_snapshot()
    print(json.dumps(snapshot, sort_keys=True))
    return 0 if clean else 1


def cmd_load(args) -> int:
    """Drive a running service open-loop and print the client report."""
    from repro.service.loadgen import LoadSpec, make_schedule, run_against_server

    warehouse = _load_warehouse(args)
    spec = LoadSpec(
        n_queries=args.queries,
        rate_qps=args.rate,
        seed=args.seed,
        deadline_ms=args.deadline_ms,
    )
    schedule = make_schedule(warehouse, spec)
    report = run_against_server(args.host, args.port, schedule,
                                timeout_s=args.timeout)
    summary = report.summary()
    if report.stats is not None:
        summary["server_stats"] = report.stats
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0 if report.protocol_errors == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-warehouse",
        description="Strip-based collision-aware warehouse route planning (SRP).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_world_args(p):
        p.add_argument("--dataset", default="W-1", choices=("W-1", "W-2", "W-3"),
                       help="Table II replica to use (default W-1)")
        p.add_argument("--scale", type=float, default=1.0,
                       help="linear scale factor of the replica (default 1.0)")
        p.add_argument("--layout", default=None,
                       help="JSON warehouse file (overrides --dataset)")

    p_info = sub.add_parser("info", help="print warehouse and strip-graph stats")
    add_world_args(p_info)
    p_info.set_defaults(func=cmd_info)

    p_plan = sub.add_parser("plan", help="plan one route")
    add_world_args(p_plan)
    p_plan.add_argument("--origin", type=_parse_cell, required=True)
    p_plan.add_argument("--dest", type=_parse_cell, required=True)
    p_plan.add_argument("--time", type=int, default=0, help="release time")
    p_plan.add_argument("--planner", default="SRP", choices=PLANNER_NAMES)
    p_plan.add_argument("--store", default="slope", choices=("slope", "naive", "bucket"),
                        help="SRP segment-store backend")
    p_plan.add_argument("--store-layout", default=None, choices=("object", "columnar"),
                        help="physical store layout (default: columnar for --store slope, object otherwise)")
    p_plan.add_argument("--exact", action="store_true",
                        help="use the exact intra-strip search (SRP only)")
    p_plan.add_argument("--verbose", action="store_true", help="print every grid")
    p_plan.set_defaults(func=cmd_plan)

    p_sim = sub.add_parser("simulate", help="run a simulated day")
    add_world_args(p_sim)
    p_sim.add_argument("--tasks", type=int, default=100)
    p_sim.add_argument("--day", type=int, default=1500, help="release span (s)")
    p_sim.add_argument("--seed", type=int, default=7)
    p_sim.add_argument("--planner", default="SRP",
                       help="comma-separated planner names (default SRP)")
    p_sim.add_argument("--store", default="slope", choices=("slope", "naive", "bucket"),
                       help="SRP segment-store backend")
    p_sim.add_argument("--store-layout", default=None, choices=("object", "columnar"),
                       help="physical store layout (default: columnar for --store slope, object otherwise)")
    p_sim.add_argument("--exact", action="store_true",
                       help="use the exact intra-strip search (SRP only)")
    p_sim.add_argument("--validate", action="store_true",
                       help="verify collision-freedom of the whole day")
    p_sim.add_argument("--stalls", type=int, default=0,
                       help="inject N seeded robot-stall faults (SRP only)")
    p_sim.add_argument("--blockages", type=int, default=0,
                       help="inject N seeded transient cell blockages (SRP only)")
    p_sim.add_argument("--slowdowns", type=int, default=0,
                       help="inject N seeded robot slowdowns (SRP only)")
    p_sim.add_argument("--closures", type=int, default=0,
                       help="inject N seeded aisle-closure faults (SRP only)")
    p_sim.add_argument("--fault-seed", type=int, default=0,
                       help="RNG seed of the fault plan (default 0)")
    p_sim.add_argument("--recovery", default="serial", choices=("serial", "joint"),
                       help="fault recovery strategy: serial hold-and-replan "
                            "or joint conflict-cluster recovery (default serial)")
    p_sim.add_argument("--battery", type=int, default=0,
                       help="battery capacity in charge units; 0 (default) "
                            "disables the battery/charging axis entirely")
    p_sim.add_argument("--stations", type=int, default=2,
                       help="charging stations to place (with --battery; "
                            "default 2)")
    p_sim.add_argument("--charge-rate", type=int, default=40,
                       help="charge units restored per second docked "
                            "(with --battery; default 40)")
    p_sim.add_argument("--duty-cycle", type=float, default=1.0,
                       help="fraction of the day carrying task releases; "
                            "smaller values compress arrivals into an active "
                            "shift followed by a quiet tail (default 1.0)")
    p_sim.add_argument("--json", action="store_true",
                       help="print one JSON object per planner row instead of a table")
    p_sim.set_defaults(func=cmd_simulate)

    p_serve = sub.add_parser(
        "serve", help="run the online planning service on a TCP port"
    )
    add_world_args(p_serve)
    p_serve.add_argument("--planner", default="SRP", choices=PLANNER_NAMES)
    p_serve.add_argument("--store", default="slope",
                         choices=("slope", "naive", "bucket"),
                         help="SRP segment-store backend")
    p_serve.add_argument("--store-layout", default=None, choices=("object", "columnar"),
                         help="physical store layout (default: columnar for --store slope, object otherwise)")
    p_serve.add_argument("--exact", action="store_true",
                         help="use the exact intra-strip search (SRP only)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7717,
                         help="TCP port (0 = pick a free one; default 7717)")
    p_serve.add_argument("--queue-cap", type=int, default=64,
                         help="admission queue capacity (default 64)")
    p_serve.add_argument("--deadline-ms", type=int, default=0,
                         help="default per-request deadline; 0 disables")
    p_serve.add_argument("--full-budget-ms", type=int, default=50,
                         help="min remaining budget for the full SRP rung")
    p_serve.add_argument("--cached-budget-ms", type=int, default=10,
                         help="min remaining budget for the cached rung")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="region-shard the SRP planner across this many "
                              "worker processes (0 = classic in-process "
                              "planner)")
    p_serve.add_argument("--partition", default="aisle", choices=("aisle",),
                         help="region partition strategy (full-width aisle "
                              "rows; the only strategy today)")
    p_serve.add_argument("--telemetry-log", default=None,
                         help="append a JSONL telemetry snapshot periodically")
    p_serve.add_argument("--log-interval", type=float, default=5.0,
                         help="telemetry logging period in seconds")
    p_serve.add_argument("--trace", default=None,
                         help="save the session trace here on shutdown")
    p_serve.set_defaults(func=cmd_serve)

    p_load = sub.add_parser(
        "load", help="drive a running service with seeded open-loop load"
    )
    add_world_args(p_load)
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, default=7717)
    p_load.add_argument("--queries", type=int, default=200)
    p_load.add_argument("--rate", type=float, default=100.0,
                        help="offered arrival rate (requests/s)")
    p_load.add_argument("--seed", type=int, default=7)
    p_load.add_argument("--deadline-ms", type=int, default=0,
                        help="per-request deadline sent on the wire; 0 = none")
    p_load.add_argument("--timeout", type=float, default=120.0)
    p_load.set_defaults(func=cmd_load)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
