"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.

Planning and simulation failures carry *structured diagnostics* (query
id, release time, the phase that was reached, budget spent) instead of
burying them in the message string: the simulator decides per-failure
whether to abandon or retry a task, and the CLI prints the fields so a
failed run names the exact query and recovery phase that gave up.
"""

from __future__ import annotations

from typing import Dict, Optional


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class LayoutError(ReproError):
    """A warehouse layout is malformed or violates generator constraints."""


class InvalidQueryError(ReproError):
    """A route planning query references unusable cells.

    Raised when the origin or destination lies outside the warehouse,
    or when an endpoint is unreachable (e.g. a rack cell with no adjacent
    aisle cell).
    """


class PlanningFailedError(ReproError):
    """No collision-free route could be found for a query.

    The strip-based planner raises this only after every rung of its
    degradation ladder has failed — strip-level search, grid-level A*
    fallback, bounded wait-and-retry — which indicates a genuinely
    infeasible instance (e.g. destination permanently blocked) or an
    exhausted recovery budget after an execution disturbance.

    Attributes:
        query_id: id of the failed query (-1 when the query had none).
        release_time: release time of the last attempt.
        phase: the furthest ladder rung reached before giving up
            (e.g. ``"strip"``, ``"fallback"``, ``"wait-retry"``).
        expansions: collision-query expansions spent across attempts,
            when the caller tracked them (None otherwise).
        cluster_size: robots in the conflict cluster being recovered
            when the failure occurred (None outside joint recovery).
        strategy: recovery strategy in effect — ``"serial"``,
            ``"prioritised"`` or ``"cbs"`` (None outside recovery).
        decommits: store segments decommitted for the cluster before
            the failing attempt (None when not tracked).
    """

    def __init__(
        self,
        message: str,
        *,
        query_id: int = -1,
        release_time: Optional[int] = None,
        phase: Optional[str] = None,
        expansions: Optional[int] = None,
        cluster_size: Optional[int] = None,
        strategy: Optional[str] = None,
        decommits: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.query_id = query_id
        self.release_time = release_time
        self.phase = phase
        self.expansions = expansions
        self.cluster_size = cluster_size
        self.strategy = strategy
        self.decommits = decommits

    def diagnostics(self) -> Dict[str, object]:
        """The structured fields that are actually set, as a dict."""
        fields: Dict[str, object] = {}
        if self.query_id != -1:
            fields["query_id"] = self.query_id
        if self.release_time is not None:
            fields["release_time"] = self.release_time
        if self.phase is not None:
            fields["phase"] = self.phase
        if self.expansions is not None:
            fields["expansions"] = self.expansions
        if self.cluster_size is not None:
            fields["cluster_size"] = self.cluster_size
        if self.strategy is not None:
            fields["strategy"] = self.strategy
        if self.decommits is not None:
            fields["decommits"] = self.decommits
        return fields

    def __str__(self) -> str:
        base = super().__str__()
        extras = " ".join(f"{k}={v}" for k, v in self.diagnostics().items())
        return f"{base} [{extras}]" if extras else base


class SimulationError(ReproError):
    """The warehouse simulation reached an inconsistent state.

    Attributes:
        query_id: query being processed when the failure occurred
            (-1 when no single query is responsible).
        release_time: simulated second of the failure (None if unknown).
        phase: simulation phase that failed (e.g. ``"fault-injection"``,
            ``"fault-validation"``, ``"recovery-cascade"``,
            ``"dispatch"``).
        cluster_size: robots in the conflict cluster under recovery
            when the failure occurred (None outside joint recovery).
        strategy: recovery strategy in effect — ``"serial"``,
            ``"prioritised"`` or ``"cbs"`` (None outside recovery).
    """

    def __init__(
        self,
        message: str,
        *,
        query_id: int = -1,
        release_time: Optional[int] = None,
        phase: Optional[str] = None,
        cluster_size: Optional[int] = None,
        strategy: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.query_id = query_id
        self.release_time = release_time
        self.phase = phase
        self.cluster_size = cluster_size
        self.strategy = strategy

    def diagnostics(self) -> Dict[str, object]:
        """The structured fields that are actually set, as a dict."""
        fields: Dict[str, object] = {}
        if self.query_id != -1:
            fields["query_id"] = self.query_id
        if self.release_time is not None:
            fields["release_time"] = self.release_time
        if self.phase is not None:
            fields["phase"] = self.phase
        if self.cluster_size is not None:
            fields["cluster_size"] = self.cluster_size
        if self.strategy is not None:
            fields["strategy"] = self.strategy
        return fields

    def __str__(self) -> str:
        base = super().__str__()
        extras = " ".join(f"{k}={v}" for k, v in self.diagnostics().items())
        return f"{base} [{extras}]" if extras else base


class CollisionError(SimulationError):
    """Executed routes were found to collide (validator failure)."""
