"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class LayoutError(ReproError):
    """A warehouse layout is malformed or violates generator constraints."""


class InvalidQueryError(ReproError):
    """A route planning query references unusable cells.

    Raised when the origin or destination lies outside the warehouse,
    or when an endpoint is unreachable (e.g. a rack cell with no adjacent
    aisle cell).
    """


class PlanningFailedError(ReproError):
    """No collision-free route could be found for a query.

    The strip-based planner raises this only after its grid-level A*
    fallback has also failed, which indicates a genuinely infeasible
    instance (e.g. destination permanently blocked).
    """


class SimulationError(ReproError):
    """The warehouse simulation reached an inconsistent state."""


class CollisionError(SimulationError):
    """Executed routes were found to collide (validator failure)."""
