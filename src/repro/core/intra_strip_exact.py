"""Exact time-expanded route search within one strip.

The paper's Algorithm 2 is greedy: run at the target, stop right before
a collision, wait, retry — and never move backward.  Section VII-A
analyses the sub-optimality this causes (intra-strip backtracking
restriction, Fig. 13).  This module provides the exact counterpart: a
uniform-cost search over (time, position) states inside one strip that
finds the *earliest-arrival* plan, optionally allowing backward moves.

It is deliberately more expensive than the greedy search — one store
probe per unit action instead of one per obstacle — and exists for two
purposes:

* an ablation axis (`SRPPlanner(intra_exact=True)`) quantifying how
  much route quality the greedy restriction costs in practice;
* a reference implementation for correctness tests of the greedy one.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.core.intra_strip import IntraPlan
from repro.core.segments import Segment
from repro.core.store_base import SegmentStore


def plan_within_strip_exact(
    store: SegmentStore,
    start_time: int,
    origin: int,
    destination: int,
    strip_length: Optional[int] = None,
    allow_backward: bool = False,
    max_expansions: int = 4000,
    max_wait: int = 64,
) -> Optional[IntraPlan]:
    """Earliest-arrival plan within a strip via time-expanded search.

    Args:
        strip_length: positions are restricted to ``[0, strip_length)``;
            defaults to the span covered by origin/destination (backward
            moves beyond that need the true length).
        allow_backward: lift the paper's no-backward-moves restriction
            (the Fig. 13 ablation).  The returned plan still consists of
            unit-speed segments.
        max_wait: bound on total extra time over the free-flow distance
            (the search horizon).

    Returns:
        An :class:`IntraPlan` whose ``segments`` chain from the start
        state to the destination, or None when no plan exists within
        the horizon / expansion budget.
    """
    if strip_length is None:
        strip_length = max(origin, destination) + 1
    if not (0 <= origin < strip_length and 0 <= destination < strip_length):
        raise ValueError("origin/destination outside the strip")

    expansions = 0

    def blocked_action(t: int, p_from: int, p_to: int) -> bool:
        nonlocal expansions
        expansions += 1
        return (
            store.earliest_conflict(Segment(t, p_from, t + 1, p_to)) is not None
        )

    # Standing at the start state must be conflict-free.
    if store.earliest_conflict(Segment(start_time, origin, start_time, origin)) is not None:
        return None
    if origin == destination:
        return IntraPlan([], start_time, start_time, expansions)

    deadline = start_time + abs(destination - origin) + max_wait
    if allow_backward:
        moves = (0, 1, -1)
    else:
        direction = 1 if destination > origin else -1
        moves = (0, direction)

    start = (start_time, origin)
    parents: Dict[Tuple[int, int], Optional[Tuple[int, int]]] = {start: None}
    heap: List[Tuple[int, int]] = [start]  # ordered by (time, pos)
    goal: Optional[Tuple[int, int]] = None
    while heap:
        t, p = heapq.heappop(heap)
        if p == destination:
            goal = (t, p)
            break
        if t >= deadline or expansions >= max_expansions:
            break
        for dp in moves:
            p2 = p + dp
            if not 0 <= p2 < strip_length:
                continue
            state = (t + 1, p2)
            if state in parents:
                continue
            if blocked_action(t, p, p2):
                continue
            parents[state] = (t, p)
            heapq.heappush(heap, state)
    if goal is None:
        return None

    # Reconstruct positions, then compress into maximal segments.
    chain: List[Tuple[int, int]] = []
    state: Optional[Tuple[int, int]] = goal
    while state is not None:
        chain.append(state)
        state = parents[state]
    chain.reverse()
    segments = _compress_chain(chain)
    return IntraPlan(segments, start_time, goal[0], expansions)


def _compress_chain(chain: List[Tuple[int, int]]) -> List[Segment]:
    """Collapse a (time, position) chain into maximal move/wait segments."""
    segments: List[Segment] = []
    run_start = chain[0]
    prev = chain[0]
    slope: Optional[int] = None
    for state in chain[1:]:
        step = state[1] - prev[1]
        if slope is not None and step != slope:
            if prev[0] > run_start[0]:
                segments.append(Segment(*run_start, *prev))
            run_start = prev
        slope = step
        prev = state
    if prev[0] > run_start[0]:
        segments.append(Segment(*run_start, *prev))
    return segments
