"""Ordered-set collision detection (Section V-B).

Segments are kept in a list ordered by start time (the paper suggests a
red-black tree; a Python list with :mod:`bisect` gives the same
O(log n) lookup and is faster in practice for the sizes involved).

``earliest_conflict`` binary-searches for the prefix of segments whose
start time does not exceed the query's finish time, filters the prefix
by time-span overlap, and judges the survivors one by one with the
geometry of Eq. (2)/(3) — the O(2 log n + n) procedure of the paper's
Section V-B remarks.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional

from repro.core.segments import Segment
from repro.core.store_base import ConflictHit, SegmentStore
from repro.geometry.collision import conflict_between_segments


class NaiveSegmentStore(SegmentStore):
    """Section V-B's baseline store: one time-ordered list per strip."""

    __slots__ = ("queries", "judged", "_segments", "_max_duration")

    def __init__(self) -> None:
        super().__init__()
        self._segments: List[Segment] = []
        self._max_duration = 0

    def insert(self, segment: Segment) -> None:
        bisect.insort(self._segments, segment, key=lambda s: s.t0)
        if segment.duration > self._max_duration:
            self._max_duration = segment.duration

    def earliest_conflict(self, segment: Segment) -> Optional[ConflictHit]:
        self.queries += 1
        # Every potential collider overlaps our span, so it starts no
        # later than our finish and no earlier than our start minus the
        # longest stored duration: a O(log n) window on the sorted list.
        lo = bisect.bisect_left(
            self._segments, segment.t0 - self._max_duration, key=lambda s: s.t0
        )
        end = bisect.bisect_right(self._segments, segment.t1, key=lambda s: s.t0)
        best: Optional[ConflictHit] = None
        for idx in range(lo, end):
            other = self._segments[idx]
            if other.t1 < segment.t0:
                continue  # span ended before ours begins
            self.judged += 1
            conflict = conflict_between_segments(segment, other)
            if conflict is not None and (best is None or conflict.blocked_time < best[0]):
                best = (conflict.blocked_time, other)
                if best[0] <= segment.t0:
                    break  # cannot get earlier than our own start
        return best

    def iter_segments(self) -> Iterator[Segment]:
        return iter(self._segments)

    def prune(self, before: int) -> int:
        kept = [s for s in self._segments if s.t1 >= before]
        dropped = len(self._segments) - len(kept)
        self._segments = kept
        return dropped

    def clear(self) -> None:
        self._segments.clear()

    def __len__(self) -> int:
        return len(self._segments)
