"""Ordered-set collision detection (Section V-B).

Segments are kept in a list ordered by start time (the paper suggests a
red-black tree; a Python list with :mod:`bisect` gives the same
O(log n) lookup and is faster in practice for the sizes involved).

``earliest_conflict`` binary-searches for the prefix of segments whose
start time does not exceed the query's finish time, filters the prefix
by time-span overlap, and judges the survivors one by one with the
geometry of Eq. (2)/(3) — the O(2 log n + n) procedure of the paper's
Section V-B remarks.

A parallel plain-int list of start times backs every binary search, so
``bisect`` runs entirely in C instead of calling a Python ``key``
lambda O(log n) times per probe — this store sits on the hot loop of
every intra-strip search.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

from repro.core.segments import Segment
from repro.core.store_base import FOREVER, ConflictHit, SegmentStore, _band_time_interval
from repro.geometry.collision import conflict_between_segments


class NaiveSegmentStore(SegmentStore):
    """Section V-B's baseline store: one time-ordered list per strip."""

    __slots__ = (
        "queries",
        "judged",
        "version",
        "last_end",
        "_segments",
        "_starts",
        "_max_duration",
    )

    def __init__(self) -> None:
        super().__init__()
        self._segments: List[Segment] = []
        #: start times parallel to _segments (plain ints for C-speed bisect)
        self._starts: List[int] = []
        self._max_duration = 0

    def insert(self, segment: Segment, owner: int = -1) -> None:
        idx = bisect.bisect_right(self._starts, segment.t0)
        self._starts.insert(idx, segment.t0)
        self._segments.insert(idx, segment)
        if segment.duration > self._max_duration:
            self._max_duration = segment.duration
        self._bump_insert(segment)

    def remove(self, segment: Segment) -> None:
        # All stored instances of a start time sit in one contiguous
        # bisect window.  Insert appends at the *end* of the window, so
        # removing the *last* value-equal instance is its exact inverse:
        # an insert-then-remove round trip restores the list bit-for-bit
        # even with value-equal duplicates interleaved with other ties.
        lo = bisect.bisect_left(self._starts, segment.t0)
        hi = bisect.bisect_right(self._starts, segment.t0, lo)
        for idx in reversed(range(lo, hi)):
            if self._segments[idx] == segment:
                del self._segments[idx]
                del self._starts[idx]
                if segment.duration == self._max_duration:
                    self._max_duration = max(
                        (s.duration for s in self._segments), default=0
                    )
                self._bump_version()
                return
        raise KeyError(f"segment {segment!r} not stored")

    def earliest_conflict(self, segment: Segment) -> Optional[ConflictHit]:
        self.queries += 1
        # Every potential collider overlaps our span, so it starts no
        # later than our finish and no earlier than our start minus the
        # longest stored duration: a O(log n) window on the sorted list.
        lo = bisect.bisect_left(self._starts, segment.t0 - self._max_duration)
        end = bisect.bisect_right(self._starts, segment.t1)
        best: Optional[ConflictHit] = None
        for idx in range(lo, end):
            other = self._segments[idx]
            if other.t1 < segment.t0:
                continue  # span ended before ours begins
            self.judged += 1
            conflict = conflict_between_segments(segment, other)
            if conflict is not None and (best is None or conflict.blocked_time < best[0]):
                best = (conflict.blocked_time, other)
                if best[0] <= segment.t0:
                    break  # cannot get earlier than our own start
        return best

    def iter_segments(self) -> Iterator[Segment]:
        return iter(self._segments)

    def free_window(
        self, lo: int, hi: int, t0: int, t1: int
    ) -> Optional[Tuple[int, int]]:
        # Same semantics as the base implementation, but iterating the
        # flat list directly: this runs once per free-flow certification
        # on the planner's hot path.
        w_lo, w_hi = 0, FOREVER
        for segment in self._segments:
            interval = _band_time_interval(segment, lo, hi)
            if interval is None:
                continue
            a, b = interval
            if a <= t1 and b >= t0:
                return None
            if b < t0:
                if b >= w_lo:
                    w_lo = b + 1
            elif a - 1 < w_hi:
                w_hi = a - 1
        return w_lo, w_hi

    # band_signature: the base implementation already walks
    # iter_segments in this store's candidate scan order (start time
    # ascending, insertion order among ties).

    def prune(self, before: int) -> int:
        kept = [s for s in self._segments if s.t1 >= before]
        dropped = len(self._segments) - len(kept)
        if dropped:
            self._segments = kept
            self._starts = [s.t0 for s in kept]
            # Recompute from the survivors so the candidate window does
            # not stay inflated by long-gone long segments.
            self._max_duration = max((s.duration for s in kept), default=0)
            self._bump_version()
        return dropped

    def clear(self) -> None:
        if not self._segments:
            self.last_end = -1  # scalar reset only; nothing to invalidate
            return
        self._segments.clear()
        self._starts.clear()
        self._max_duration = 0
        self.last_end = -1
        self._bump_version()

    def __len__(self) -> int:
        return len(self._segments)
