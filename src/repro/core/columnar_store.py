"""Columnar (array-backed) segment store: the slope index, vectorised.

:class:`ColumnarSegmentStore` answers exactly the same queries as
:class:`repro.core.slope_index.SlopeIndexedStore` — same blocked times,
same reported blocking segment under ties, same version/``last_end``
contract — but stores segments as seven parallel flat integer columns
(``array('q')``) sorted by start time instead of one Python object per
segment:

``t0 | t1 | p0 | p1 | slope | intercept | owner``

The layout buys three things the object-per-segment stores cannot offer:

* **Vectorised collision filtering.**  A candidate window is a single
  ``bisect`` pair on the ``t0`` column; for congested strips the
  per-candidate conflict arithmetic (Definition 6's vertex/swap cases)
  runs as numpy masks over zero-copy ``int64`` views of the columns,
  replacing the per-segment Python loop.  Small windows take a scalar
  fast path — numpy's per-op overhead loses to a short Python loop.
* **Batched occupancy scans.**  :meth:`first_occupied` and
  :meth:`clear_entry_time` answer a whole time span per call from one
  column scan, where the object stores replay per-second point probes.
* **An incremental per-band interval index.**  Every segment's covered
  time interval per 16-cell position band is kept sorted per band with
  a parallel prefix-max of interval ends, so :meth:`band_clear` decides
  "no stored segment touches this band during this span" with one
  ``bisect`` and one comparison per band — O(log n) *negative* answers
  for :meth:`earliest_conflict`, :meth:`first_occupied`,
  :meth:`clear_entry_time` and :meth:`free_window`, and the free-flow
  fast path in the inter-strip search.  :meth:`scan_cost_hint` exposes
  the indexed entry count so the certificate layer can judge minting
  profitability per probe region instead of via the blanket
  ``_CERT_STORE_MAX`` size throttle (:attr:`cheap_scans`).

Tie-break contract (must match the slope index bit-for-bit): the
reported conflict is the minimum over candidates of the key
``(blocked_time, class_rank, column_index)`` where ``class_rank`` is 0
for same-slope candidates and otherwise 1 + the position of the
candidate's slope class in the slope index's fixed ``(0, 1, -1)`` scan
order with the probe's own class skipped.  Restricting the t0-sorted
combined columns to one slope class reproduces that class's per-slope
list order (both are bisect-right insertion orders on ``t0``), so this
key reproduces the slope index's "same-slope first, then classes in
scan order, strict ``<`` within a class" selection exactly.

Zero-copy views and resize safety: numpy views are built with
``np.frombuffer`` over the live ``array('q')`` buffers and cached until
the next mutation.  CPython refuses to resize an array whose buffer is
exported, so every mutating method drops the cached views *before*
touching a column; query methods never let a view escape.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right, insort
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.core.segments import Segment
from repro.core.store_base import (
    FOREVER,
    BandSignature,
    ConflictHit,
    SegmentStore,
    _band_time_interval,
)

#: Width (cells) of the position bands of the free-window interval index.
BAND_WIDTH = 16

#: Candidate-window sizes up to this run the scalar loop; larger windows
#: go through the numpy path.  Crossover measured on the hot-path bench.
_SCALAR_MAX = 32

#: Sentinel larger than any real blocked time (times fit in well under
#: 62 bits; FOREVER is 2**60).
_SENT = 1 << 62

#: ``(probe_slope, candidate_slope) -> tie-break rank`` reproducing the
#: slope index's scan order: same slope first (rank 0), then the classes
#: ``(0, 1, -1)`` in order with the probe's own class skipped.
_CLASS_RANK: Dict[Tuple[int, int], int] = {}
for _m in (-1, 0, 1):
    _rank = 1
    for _k in (0, 1, -1):
        if _k == _m:
            _CLASS_RANK[(_m, _k)] = 0
        else:
            _CLASS_RANK[(_m, _k)] = _rank
            _rank += 1
del _m, _k, _rank


class ColumnarSegmentStore(SegmentStore):
    """Array-backed store, bit-compatible with the slope index.

    See the module docstring for the layout and the tie-break contract.
    Instrumentation note: :attr:`judged` counts window candidates whose
    time span can overlap the probe (the work the scan actually touches)
    rather than the slope index's per-bucket judgement count; only
    slope-index-specific tests depend on the exact ``judged`` value.
    """

    cheap_scans = True

    __slots__ = (
        "queries", "judged", "version", "last_end",
        "_t0", "_t1", "_p0", "_p1", "_k", "_c", "_own",
        "_max_duration", "_bands", "_maxb", "_np",
    )

    def __init__(self) -> None:
        super().__init__()
        self._t0 = array("q")
        self._t1 = array("q")
        self._p0 = array("q")
        self._p1 = array("q")
        self._k = array("q")
        self._c = array("q")
        self._own = array("q")
        #: longest stored duration; bounds the bisect window of every scan
        self._max_duration = 0
        #: band index -> sorted [(enter, exit)] over stored segments
        self._bands: Dict[int, List[Tuple[int, int]]] = {}
        #: band index -> prefix maxima of the exits in ``_bands[band]``
        #: (``_maxb[band][i] == max(exit for _, exit in _bands[band][:i+1])``),
        #: so "any interval overlapping [t0, t1]?" is one bisect + one
        #: comparison instead of a scan
        self._maxb: Dict[int, List[int]] = {}
        #: cached zero-copy int64 views of the columns (dropped on mutation)
        self._np: Optional[Tuple[NDArray[np.int64], ...]] = None

    # ------------------------------------------------------------------
    # views
    def _views(self) -> Tuple[NDArray[np.int64], ...]:
        views = self._np
        if views is None:
            views = tuple(
                np.frombuffer(col, dtype=np.int64)
                for col in (self._t0, self._t1, self._p0, self._p1,
                            self._k, self._c, self._own)
            )
            self._np = views
        return views

    # ------------------------------------------------------------------
    # mutation
    def insert(self, segment: Segment, owner: int = -1) -> None:
        self._np = None  # release buffer exports before resizing
        t0 = segment.t0
        idx = bisect_right(self._t0, t0)
        self._t0.insert(idx, t0)
        self._t1.insert(idx, segment.t1)
        self._p0.insert(idx, segment.p0)
        self._p1.insert(idx, segment.p1)
        self._k.insert(idx, segment.slope)
        self._c.insert(idx, segment.intercept)
        self._own.insert(idx, owner)
        duration = segment.t1 - t0
        if duration > self._max_duration:
            self._max_duration = duration
        p0, p1 = segment.p0, segment.p1
        pmin, pmax = (p0, p1) if p0 <= p1 else (p1, p0)
        for band in range(pmin // BAND_WIDTH, pmax // BAND_WIDTH + 1):
            interval = _band_time_interval(
                segment, band * BAND_WIDTH, band * BAND_WIDTH + BAND_WIDTH - 1
            )
            assert interval is not None  # band range intersects [pmin, pmax]
            entries = self._bands.get(band)
            if entries is None:
                self._bands[band] = [interval]
                self._maxb[band] = [interval[1]]
            else:
                at = bisect_right(entries, interval)
                entries.insert(at, interval)
                maxb = self._maxb[band]
                exit_t = interval[1]
                prev = maxb[at - 1] if at > 0 else -1
                maxb.insert(at, exit_t if exit_t > prev else prev)
                # Entries after ``at`` already hold the prefix-max over
                # everything before them except the new interval, so the
                # new exit only needs folding in until it stops winning —
                # the old running max is non-decreasing, so the first
                # slot it does not raise ends the walk.
                for j in range(at + 1, len(maxb)):
                    if maxb[j] < exit_t:
                        maxb[j] = exit_t
                    else:
                        break
        self._bump_insert(segment)

    def remove(self, segment: Segment) -> None:
        t0 = segment.t0
        lo = bisect_left(self._t0, t0)
        hi = bisect_right(self._t0, t0, lo)
        found = -1
        for i in range(lo, hi):
            if (
                self._t1[i] == segment.t1
                and self._p0[i] == segment.p0
                and self._p1[i] == segment.p1
            ):
                found = i  # keep scanning: drop the *last* equal instance
        if found < 0:
            raise KeyError(f"segment {segment!r} not stored")
        self._np = None  # release buffer exports before resizing
        duration = segment.t1 - t0
        del self._t0[found]
        del self._t1[found]
        del self._p0[found]
        del self._p1[found]
        del self._k[found]
        del self._c[found]
        del self._own[found]
        p0, p1 = segment.p0, segment.p1
        pmin, pmax = (p0, p1) if p0 <= p1 else (p1, p0)
        for band in range(pmin // BAND_WIDTH, pmax // BAND_WIDTH + 1):
            interval = _band_time_interval(
                segment, band * BAND_WIDTH, band * BAND_WIDTH + BAND_WIDTH - 1
            )
            assert interval is not None
            entries = self._bands[band]
            at = bisect_left(entries, interval)
            entries.pop(at)
            maxb = self._maxb[band]
            maxb.pop()
            if not entries:
                del self._bands[band]
                del self._maxb[band]
            else:
                run = maxb[at - 1] if at > 0 else -1
                for j in range(at, len(entries)):
                    end = entries[j][1]
                    if end > run:
                        run = end
                    maxb[j] = run
        if duration == self._max_duration:
            self._recompute_max_duration()
        self._bump_version()

    def prune(self, before: int) -> int:
        n = len(self._t0)
        if n == 0:
            return 0
        keep = [i for i in range(n) if self._t1[i] >= before]
        dropped = n - len(keep)
        if dropped == 0:
            return 0
        self._np = None  # old columns die with their buffer exports
        self._t0 = array("q", [self._t0[i] for i in keep])
        self._t1 = array("q", [self._t1[i] for i in keep])
        self._p0 = array("q", [self._p0[i] for i in keep])
        self._p1 = array("q", [self._p1[i] for i in keep])
        self._k = array("q", [self._k[i] for i in keep])
        self._c = array("q", [self._c[i] for i in keep])
        self._own = array("q", [self._own[i] for i in keep])
        self._bands = {}
        for i in range(len(self._t0)):
            segment = Segment(self._t0[i], self._p0[i], self._t1[i], self._p1[i])
            pmin = segment.p0 if segment.p0 <= segment.p1 else segment.p1
            pmax = segment.p0 if segment.p0 >= segment.p1 else segment.p1
            for band in range(pmin // BAND_WIDTH, pmax // BAND_WIDTH + 1):
                interval = _band_time_interval(
                    segment,
                    band * BAND_WIDTH,
                    band * BAND_WIDTH + BAND_WIDTH - 1,
                )
                assert interval is not None
                insort(self._bands.setdefault(band, []), interval)
        self._maxb = {}
        for band, entries in self._bands.items():
            run = -1
            maxb = []
            for _enter, end in entries:
                if end > run:
                    run = end
                maxb.append(run)
            self._maxb[band] = maxb
        self._recompute_max_duration()
        self._bump_version()
        return dropped

    def clear(self) -> None:
        if len(self._t0) == 0:
            self.last_end = -1
            return
        self._np = None
        self._t0 = array("q")
        self._t1 = array("q")
        self._p0 = array("q")
        self._p1 = array("q")
        self._k = array("q")
        self._c = array("q")
        self._own = array("q")
        self._max_duration = 0
        self._bands = {}
        self._maxb = {}
        self.last_end = -1
        self._bump_version()

    def _recompute_max_duration(self) -> None:
        best = 0
        t0, t1 = self._t0, self._t1
        for i in range(len(t0)):
            duration = t1[i] - t0[i]
            if duration > best:
                best = duration
        self._max_duration = best

    # ------------------------------------------------------------------
    # queries
    def __len__(self) -> int:
        return len(self._t0)

    def iter_segments(self) -> Iterator[Segment]:
        for i in range(len(self._t0)):
            yield Segment(self._t0[i], self._p0[i], self._t1[i], self._p1[i])

    def _window(self, t_lo: int, t_hi: int) -> Tuple[int, int]:
        """Column range of candidates whose time span can touch [t_lo, t_hi]."""
        lo = bisect_left(self._t0, t_lo - self._max_duration)
        hi = bisect_right(self._t0, t_hi, lo)
        return lo, hi

    def band_clear(self, lo: int, hi: int, t0: int, t1: int) -> bool:
        """True when *no* stored segment touches band [lo, hi] in [t0, t1].

        Decided purely from the per-band interval index: a segment
        inside the band during the span would put its (band-aligned,
        hence superset) time interval in overlap with ``[t0, t1]``, so
        "no indexed interval overlaps" soundly certifies the negative.
        One ``bisect`` plus one prefix-max comparison per band; ``False``
        only means "cannot certify cheaply" (the band over-covers
        ``[lo, hi]``), never "there is a conflict".
        """
        bands = self._bands
        maxbs = self._maxb
        for band in range(lo // BAND_WIDTH, hi // BAND_WIDTH + 1):
            entries = bands.get(band)
            if not entries:
                continue
            # entries with enter <= t1, as a sorted prefix
            n = bisect_right(entries, (t1, _SENT))
            if n and maxbs[band][n - 1] >= t0:
                return False
        return True

    def scan_cost_hint(self, lo: int, hi: int, t0: int, t1: int) -> int:
        """Indexed entries a scan of band [lo, hi] x [t0, t1] would touch.

        Counts band-index intervals starting by ``t1`` in the covering
        bands — an upper-bound proxy for how much work certificate
        minting (and the certificate's own survival odds) would cost
        against this region.  Two bisects per band, no column access.
        """
        total = 0
        bands = self._bands
        for band in range(lo // BAND_WIDTH, hi // BAND_WIDTH + 1):
            entries = bands.get(band)
            if entries:
                total += bisect_right(entries, (t1, _SENT)) - bisect_left(
                    entries, (t0 - self._max_duration, -_SENT)
                )
        return total

    def earliest_conflict(self, segment: Segment) -> Optional[ConflictHit]:
        self.queries += 1
        if len(self._t0) == 0 or segment.t0 > self.last_end:
            return None
        p0, p1 = segment.p0, segment.p1
        if self.band_clear(
            p0 if p0 <= p1 else p1, p1 if p0 <= p1 else p0, segment.t0, segment.t1
        ):
            # Every conflict kind (same-line, crossing, swap) puts the
            # blocking segment inside the probe's position range at a
            # second within the probe's span — impossible when the band
            # index is clear there.
            return None
        lo, hi = self._window(segment.t0, segment.t1)
        if lo >= hi:
            return None
        if hi - lo <= _SCALAR_MAX:
            return self._conflict_scalar(segment, lo, hi)
        return self._conflict_vector(segment, lo, hi)

    def _conflict_scalar(
        self, segment: Segment, lo: int, hi: int
    ) -> Optional[ConflictHit]:
        t0a, t1a = self._t0, self._t1
        ka, ca = self._k, self._c
        qt0, qt1 = segment.t0, segment.t1
        m, cq = segment.slope, segment.intercept
        judged = 0
        best_t = 0
        best_rank = 0
        best_i = -1
        for i in range(lo, hi):
            if t1a[i] < qt0:
                continue
            judged += 1
            ot0 = t0a[i]
            low = qt0 if qt0 > ot0 else ot0
            high = qt1 if qt1 < t1a[i] else t1a[i]
            k = ka[i]
            if k == m:
                if ca[i] != cq:
                    continue
                cand = low
            else:
                den = k - m
                num = cq - ca[i]
                if den < 0:
                    den = -den
                    num = -num
                if den == 1:
                    if num < low or num > high:
                        continue
                    cand = num
                elif num & 1:
                    after = ((num - 1) >> 1) + 1
                    if after - 1 < low or after > high:
                        continue
                    cand = after
                else:
                    cand = num >> 1
                    if cand < low or cand > high:
                        continue
            rank = _CLASS_RANK[(m, k)]
            if best_i < 0 or cand < best_t or (cand == best_t and rank < best_rank):
                best_t, best_rank, best_i = cand, rank, i
                if best_t <= qt0 and best_rank == 0:
                    break
        self.judged += judged
        if best_i < 0:
            return None
        return best_t, Segment(
            self._t0[best_i], self._p0[best_i], self._t1[best_i], self._p1[best_i]
        )

    def _conflict_vector(
        self, segment: Segment, lo: int, hi: int
    ) -> Optional[ConflictHit]:
        views = self._views()
        t0s = views[0][lo:hi]
        t1s = views[1][lo:hi]
        ks = views[4][lo:hi]
        cs = views[5][lo:hi]
        qt0, qt1 = segment.t0, segment.t1
        m, cq = segment.slope, segment.intercept
        alive = t1s >= qt0  # t0s <= qt1 already holds by window construction
        self.judged += int(np.count_nonzero(alive))
        low = np.maximum(t0s, qt0)
        high = np.minimum(t1s, qt1)
        blocked = np.full(hi - lo, _SENT, dtype=np.int64)
        same = alive & (ks == m) & (cs == cq)
        blocked[same] = low[same]
        den = ks - m
        num = cq - cs
        neg = den < 0
        num = np.where(neg, -num, num)
        aden = np.where(neg, -den, den)
        cross1 = alive & (aden == 1) & (num >= low) & (num <= high)
        blocked[cross1] = num[cross1]
        odd = (num & 1) == 1
        after = ((num - 1) >> 1) + 1
        cross_swap = (
            alive & (aden == 2) & odd & (after - 1 >= low) & (after <= high)
        )
        blocked[cross_swap] = after[cross_swap]
        vertex = num >> 1
        cross_vertex = (
            alive & (aden == 2) & ~odd & (vertex >= low) & (vertex <= high)
        )
        blocked[cross_vertex] = vertex[cross_vertex]
        best = int(blocked.min())
        if best >= _SENT:
            return None
        ties = np.nonzero(blocked == best)[0]
        best_i = int(ties[0])
        if ties.shape[0] > 1:
            best_rank = _CLASS_RANK[(m, int(ks[best_i]))]
            for raw in ties[1:].tolist():
                rank = _CLASS_RANK[(m, int(ks[raw]))]
                if rank < best_rank:
                    best_rank, best_i = rank, raw
        i = lo + best_i
        return best, Segment(self._t0[i], self._p0[i], self._t1[i], self._p1[i])

    # ------------------------------------------------------------------
    # batched occupancy scans
    def first_occupied(self, pos: int, t_lo: int, t_hi: int) -> Optional[int]:
        self.queries += 1
        if t_hi < t_lo or len(self._t0) == 0 or t_lo > self.last_end:
            # last_end is a monotone high-water mark over every stored
            # t1, so nothing can occupy any cell after it.
            return None
        # band_clear inlined for the single covering band — this is the
        # hottest store entry point (one call per crossing wait scan).
        entries = self._bands.get(pos // BAND_WIDTH)
        if not entries:
            return None
        n = bisect_right(entries, (t_hi, _SENT))
        if not n or self._maxb[pos // BAND_WIDTH][n - 1] < t_lo:
            return None
        lo, hi = self._window(t_lo, t_hi)
        if lo >= hi:
            return None
        if hi - lo <= _SCALAR_MAX:
            t0a, t1a, p0a, ka, ca = self._t0, self._t1, self._p0, self._k, self._c
            best = -1
            for i in range(lo, hi):
                if t1a[i] < t_lo:
                    continue
                k = ka[i]
                if k == 0:
                    if p0a[i] != pos:
                        continue
                    cand = t0a[i] if t0a[i] > t_lo else t_lo
                else:
                    cand = (pos - ca[i]) * k
                    if (
                        cand < t0a[i] or cand > t1a[i]
                        or cand < t_lo or cand > t_hi
                    ):
                        continue
                if best < 0 or cand < best:
                    best = cand
                    if best <= t_lo:
                        break
            return None if best < 0 else best
        views = self._views()
        t0s = views[0][lo:hi]
        t1s = views[1][lo:hi]
        p0s = views[2][lo:hi]
        ks = views[4][lo:hi]
        cs = views[5][lo:hi]
        occupied = np.full(hi - lo, _SENT, dtype=np.int64)
        waits = (ks == 0) & (p0s == pos) & (t1s >= t_lo)
        occupied[waits] = np.maximum(t0s[waits], t_lo)
        passes = (pos - cs) * ks
        moves = (
            (ks != 0)
            & (passes >= t0s) & (passes <= t1s)
            & (passes >= t_lo) & (passes <= t_hi)
        )
        occupied[moves] = passes[moves]
        best_v = int(occupied.min())
        return None if best_v >= _SENT else best_v

    def clear_entry_time(self, pos: int, t_from: int, t_cap: int) -> Optional[int]:
        self.queries += 1
        if t_from > t_cap:
            return None
        if len(self._t0) == 0 or t_from > self.last_end:
            return t_from
        # band_clear inlined for the single covering band (see
        # first_occupied).
        entries = self._bands.get(pos // BAND_WIDTH)
        if not entries:
            return t_from
        n = bisect_right(entries, (t_cap, _SENT))
        if not n or self._maxb[pos // BAND_WIDTH][n - 1] < t_from:
            return t_from
        lo, hi = self._window(t_from, t_cap)
        intervals: List[Tuple[int, int]] = []
        t0a, t1a, p0a, ka, ca = self._t0, self._t1, self._p0, self._k, self._c
        for i in range(lo, hi):
            if t1a[i] < t_from:
                continue
            k = ka[i]
            if k == 0:
                if p0a[i] != pos:
                    continue
                a, b = t0a[i], t1a[i]
            else:
                t_pass = (pos - ca[i]) * k
                if t_pass < t0a[i] or t_pass > t1a[i]:
                    continue
                a = b = t_pass
            if b < t_from or a > t_cap:
                continue
            intervals.append((a, b))
        if not intervals:
            return t_from
        intervals.sort()
        cursor = t_from
        for a, b in intervals:
            if a > cursor:
                return cursor
            if b >= cursor:
                cursor = b + 1
                if cursor > t_cap:
                    return None
        return cursor

    # ------------------------------------------------------------------
    # certificates
    def free_window(
        self, lo: int, hi: int, t0: int, t1: int
    ) -> Optional[Tuple[int, int]]:
        if not self.band_clear(lo, hi, t0, t1):
            # Some band interval overlaps the probe span; fall back to
            # the exact per-segment computation (the band over-covers
            # [lo, hi], so the exact scan may still find a window).
            return self._free_window_exact(lo, hi, t0, t1)
        w_lo, w_hi = 0, FOREVER
        for band in range(lo // BAND_WIDTH, hi // BAND_WIDTH + 1):
            entries = self._bands.get(band)
            if not entries:
                continue
            for a, b in entries:
                if b < t0:
                    if b >= w_lo:
                        w_lo = b + 1
                elif a - 1 < w_hi:
                    w_hi = a - 1
        # No band interval overlaps [t0, t1]: every stored segment is
        # outside the (band-aligned superset of the) queried band for the
        # whole span, and the bounds computed from the band intervals are
        # sound — possibly narrower than the exact maximal window, which
        # only costs certificate coverage, never correctness.
        return w_lo, w_hi

    def _free_window_exact(
        self, lo: int, hi: int, t0: int, t1: int
    ) -> Optional[Tuple[int, int]]:
        n = len(self._t0)
        if n <= _SCALAR_MAX:
            return super().free_window(lo, hi, t0, t1)
        views = self._views()
        t0s, t1s, p0s, p1s, ks = views[0], views[1], views[2], views[3], views[4]
        pmin = np.minimum(p0s, p1s)
        pmax = np.maximum(p0s, p1s)
        in_band = (pmax >= lo) & (pmin <= hi)
        if not bool(in_band.any()):
            return 0, FOREVER
        enter = np.where(
            ks == 0,
            t0s,
            np.where(
                ks == 1,
                t0s + np.maximum(lo - p0s, 0),
                t0s + np.maximum(p0s - hi, 0),
            ),
        )
        exit_ = np.where(
            ks == 0,
            t1s,
            np.where(
                ks == 1,
                np.minimum(t0s + (hi - p0s), t1s),
                np.minimum(t0s + (p0s - lo), t1s),
            ),
        )
        if bool((in_band & (enter <= t1) & (exit_ >= t0)).any()):
            return None
        w_lo, w_hi = 0, FOREVER
        below = in_band & (exit_ < t0)
        if bool(below.any()):
            w_lo = int(exit_[below].max()) + 1
        above = in_band & (enter > t1)
        if bool(above.any()):
            above_min = int(enter[above].min()) - 1
            if above_min < w_hi:
                w_hi = above_min
        return w_lo, w_hi

    def band_signature(self, lo: int, hi: int, t0: int, t1: int) -> BandSignature:
        n = len(self._t0)
        if n == 0:
            return ()
        if n <= _SCALAR_MAX:
            return super().band_signature(lo, hi, t0, t1)
        views = self._views()
        t0s, t1s, p0s, p1s = views[0], views[1], views[2], views[3]
        mask = (
            (t0s <= t1)
            & (t1s >= t0)
            & (np.minimum(p0s, p1s) <= hi)
            & (np.maximum(p0s, p1s) >= lo)
        )
        rows = np.nonzero(mask)[0].tolist()
        return tuple(
            (self._t0[i], self._p0[i], self._t1[i], self._p1[i]) for i in rows
        )

    # ------------------------------------------------------------------
    # audit
    def owners_overlapping(self, t0: int, t1: int) -> List[int]:
        """Sorted distinct owner query-ids with a segment alive in [t0, t1].

        Owners are recorded by :meth:`insert`; unattributed segments
        (owner -1, e.g. blockages) are excluded.  Advisory: value-equal
        segments from different owners are indistinguishable to
        remove-by-value, so after decommits of duplicated segments the
        surviving attribution may name either owner.
        """
        if len(self._t0) == 0:
            return []
        views = self._views()
        mask = (views[0] <= t1) & (views[1] >= t0) & (views[6] >= 0)
        owners = {int(o) for o in views[6][mask].tolist()}
        return sorted(owners)
