"""Grid-level A* fallback of the strip-based planner (Section VI, Remarks).

SRP's restrictions (no backward intra-strip moves, greedy transit,
single strip visit) occasionally leave no feasible route — the paper
measures roughly 1 in 10^5 queries.  In that case SRP "calls the A*
algorithm": a full space-time search at grid level, checked directly
against the per-strip segment stores and the crossing-event set so the
fallback route respects all previously committed traffic, and committed
back *as segments* so later strip-level queries plan around it.
"""

from __future__ import annotations

from typing import AbstractSet, Optional, Sequence, Union

from repro.core.inter_strip import CrossingKey
from repro.core.store_base import SegmentStore
from repro.core.strips import StripGraph
from repro.pathfinding.distance import DistanceMaps, StripDistanceMaps
from repro.pathfinding.space_time_astar import ConflictChecker, space_time_astar
from repro.types import Grid, Query, Route

#: anything with ``.get(target) -> dist_map``; SRP hands in the
#: strip-batched provider, the baselines keep exact per-cell maps
DistanceMapProvider = Union[DistanceMaps, StripDistanceMaps]


class SegmentStoreChecker:
    """Conflict checker that consults the per-strip segment stores.

    Within a strip a unit action maps to a one-second segment and uses
    the store's combined vertex/swap test.  A strip crossing is checked
    as the target-cell point occupancy plus the reverse crossing event,
    mirroring exactly what the strip-level planner commits, so the
    fallback stays mutually consistent with strip-level routes.
    """

    def __init__(
        self,
        graph: StripGraph,
        stores: Sequence[SegmentStore],
        crossings: AbstractSet[CrossingKey],
    ) -> None:
        self._graph = graph
        self._stores = stores
        self._crossings = crossings

    def move_blocked(self, a: Grid, b: Grid, t: int) -> bool:
        sa, pa = self._graph.locate(a)
        sb, pb = self._graph.locate(b)
        if sa == sb:
            return self._stores[sa].move_blocked(t, pa, pb)
        if self._stores[sb].occupied(pb, t + 1):
            return True
        return (b, a, t + 1) in self._crossings

    def cell_blocked(self, cell: Grid, t: int) -> bool:
        strip, pos = self._graph.locate(cell)
        return self._stores[strip].occupied(pos, t)


class RegionRestrictedChecker:
    """Checker wrapper that additionally forbids out-of-region strips.

    Space-time A* only sees the ``ConflictChecker`` protocol, so
    region-sharded planning restricts the fallback by reporting every
    cell outside the worker's strip set as permanently blocked.
    """

    def __init__(
        self,
        inner: SegmentStoreChecker,
        graph: StripGraph,
        allowed: Sequence[bool],
    ) -> None:
        self._inner = inner
        self._graph = graph
        self._allowed = allowed

    def move_blocked(self, a: Grid, b: Grid, t: int) -> bool:
        if not self._allowed[self._graph.strip_index_of(b)]:
            return True
        return self._inner.move_blocked(a, b, t)

    def cell_blocked(self, cell: Grid, t: int) -> bool:
        if not self._allowed[self._graph.strip_index_of(cell)]:
            return True
        return self._inner.cell_blocked(cell, t)


def fallback_plan(
    graph: StripGraph,
    stores: Sequence[SegmentStore],
    crossings: AbstractSet[CrossingKey],
    distance_maps: DistanceMapProvider,
    query: Query,
    max_expansions: int = 200_000,
    horizon_slack: int = 256,
    allowed: Optional[Sequence[bool]] = None,
) -> Optional[Route]:
    """Plan one query with space-time A* against the segment stores.

    ``distance_maps`` may be the exact per-cell :class:`DistanceMaps`
    or the strip-batched :class:`StripDistanceMaps` — A* only needs an
    admissible heuristic map, which both provide.

    ``allowed`` optionally restricts the search to cells whose strips
    pass the mask (region-sharded planning).
    """
    dist_map = distance_maps.get(query.destination)
    store_checker = SegmentStoreChecker(graph, stores, crossings)
    checker: ConflictChecker = store_checker
    if allowed is not None:
        checker = RegionRestrictedChecker(store_checker, graph, allowed)
    return space_time_astar(
        graph.warehouse,
        query.origin,
        query.destination,
        query.release_time,
        checker,
        dist_map,
        max_expansions=max_expansions,
        horizon_slack=horizon_slack,
    )
