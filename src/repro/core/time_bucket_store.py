"""Time-bucketed segment store — an extension beyond the paper.

The paper's two stores answer "which committed segments overlap this
time span?" with a binary search over start-time-sorted lists, paying
O(n) on insert (sorted-list shifts) and scanning a duration-padded
window on query.  This store hashes segments into fixed-width *time
buckets* instead:

* insert is O(span / bucket) appends, no sorting;
* a query touches exactly the buckets its span covers, so candidate
  retrieval is proportional to what is actually live in that window.

Within each bucket, same-slope conflicts still use the intercept trick
of Algorithm 3 (two parallel segments conflict only on the same line),
so the store is a drop-in third backend for the Fig. 22 ablation:
``SRPPlanner(store="bucket")``.

Segments longer than the bucket width span several buckets and are
deduplicated per query by identity.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.core.segments import Segment
from repro.core.store_base import BandSignature, ConflictHit, SegmentStore
from repro.geometry.collision import conflict_between_segments


class TimeBucketStore(SegmentStore):
    """Segments hashed into fixed-width time buckets."""

    __slots__ = (
        "queries",
        "judged",
        "version",
        "last_end",
        "_bucket_width",
        "_buckets",
        "_size",
    )

    def __init__(self, bucket_width: int = 16) -> None:
        super().__init__()
        if bucket_width < 1:
            raise ValueError("bucket width must be positive")
        self._bucket_width = bucket_width
        # bucket index -> segments whose span intersects the bucket
        self._buckets: Dict[int, List[Segment]] = {}
        self._size = 0

    # ------------------------------------------------------------------
    def _bucket_range(self, t0: int, t1: int) -> range:
        return range(t0 // self._bucket_width, t1 // self._bucket_width + 1)

    def insert(self, segment: Segment, owner: int = -1) -> None:
        for b in self._bucket_range(segment.t0, segment.t1):
            self._buckets.setdefault(b, []).append(segment)
        self._size += 1
        self._bump_insert(segment)

    def remove(self, segment: Segment) -> None:
        """Decommit one segment from every bucket its span covers.

        Buckets are append-ordered, so removal drops the *last*
        value-equal instance per bucket — the exact inverse of
        :meth:`insert`, keeping insert-then-remove round trips
        bit-identical even with value-equal duplicates present.
        """
        span = self._bucket_range(segment.t0, segment.t1)
        if any(segment not in self._buckets.get(b, ()) for b in span):
            raise KeyError(f"segment {segment!r} not stored")
        for b in span:
            bucket = self._buckets[b]
            for idx in reversed(range(len(bucket))):
                if bucket[idx] == segment:
                    del bucket[idx]
                    break
            if not bucket:
                del self._buckets[b]
        self._size -= 1
        self._bump_version()

    def earliest_conflict(self, segment: Segment) -> Optional[ConflictHit]:
        self.queries += 1
        best: Optional[ConflictHit] = None
        seen: Set[int] = set()
        for b in self._bucket_range(segment.t0, segment.t1):
            for other in self._buckets.get(b, ()):
                oid = id(other)  # srplint: allow(SRP007) per-query dedup membership; never ordered or persisted
                if oid in seen:
                    continue
                seen.add(oid)
                if other.t1 < segment.t0 or other.t0 > segment.t1:
                    continue
                if other.slope == segment.slope and other.intercept != segment.intercept:
                    continue  # parallel, different lines: cannot conflict
                self.judged += 1
                conflict = conflict_between_segments(segment, other)
                if conflict is not None and (
                    best is None or conflict.blocked_time < best[0]
                ):
                    best = (conflict.blocked_time, other)
                    if best[0] <= segment.t0:
                        return best
        return best

    # free_window: the base implementation scans iter_segments (with its
    # id-dedup) — a full pass either way, since the nearest blocked
    # times before/after the query span can live in any bucket.

    def band_signature(self, lo: int, hi: int, t0: int, t1: int) -> BandSignature:
        """Canonical fingerprint per the :class:`SegmentStore` contract.

        Unlike the list-backed stores, iteration order here follows
        bucket-dict insertion order, which is *not* content-determined —
        so the signature instead mirrors the probe scan order exactly:
        bucket indexes ascending across the region's span, append order
        within each bucket.  Equal signatures therefore reproduce the
        candidate sequence (and id-dedup behaviour) of every
        earliest_conflict probe confined to the region.
        """
        parts = []
        for b in self._bucket_range(t0, t1):
            bucket = self._buckets.get(b)
            if not bucket:
                continue
            raws = tuple(
                s.raw
                for s in bucket
                if s.t0 <= t1
                and s.t1 >= t0
                and (s.p0 if s.p0 <= s.p1 else s.p1) <= hi
                and (s.p0 if s.p0 >= s.p1 else s.p1) >= lo
            )
            if raws:
                parts.append((b, raws))
        return tuple(parts)

    # ------------------------------------------------------------------
    def iter_segments(self) -> Iterator[Segment]:
        seen: Set[int] = set()
        for bucket in self._buckets.values():
            for segment in bucket:
                sid = id(segment)  # srplint: allow(SRP007) per-call dedup membership; iteration order comes from the buckets, not the ids
                if sid not in seen:
                    seen.add(sid)
                    yield segment

    def prune(self, before: int) -> int:
        if all(
            segment.t1 >= before
            for bucket in self._buckets.values()
            for segment in bucket
        ):
            return 0  # no-op: the buckets (and the version) stay untouched
        dropped_ids: Set[int] = set()
        for b in list(self._buckets):
            bucket = self._buckets[b]
            kept = []
            for segment in bucket:
                if segment.t1 >= before:
                    kept.append(segment)
                else:
                    dropped_ids.add(id(segment))  # srplint: allow(SRP007) counted for cardinality only; ids never ordered or persisted
            if kept:
                self._buckets[b] = kept
            else:
                del self._buckets[b]
        self._size -= len(dropped_ids)
        self._bump_version()
        return len(dropped_ids)

    def clear(self) -> None:
        if not self._size:
            self.last_end = -1  # scalar reset only; nothing to invalidate
            return
        self._buckets.clear()
        self._size = 0
        self.last_end = -1
        self._bump_version()

    def __len__(self) -> int:
        return self._size
