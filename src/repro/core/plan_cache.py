"""Versioned memoisation of intra-strip planning results.

The inter-strip Dijkstra (Algorithm 4) treats the intra-strip planner
(Algorithm 2) as its edge-weight oracle, so the same
``plan_within_strip(store, t, origin, destination)`` call is issued
again and again — within one query (completion tails are retried per
incoming edge), across the release-delay retry loop, and across
queries whose routes do not touch the same strips.  Each call re-walks
the strip's committed traffic from scratch even when nothing changed.

:class:`PlanCache` memoises those calls keyed by

``(strip, origin, destination, start_time, store_version)``

where ``store_version`` is the :class:`~repro.core.store_base.SegmentStore`
content version.  A store's version changes exactly when its contents
change (and versions are drawn from a process-global monotone counter,
so no two content states — even of different store incarnations for the
same strip — ever share one).  A cached entry is therefore *never*
stale: no explicit invalidation hooks, no TTLs, and cached-on planning
is bit-for-bit identical to cached-off planning.

Exact per-second keys alone almost never repeat on a steady online
query stream (~1% hit rates), so the search layers three additional
entry families into the same LRU, distinguished by a negative integer
tag as the key's first element (real strip indexes are >= 0, so the
families can never collide with the exact keys):

* ``(WINDOW_TAG, strip, origin, destination, store_version)`` —
  *free-flow window certificates*: a flat tuple of ``(w_lo, w_hi)``
  pairs from :meth:`~repro.core.store_base.SegmentStore.free_window`,
  each certifying that the strip's position band ``[origin, dest]`` is
  free of committed traffic anywhere in ``[w_lo, w_hi]``.  Any start
  time whose whole move span fits inside a window hits, and the
  free-flow plan is rebuilt by :func:`free_flow_plan` — no search.
* ``(SHIFT_TAG, strip, origin, destination, start_time)`` — a
  *shift-invariance certificate* ``(store_version, horizon,
  band_signature, encoded_plan)`` for partially-congested strips: the
  greedy search only ever probes the band over ``[start_time,
  horizon]``, so when the band's
  :meth:`~repro.core.store_base.SegmentStore.band_signature` over that
  region is unchanged the cached plan is *provably* what a fresh
  search would return, even though the store version moved on.
* ``(CROSSING_TAG, from_strip, to_strip, t, from_pos, to_pos,
  from_version, to_version, ledger_version)`` — memoised boundary
  crossings; the value is the arrival second (or ``None``), from which
  the full crossing result is reconstructed.

Every family is version-checked (never heuristically invalidated), so
the bit-identity guarantee survives decommit/replan recovery unchanged.

Failed searches (``None`` results) are cached too — the negative cache.
A failed intra-strip search is the most expensive kind (it burns the
whole expansion budget), and the planner's release-delay retry loop
tends to repeat it verbatim.

The cache is LRU-bounded.  Eviction only costs recomputation, never
correctness.

Plans are stored *encoded* as flat tuples of ints
(:func:`encode_plan` / :func:`decode_plan`) rather than as live
:class:`~repro.core.intra_strip.IntraPlan` object graphs.  CPython
untracks tuples that contain only atomic values, so encoded entries
drop out of cyclic-GC scans entirely — retaining tens of thousands of
plan objects otherwise makes every full collection measurably slower,
which silently taxes *all* phases of the planner.  Decoding also hands
every hit a fresh plan, so cached results can never alias committed
ones.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

from repro.core.intra_strip import IntraPlan
from repro.core.segments import Segment, make_move

#: sentinel distinguishing "not cached" from a cached negative result
MISSING = object()

#: key-family tags (first key element; strip indexes are >= 0)
WINDOW_TAG = -1
SHIFT_TAG = -2
CROSSING_TAG = -3

#: (strip, origin, destination, start_time, store_version)
CacheKey = Tuple[int, int, int, int, int]

#: (start_time, arrival_time, expansions, then 4 ints per segment)
EncodedPlan = Tuple[int, ...]


def encode_plan(plan: IntraPlan) -> EncodedPlan:
    """Flatten a plan into a GC-untrackable tuple of ints."""
    parts = [plan.start_time, plan.arrival_time, plan.expansions]
    for s in plan.segments:
        parts.append(s.t0)
        parts.append(s.p0)
        parts.append(s.t1)
        parts.append(s.p1)
    return tuple(parts)


def free_flow_plan(start_time: int, origin: int, destination: int) -> IntraPlan:
    """The plan a free-band intra-strip search returns, built directly.

    With at least one committed segment in the strip, a free band costs
    the greedy search exactly one collision probe (``expansions == 1``)
    before it returns the single direct move (or, for a standing query,
    an empty segment list) — so a window-certificate hit can rebuild the
    search's result bit-for-bit without running it.
    """
    if origin == destination:
        return IntraPlan([], start_time, start_time, 1)
    move = make_move(start_time, origin, destination)
    return IntraPlan([move], start_time, move.t1, 1)


def decode_plan(flat: EncodedPlan) -> IntraPlan:
    """Rebuild a fresh :class:`IntraPlan` from its encoded form."""
    return IntraPlan(
        [
            Segment(flat[i], flat[i + 1], flat[i + 2], flat[i + 3])
            for i in range(3, len(flat), 4)
        ],
        flat[0],
        flat[1],
        flat[2],
    )


class PlanCache:
    """LRU memo of intra-strip plans, keyed by store content version.

    Values are :func:`encode_plan` tuples or ``None`` (a memoised
    *failed* search); the structure itself is value-agnostic.

    One cache belongs to one planner: the key deliberately omits the
    search budgets (``max_expansions``, ``max_wait``) and the
    ``intra_exact`` flag because they are fixed per planner instance.
    """

    __slots__ = ("maxsize", "evictions", "_entries")

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self.evictions = 0
        # A plain dict, not OrderedDict: insertion order *is* the LRU
        # order (refresh = delete + reinsert), and plain-dict get/set is
        # what the planner's miss path pays on every uncachable call.
        self._entries: Dict[Hashable, Any] = {}

    def get(self, key: Hashable) -> Any:
        """The cached value for ``key``, or :data:`MISSING`.

        A hit refreshes the entry's LRU position.  ``None`` is a valid
        cached value (negative cache), hence the sentinel.
        """
        entries = self._entries
        value = entries.get(key, MISSING)
        if value is not MISSING:
            del entries[key]
            entries[key] = value
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Memoise ``value`` (which may be ``None``) under ``key``.

        New keys land at the most-recent end of the order; re-putting an
        existing key also refreshes its position.
        """
        entries = self._entries
        if key in entries:
            del entries[key]
        entries[key] = value
        if len(entries) > self.maxsize:
            del entries[next(iter(entries))]
            self.evictions += 1

    def raw_entries(self) -> Dict[Hashable, Any]:
        """The live entry dict, for inlined hot-path probes.

        ``entries.get(key, MISSING)`` is the cheapest possible probe but
        skips the LRU refresh that :meth:`get` performs — callers using
        this view accept insertion-order eviction in exchange.  Do not
        mutate the dict directly; use :meth:`put`.
        """
        return self._entries

    def clear(self) -> None:
        self._entries.clear()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlanCache(size={len(self._entries)}/{self.maxsize}, "
            f"evictions={self.evictions})"
        )
