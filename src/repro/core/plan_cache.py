"""Versioned memoisation of intra-strip planning results.

The inter-strip Dijkstra (Algorithm 4) treats the intra-strip planner
(Algorithm 2) as its edge-weight oracle, so the same
``plan_within_strip(store, t, origin, destination)`` call is issued
again and again — within one query (completion tails are retried per
incoming edge), across the release-delay retry loop, and across
queries whose routes do not touch the same strips.  Each call re-walks
the strip's committed traffic from scratch even when nothing changed.

:class:`PlanCache` memoises those calls keyed by

``(strip, origin, destination, start_time, store_version)``

where ``store_version`` is the :class:`~repro.core.store_base.SegmentStore`
content version.  A store's version changes exactly when its contents
change (and versions are drawn from a process-global monotone counter,
so no two content states — even of different store incarnations for the
same strip — ever share one).  A cached entry is therefore *never*
stale: no explicit invalidation hooks, no TTLs, and cached-on planning
is bit-for-bit identical to cached-off planning.

Failed searches (``None`` results) are cached too — the negative cache.
A failed intra-strip search is the most expensive kind (it burns the
whole expansion budget), and the planner's release-delay retry loop
tends to repeat it verbatim.

The cache is LRU-bounded.  Eviction only costs recomputation, never
correctness.

Plans are stored *encoded* as flat tuples of ints
(:func:`encode_plan` / :func:`decode_plan`) rather than as live
:class:`~repro.core.intra_strip.IntraPlan` object graphs.  CPython
untracks tuples that contain only atomic values, so encoded entries
drop out of cyclic-GC scans entirely — retaining tens of thousands of
plan objects otherwise makes every full collection measurably slower,
which silently taxes *all* phases of the planner.  Decoding also hands
every hit a fresh plan, so cached results can never alias committed
ones.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

from repro.core.intra_strip import IntraPlan
from repro.core.segments import Segment

#: sentinel distinguishing "not cached" from a cached negative result
MISSING = object()

#: (strip, origin, destination, start_time, store_version)
CacheKey = Tuple[int, int, int, int, int]

#: (start_time, arrival_time, expansions, then 4 ints per segment)
EncodedPlan = Tuple[int, ...]


def encode_plan(plan: IntraPlan) -> EncodedPlan:
    """Flatten a plan into a GC-untrackable tuple of ints."""
    parts = [plan.start_time, plan.arrival_time, plan.expansions]
    for s in plan.segments:
        parts.append(s.t0)
        parts.append(s.p0)
        parts.append(s.t1)
        parts.append(s.p1)
    return tuple(parts)


def decode_plan(flat: EncodedPlan) -> IntraPlan:
    """Rebuild a fresh :class:`IntraPlan` from its encoded form."""
    return IntraPlan(
        [
            Segment(flat[i], flat[i + 1], flat[i + 2], flat[i + 3])
            for i in range(3, len(flat), 4)
        ],
        flat[0],
        flat[1],
        flat[2],
    )


class PlanCache:
    """LRU memo of intra-strip plans, keyed by store content version.

    Values are :func:`encode_plan` tuples or ``None`` (a memoised
    *failed* search); the structure itself is value-agnostic.

    One cache belongs to one planner: the key deliberately omits the
    search budgets (``max_expansions``, ``max_wait``) and the
    ``intra_exact`` flag because they are fixed per planner instance.
    """

    __slots__ = ("maxsize", "evictions", "_entries")

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self.evictions = 0
        # A plain dict, not OrderedDict: insertion order *is* the LRU
        # order (refresh = delete + reinsert), and plain-dict get/set is
        # what the planner's miss path pays on every uncachable call.
        self._entries: Dict[Hashable, Any] = {}

    def get(self, key: Hashable) -> Any:
        """The cached value for ``key``, or :data:`MISSING`.

        A hit refreshes the entry's LRU position.  ``None`` is a valid
        cached value (negative cache), hence the sentinel.
        """
        entries = self._entries
        value = entries.get(key, MISSING)
        if value is not MISSING:
            del entries[key]
            entries[key] = value
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Memoise ``value`` (which may be ``None``) under ``key``.

        New keys land at the most-recent end of the order; re-putting an
        existing key also refreshes its position.
        """
        entries = self._entries
        if key in entries:
            del entries[key]
        entries[key] = value
        if len(entries) > self.maxsize:
            del entries[next(iter(entries))]
            self.evictions += 1

    def raw_entries(self) -> Dict[Hashable, Any]:
        """The live entry dict, for inlined hot-path probes.

        ``entries.get(key, MISSING)`` is the cheapest possible probe but
        skips the LRU refresh that :meth:`get` performs — callers using
        this view accept insertion-order eviction in exchange.  Do not
        mutate the dict directly; use :meth:`put`.
        """
        return self._entries

    def clear(self) -> None:
        self._entries.clear()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlanCache(size={len(self._entries)}/{self.maxsize}, "
            f"evictions={self.evictions})"
        )
