"""Route search within one strip (Section V-C, Algorithm 2).

The planner greedily runs toward the destination; when the move would
collide it stops right before the collision, waits, and retries.
Backward moves are prohibited (the paper's efficiency restriction), so
a plan is a chain of move/wait segments with monotone positions.

The implementation follows the paper's greedy recursion but replaces
its ``tau = c+1, ...`` second-by-second wait probing with closed-form
*obstacle jumps*: the store reports which committed segment blocks a
candidate move, and :func:`next_clear_departure` computes in O(1) the
first departure time that clears that obstacle.  Each loop iteration
therefore costs O(1) store queries, and a whole intra-strip plan costs
O(number of obstacles met along the way).

Three safeguards the paper leaves implicit:

* the *wait segment itself* is collision-checked (another robot may
  drive through the waiting cell); when a stop cell cannot host the
  required wait the search backs off to an earlier stop cell;
* all stop cells between the collision point and the current position
  are considered (latest first, the paper's greedy preference);
* a global iteration budget bounds worst-case work; on exhaustion the
  caller treats the strip as impassable and the end-to-end planner
  falls back to grid-level A* (Section VI remarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.segments import Segment, make_move, make_wait
from repro.core.store_base import ConflictHit, SegmentStore
from repro.geometry.collision import conflict_between_segments


@dataclass(slots=True)
class IntraPlan:
    """Result of an intra-strip search.

    Attributes:
        segments: contiguous move/wait segments from the start state to
            the destination (empty when origin == destination).
        start_time: time of the initial state.
        arrival_time: time at which the destination position is reached.
        expansions: collision queries spent finding the plan.
    """

    segments: List[Segment]
    start_time: int
    arrival_time: int
    expansions: int = 0

    @property
    def duration(self) -> int:
        return self.arrival_time - self.start_time


def next_clear_departure(obstacle: Segment, p: int, destination: int, t_from: int) -> int:
    """Smallest departure >= ``t_from`` whose direct move clears ``obstacle``.

    Closed-form geometry against a single known segment — no store
    access — so the wait loop jumps past an obstacle in O(1) instead of
    one store query per waited second.

    The conflict region of the departure time is a contiguous interval
    in every slope combination (the analysis below); a short verify loop
    absorbs the ±1 swap-parity boundary cases.
    """
    m = 1 if destination > p else -1
    length = abs(destination - p)
    s = obstacle.slope
    c = obstacle.intercept
    if s == m:
        # Parallel trajectories conflict only on the exact same line
        # (a single departure time) and only when the spans overlap.
        bad = m * (p - c)
        overlaps = obstacle.t0 - length <= bad <= obstacle.t1
        candidate = t_from + 1 if (t_from == bad and overlaps) else t_from
    elif s == 0:
        # The obstacle occupies one cell over [t0, t1]; we hit that cell
        # d steps after departing.
        d = (obstacle.p0 - p) * m
        if d < 0 or d > length:
            return t_from  # the cell is off our path
        if t_from < obstacle.t0 - d:
            candidate = t_from  # we pass before the obstacle arrives
        else:
            candidate = max(t_from, obstacle.t1 - d + 1)
    else:
        # Opposite unit slopes: the crossing time is (t' + m(c-p)) / 2,
        # giving a contiguous conflict interval [lo, hi] in t'.
        bias = m * (c - p)
        lo = max(bias - 2 * length, 2 * obstacle.t0 - bias)
        hi = min(bias, 2 * obstacle.t1 - bias)
        if t_from < lo or t_from > hi:
            candidate = t_from
        else:
            candidate = hi + 1
    # Verify against the exact integer-time semantics (swap parity can
    # shift the boundary by one second).
    for t_dep in range(candidate, candidate + 4):
        if conflict_between_segments(make_move(t_dep, p, destination), obstacle) is None:
            return t_dep
    return candidate + 4  # pragma: no cover - analytic bound is tight


def plan_within_strip(
    store: SegmentStore,
    start_time: int,
    origin: int,
    destination: int,
    max_expansions: int = 200,
    max_wait: int = 64,
) -> Optional[IntraPlan]:
    """Find a collision-free monotone route from ``origin`` to ``destination``.

    Positions are strip-local integers.  Returns ``None`` when no route
    exists within the iteration budget or every wait option is blocked
    (the end-to-end planner then falls back to grid A*).
    """
    if len(store) == 0:
        # Fast path: an empty strip cannot conflict with anything.
        if origin == destination:
            return IntraPlan([], start_time, start_time, 0)
        move = make_move(start_time, origin, destination)
        return IntraPlan([move], start_time, move.t1, 0)

    expansions = 0

    def conflict_of(segment: Segment) -> Optional[ConflictHit]:
        nonlocal expansions
        expansions += 1
        return store.earliest_conflict(segment)

    if origin == destination:
        # Standing at the start state must itself be conflict-free.
        expansions += 1
        if store.first_occupied(origin, start_time, start_time) is not None:
            return None
        return IntraPlan([], start_time, start_time, expansions)

    direction = 1 if destination > origin else -1
    segments: List[Segment] = []
    t, p = start_time, origin

    while p != destination:
        if expansions >= max_expansions:
            return None
        move = make_move(t, p, destination)
        hit = conflict_of(move)
        if hit is None:
            segments.append(move)
            t, p = move.t1, destination
            break
        blocked, obstacle = hit
        if blocked <= t:
            return None  # even the current cell is claimed at time t
        # Stop right before the collision; back off to earlier stop
        # cells when the wait there is impossible.
        advanced = False
        for stop_t in range(blocked - 1, t - 1, -1):
            stop_p = p + direction * (stop_t - t)
            # How soon does the direct move from the stop cell clear the
            # obstacle that just blocked us?
            departure = next_clear_departure(obstacle, stop_p, destination, stop_t + 1)
            # Can we actually sit at the stop cell until then?  A
            # stationary probe only collides at the exact seconds the
            # cell is occupied, so the batched occupancy scan answers
            # the whole wait span in one store call.
            expansions += 1
            first_block = store.first_occupied(stop_p, stop_t, stop_t + max_wait)
            if first_block is not None and first_block <= stop_t:
                continue  # cannot even stand at this cell
            latest = stop_t + max_wait if first_block is None else first_block - 1
            if departure > latest:
                continue  # obstacle outlives our welcome at this cell
            if stop_t > t:
                segments.append(Segment(t, p, stop_t, stop_p))
            segments.append(make_wait(stop_t, stop_p, departure - stop_t))
            t, p = departure, stop_p
            advanced = True
            break
        if not advanced:
            return None

    clean = [s for s in segments if not s.is_point]
    arrival = clean[-1].t1 if clean else start_time
    return IntraPlan(clean, start_time, arrival, expansions)
