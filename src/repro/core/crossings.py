"""Compact ledger of committed strip-boundary crossings.

A crossing event "robot at *from_cell* at t-1, at *to_cell* at t" is the
planner's device for exact boundary-swap detection (DESIGN.md §3).  The
ledger packs each event into a single integer —

    ((from_row * W + from_col) * HW + (to_row * W + to_col)) * T + t

— so a day of traffic costs one small-int set entry per crossing
instead of a tuple-of-tuples (~4x less resident memory, which matters
because MC is one of the paper's three reported metrics).

Like the segment stores, the ledger carries a *content version* drawn
from the same process-global monotone counter
(:func:`repro.core.store_base.next_version`): any content change —
adding a new key, removing one (route decommit), an effective prune or
clear — takes a fresh value, so two distinct crossing sets never share
a version.  The inter-strip search's crossing memo
(``CROSSING_TAG`` entries in :class:`~repro.core.plan_cache.PlanCache`)
keys on this version together with both adjacent stores' versions, so
decommit/replan recovery invalidates memoised crossings exactly — the
same staleness signal the per-strip plan cache uses.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from repro.core.store_base import next_version
from repro.types import Grid

#: modulus for the time component of packed keys; crossings are pruned
#: long before wrapping could matter, but keep it roomy anyway.
_TIME_SPAN = 1 << 40


class CrossingLedger:
    """Multiset of boundary crossings with O(1) membership by (from, to, t).

    Keys are *reference counted* rather than kept in a plain set:
    forced recovery commits (a slowdown-stretched suffix, a pinned
    robot's hold) are committed verbatim before the cascade replans the
    routes they invalidate, so two commit records can transiently claim
    the same crossing — exactly like overlapping claims in the segment
    stores, which keep one entry per record.  Each record's decommit
    then releases its own reference; membership (and the content
    version) only changes on the first add and the last remove.
    """

    __slots__ = ("_width", "_cells", "_keys", "version")

    def __init__(self, height: int, width: int) -> None:
        self._width = width
        self._cells = height * width
        self._keys: Dict[int, int] = {}
        #: content version; changes exactly when the crossing set changes
        self.version = next_version()

    def _pack(self, from_cell: Grid, to_cell: Grid, t: int) -> int:
        f = from_cell[0] * self._width + from_cell[1]
        g = to_cell[0] * self._width + to_cell[1]
        return (f * self._cells + g) * _TIME_SPAN + t

    def _unpack(self, key: int) -> Tuple[Grid, Grid, int]:
        rest, t = divmod(key, _TIME_SPAN)
        f, g = divmod(rest, self._cells)
        return (
            divmod(f, self._width),
            divmod(g, self._width),
            t,
        )

    # ------------------------------------------------------------------
    def add(self, from_cell: Grid, to_cell: Grid, t: int) -> None:
        key = self._pack(from_cell, to_cell, t)
        count = self._keys.get(key, 0)
        self._keys[key] = count + 1
        if count == 0:  # srplint: allow(SRP001) refcount increment on an existing key changes no content
            self.version = next_version()

    def add_key(self, key: Tuple[Grid, Grid, int]) -> None:
        self.add(*key)

    def update(self, keys: Iterable[Tuple[Grid, Grid, int]]) -> None:
        for key in keys:
            self.add(*key)

    def remove(self, from_cell: Grid, to_cell: Grid, t: int) -> None:
        """Release one reference; KeyError when it was never committed."""
        key = self._pack(from_cell, to_cell, t)
        count = self._keys.get(key, 0)
        if count == 0:
            raise KeyError(f"crossing {(from_cell, to_cell, t)!r} not committed")
        if count == 1:  # srplint: allow(SRP001) releasing a surplus reference changes no content
            del self._keys[key]
            self.version = next_version()
        else:
            self._keys[key] = count - 1

    def remove_key(self, key: Tuple[Grid, Grid, int]) -> None:
        self.remove(*key)

    def contains(self, from_cell: Grid, to_cell: Grid, t: int) -> bool:
        return self._pack(from_cell, to_cell, t) in self._keys

    def __contains__(self, key: Tuple[Grid, Grid, int]) -> bool:
        return self.contains(*key)

    def iter_keys(self) -> Iterator[Tuple[Grid, Grid, int]]:
        """Yield every committed ``(from_cell, to_cell, t)`` event.

        Unpacking is audit-path only (order unspecified); the planner's
        hot membership probes never touch tuples.
        """
        for key in self._keys:
            yield self._unpack(key)

    # ------------------------------------------------------------------
    def prune(self, before: int) -> int:
        """Drop crossings that happened strictly before ``before``."""
        kept = {k: c for k, c in self._keys.items() if k % _TIME_SPAN >= before}
        dropped = len(self._keys) - len(kept)
        if not dropped:
            return 0  # no-op: the ledger (and its version) stays untouched
        self._keys = kept
        self.version = next_version()
        return dropped

    def clear(self) -> None:
        if not self._keys:
            return
        self._keys.clear()
        self.version = next_version()

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)
