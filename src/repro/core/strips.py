"""Strip aggregation and the strip graph (Section IV-A, Algorithm 1).

A *strip* is a maximal row or column run of grids sharing the same rack
value.  Following Algorithm 1 we first aggregate every fully rack-free
row into a single latitudinal aisle strip, then aggregate the remaining
grids column-wise into longitudinal aisle/rack strips.  Strips
partition the warehouse, so each grid maps to exactly one strip and a
one-dimensional position inside it.

Edges connect strips that contain 4-adjacent grids, except pairs of
rack strips (robots cannot cross racks).  Each directed edge carries
*transit ranges* describing which positions of the source strip touch
the target strip and how source positions map to target positions —
this is what the inter-strip planner's greedy transit (Fig. 10) needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.exceptions import LayoutError
from repro.types import Grid
from repro.warehouse.matrix import Warehouse


class Direction(enum.Enum):
    """Axis of a strip: latitudinal strips run along a row."""

    LATITUDINAL = "latitudinal"
    LONGITUDINAL = "longitudinal"


class StripKind(enum.Enum):
    """Whether the strip's grids are aisle (free) or rack cells."""

    AISLE = "aisle"
    RACK = "rack"


@dataclass(frozen=True)
class Strip:
    """A strip vertex ``<alpha, beta, dir, type>`` (Definition 4).

    ``alpha`` is the western/northern-most grid and ``beta`` the
    eastern/southern-most one.  Local positions run 0..length-1 from
    ``alpha`` to ``beta``.
    """

    index: int
    alpha: Grid
    beta: Grid
    direction: Direction
    kind: StripKind

    @property
    def length(self) -> int:
        if self.direction is Direction.LATITUDINAL:
            return self.beta[1] - self.alpha[1] + 1
        return self.beta[0] - self.alpha[0] + 1

    @property
    def is_aisle(self) -> bool:
        return self.kind is StripKind.AISLE

    def contains(self, grid: Grid) -> bool:
        if self.direction is Direction.LATITUDINAL:
            return grid[0] == self.alpha[0] and self.alpha[1] <= grid[1] <= self.beta[1]
        return grid[1] == self.alpha[1] and self.alpha[0] <= grid[0] <= self.beta[0]

    def local(self, grid: Grid) -> int:
        """Map a contained grid to its 1-D position within the strip."""
        if self.direction is Direction.LATITUDINAL:
            return grid[1] - self.alpha[1]
        return grid[0] - self.alpha[0]

    def grid_at(self, pos: int) -> Grid:
        """Map a local position back to the warehouse grid."""
        if not 0 <= pos < self.length:
            raise IndexError(f"position {pos} outside strip of length {self.length}")
        if self.direction is Direction.LATITUDINAL:
            return (self.alpha[0], self.alpha[1] + pos)
        return (self.alpha[0] + pos, self.alpha[1])


@dataclass(frozen=True)
class TransitRange:
    """Positions of a source strip adjacent to one target strip.

    For every source position ``p`` in ``[lo, hi]`` the grid one step
    across the boundary lies in the target strip at local position
    ``p + offset``.  Side-by-side adjacency yields long ranges,
    perpendicular and stacked adjacency yield single-position ranges.
    """

    lo: int
    hi: int
    offset: int

    def clamp(self, pos: int) -> int:
        """Nearest in-range source position to ``pos`` (greedy transit)."""
        return min(max(pos, self.lo), self.hi)


class StripGraph:
    """The strip graph ``S = <V, E>`` (Definition 5) plus grid mapping."""

    def __init__(
        self, warehouse: Warehouse, strips: List[Strip], strip_of: np.ndarray
    ) -> None:
        self.warehouse = warehouse
        self.strips = strips
        self._strip_of = strip_of
        # adjacency[u] -> {v: [TransitRange, ...]}
        self.adjacency: List[Dict[int, List[TransitRange]]] = [dict() for _ in strips]
        self._build_edges()
        # Flattened views of the graph for the planner's hot loop: the
        # inter-strip search touches every neighbor of every settled
        # strip, so dataclass/enum attribute chains there are measurable.
        # Same iteration order as neighbors() (dict insertion order).
        self._fast_adjacency: List[List[Tuple[int, Tuple[Tuple[int, int, int], ...]]]] = [
            [(v, tuple((r.lo, r.hi, r.offset) for r in ranges)) for v, ranges in adj.items()]
            for adj in self.adjacency
        ]
        #: per-strip (alpha_row, alpha_col, is_latitudinal) for O(1) heuristics
        self.anchors: List[Tuple[int, int, bool]] = [
            (s.alpha[0], s.alpha[1], s.direction is Direction.LATITUDINAL)
            for s in strips
        ]
        #: per-strip aisle flag (plain bools, no enum comparison)
        self.aisle_flags: List[bool] = [s.is_aisle for s in strips]
        # Aisle-only mirror of the fast adjacency: the search traverses
        # aisle strips exclusively (racks are endpoints), so its settle
        # loop should not even see rack neighbors.  The single-transit-
        # range case — the overwhelming warehouse boundary shape — is
        # pre-unpacked into the row tuple itself: ``(v, lo, hi, offset,
        # None)``, with ``(v, 0, 0, 0, ranges)`` for gapped boundaries,
        # so the settle loop clips positions without touching a nested
        # tuple per neighbor.
        self._aisle_adjacency: List[
            List[Tuple[int, int, int, int, Optional[Tuple[Tuple[int, int, int], ...]]]]
        ] = [
            [
                (v, ranges[0][0], ranges[0][1], ranges[0][2], None)
                if len(ranges) == 1
                else (v, 0, 0, 0, ranges)
                for v, ranges in row
                if self.aisle_flags[v]
            ]
            for row in self._fast_adjacency
        ]
        # Columnar mirror of ``anchors`` so heuristic_tables() can fold
        # a whole destination into per-strip constants with a handful of
        # vectorised ops instead of a Python loop over every strip.
        self._anchor_rows = np.array([a[0] for a in self.anchors], dtype=np.int64)
        self._anchor_cols = np.array([a[1] for a in self.anchors], dtype=np.int64)
        self._anchor_lat = np.array([a[2] for a in self.anchors], dtype=bool)

    def heuristic_tables(self, di: int, dj: int) -> Tuple[List[int], List[int]]:
        """Per-strip constants folding the Manhattan heuristic to ``(di, dj)``.

        For a position ``vp`` on strip ``v`` the heuristic is
        ``K[v] + |vp + M[v]|``: the cross-axis distance is fixed per
        strip (``K``) and the along-axis term is an absolute offset
        (``M``), so the search's per-stub cost drops to one list index,
        one add and one ``abs`` — no anchor tuple unpacking.
        """
        rows, cols, lat = self._anchor_rows, self._anchor_cols, self._anchor_lat
        fixed = np.where(lat, np.abs(rows - di), np.abs(cols - dj))
        offset = np.where(lat, cols - dj, rows - di)
        return fixed.tolist(), offset.tolist()

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def strip_index_of(self, grid: Grid) -> int:
        idx = int(self._strip_of[grid[0], grid[1]])
        if idx < 0:
            raise LayoutError(f"grid {grid} belongs to no strip")
        return idx

    def strip_of(self, grid: Grid) -> Strip:
        return self.strips[self.strip_index_of(grid)]

    def locate(self, grid: Grid) -> Tuple[int, int]:
        """Return ``(strip_index, local_position)`` of a grid."""
        idx = self.strip_index_of(grid)
        return idx, self.strips[idx].local(grid)

    def neighbors(self, strip_index: int) -> Iterator[Tuple[int, List[TransitRange]]]:
        """Yield ``(neighbor_index, transit_ranges)`` pairs."""
        yield from self.adjacency[strip_index].items()

    def neighbor_transits(
        self, strip_index: int
    ) -> List[Tuple[int, Tuple[Tuple[int, int, int], ...]]]:
        """Materialised ``(neighbor, ((lo, hi, offset), ...))`` pairs.

        The plain-int-tuple mirror of :meth:`neighbors`, used by the
        inter-strip search's hot loop.
        """
        return self._fast_adjacency[strip_index]

    # ------------------------------------------------------------------
    # Table II statistics
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return len(self.strips)

    @property
    def n_edges(self) -> int:
        """Undirected edge count, as reported in Table II."""
        return sum(len(adj) for adj in self.adjacency) // 2

    def reduction_stats(self) -> Dict[str, float]:
        """Vertex/edge reduction ratios versus the grid representation."""
        gv = self.warehouse.grid_vertex_count()
        ge = self.warehouse.grid_edge_count()
        return {
            "grid_vertices": gv,
            "grid_edges": ge,
            "strip_vertices": self.n_vertices,
            "strip_edges": self.n_edges,
            "vertex_ratio": self.n_vertices / gv,  # srplint: allow-float reduction-ratio reporting (Fig. 8)
            "edge_ratio": self.n_edges / ge,  # srplint: allow-float reduction-ratio reporting (Fig. 8)
        }

    # ------------------------------------------------------------------
    # Edge construction
    # ------------------------------------------------------------------
    def _build_edges(self) -> None:
        """Scan adjacent grid pairs and compress them into transit ranges.

        Rack-rack adjacencies carry no edge since robots cannot cross
        racks (Algorithm 1, line 23's adjacency test).  Boundary pairs
        are extracted with vectorised comparisons of the strip-index
        matrix against its shifted copies; only actual strip boundaries
        reach the Python grouping loop.
        """
        strip_of = self._strip_of
        # Local position of every cell inside its strip, precomputed so
        # the boundary scan needs no per-cell method calls.
        h, w = self.warehouse.shape
        pos_of = np.empty((h, w), dtype=np.int32)
        for strip in self.strips:
            (i0, j0), (i1, j1) = strip.alpha, strip.beta
            if strip.direction is Direction.LATITUDINAL:
                pos_of[i0, j0 : j1 + 1] = np.arange(j1 - j0 + 1)
            else:
                pos_of[i0 : i1 + 1, j0] = np.arange(i1 - i0 + 1)
        aisle = np.fromiter(
            (s.is_aisle for s in self.strips), dtype=bool, count=len(self.strips)
        )

        pair_positions: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}

        def scan(
            u_ids: np.ndarray,
            v_ids: np.ndarray,
            u_pos: np.ndarray,
            v_pos: np.ndarray,
        ) -> None:
            boundary = u_ids != v_ids
            boundary &= aisle[u_ids] | aisle[v_ids]
            for u, v, pu, pv in zip(
                u_ids[boundary].tolist(),
                v_ids[boundary].tolist(),
                u_pos[boundary].tolist(),
                v_pos[boundary].tolist(),
            ):
                pair_positions.setdefault((u, v), []).append((pu, pv))
                pair_positions.setdefault((v, u), []).append((pv, pu))

        scan(strip_of[:-1, :], strip_of[1:, :], pos_of[:-1, :], pos_of[1:, :])
        scan(strip_of[:, :-1], strip_of[:, 1:], pos_of[:, :-1], pos_of[:, 1:])
        for (u, v), pairs in pair_positions.items():
            self.adjacency[u][v] = _compress_ranges(pairs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StripGraph(strips={self.n_vertices}, edges={self.n_edges})"


def _compress_ranges(pairs: List[Tuple[int, int]]) -> List[TransitRange]:
    """Merge sorted (source, target) position pairs into transit ranges.

    Consecutive pairs with source positions increasing by one and a
    constant offset collapse into a single range.
    """
    pairs = sorted(set(pairs))
    ranges: List[TransitRange] = []
    lo, last, offset = pairs[0][0], pairs[0][0], pairs[0][1] - pairs[0][0]
    for pu, pv in pairs[1:]:
        if pu == last + 1 and pv - pu == offset:
            last = pu
            continue
        ranges.append(TransitRange(lo, last, offset))
        lo, last, offset = pu, pu, pv - pu
    ranges.append(TransitRange(lo, last, offset))
    return ranges


def build_strip_graph(warehouse: Warehouse) -> StripGraph:
    """Algorithm 1: aggregate grids into strips and build the strip graph.

    Fully rack-free rows become latitudinal aisle strips; the remaining
    grids are aggregated column-wise into maximal same-value runs
    (longitudinal aisle or rack strips).
    """
    h, w = warehouse.shape
    racks = warehouse.racks
    strip_of = np.full((h, w), -1, dtype=np.int32)
    strips: List[Strip] = []

    # Latitudinal pass: whole empty rows (Algorithm 1, lines 4-8).
    full_rows = ~racks.any(axis=1)
    for i in range(h):
        if full_rows[i]:
            idx = len(strips)
            strips.append(
                Strip(idx, (i, 0), (i, w - 1), Direction.LATITUDINAL, StripKind.AISLE)
            )
            strip_of[i, :] = idx

    # Longitudinal pass: maximal same-value column runs (lines 10-19).
    for j in range(w):
        i = 0
        while i < h:
            if strip_of[i, j] >= 0:
                i += 1
                continue
            value = racks[i, j]
            k = i
            while k + 1 < h and strip_of[k + 1, j] < 0 and racks[k + 1, j] == value:
                k += 1
            idx = len(strips)
            kind = StripKind.RACK if value else StripKind.AISLE
            strips.append(Strip(idx, (i, j), (k, j), Direction.LONGITUDINAL, kind))
            strip_of[i : k + 1, j] = idx
            i = k + 1

    return StripGraph(warehouse, strips, strip_of)
