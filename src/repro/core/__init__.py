"""The paper's primary contribution: the Strip-based Route Planning framework.

Modules map one-to-one onto the paper's sections:

* :mod:`repro.core.strips` — strip aggregation and the strip graph
  (Section IV-A, Algorithm 1);
* :mod:`repro.core.segments` — the segment representation of routes
  within strips (Section V-A, Definition 6, Eq. 4);
* :mod:`repro.core.naive_store` — ordered-set collision detection
  (Section V-B);
* :mod:`repro.core.slope_index` — slope-based segment indexing
  (Section V-D, Algorithm 3);
* :mod:`repro.core.columnar_store` — the array-backed columnar layout
  of the slope index (an engineering extension; routes are bit-identical
  to the object-backed stores);
* :mod:`repro.core.intra_strip` — backtracking route search within a
  strip (Section V-C, Algorithm 2);
* :mod:`repro.core.inter_strip` — Dijkstra over the strip graph with
  intra-strip edge weights (Section VI, Algorithm 4);
* :mod:`repro.core.plan_cache` — versioned memoisation of the
  intra-strip edge-weight calls (an engineering extension; results are
  identical with or without it);
* :mod:`repro.core.conversion` — segment-plan to grid-route conversion
  (the third TC component of Fig. 22a);
* :mod:`repro.core.fallback` — the grid-level space-time A* called in
  the rare cases the restricted search fails (Section VI, Remarks);
* :mod:`repro.core.planner` — :class:`SRPPlanner`, the end-to-end
  public entry point.
"""

from repro.core.columnar_store import ColumnarSegmentStore
from repro.core.intra_strip import IntraPlan, plan_within_strip
from repro.core.naive_store import NaiveSegmentStore
from repro.core.plan_cache import PlanCache
from repro.core.planner import SRPPlanner
from repro.core.segments import Segment
from repro.core.slope_index import SlopeIndexedStore
from repro.core.strips import (
    Direction,
    Strip,
    StripGraph,
    StripKind,
    TransitRange,
    build_strip_graph,
)

__all__ = [
    "Direction",
    "StripKind",
    "Strip",
    "StripGraph",
    "TransitRange",
    "build_strip_graph",
    "Segment",
    "ColumnarSegmentStore",
    "NaiveSegmentStore",
    "PlanCache",
    "SlopeIndexedStore",
    "IntraPlan",
    "plan_within_strip",
    "SRPPlanner",
]
