"""End-to-end route search over the strip graph (Section VI, Algorithm 4).

The inter-strip level runs a time-dependent Dijkstra over aisle strips.
Whenever it relaxes an edge it calls the intra-strip planner to learn
how long crossing the current strip actually takes given the committed
traffic — the paper's "edge weight calculated by intra-strip route
planning".  Transit between strips follows the greedy rule of Fig. 10:
cross at the adjacent grid pair nearest to the robot's current position.

Rack strips are never traversed; they participate only as route
endpoints (a robot slides sideways from the neighbouring aisle under
the rack).

**Boundary semantics.**  Strips partition the grid, so the per-strip
segment stores cannot see conflicts that happen *on* a strip boundary.
Crossing into a strip therefore produces two artefacts:

* a point segment at the arrival cell and second, making the arrival
  visible to vertex-conflict checks inside the target strip; and
* a *crossing event* ``(from_cell, to_cell, t)`` in a planner-global
  set, which detects the boundary swap ``(g -> g')`` against
  ``(g' -> g)`` exactly (two robots exchanging cells across a strip
  border), with no over-reservation.

All planning during the search is read-only; only the winning chain of
legs is committed by the caller (:mod:`repro.core.planner`).
"""

from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass
from typing import AbstractSet, Dict, List, Optional, Sequence, Tuple

from repro.core.intra_strip import IntraPlan, plan_within_strip
from repro.core.intra_strip_exact import plan_within_strip_exact
from repro.core.plan_cache import (
    CROSSING_TAG,
    MISSING,
    SHIFT_TAG,
    WINDOW_TAG,
    PlanCache,
    decode_plan,
    encode_plan,
    free_flow_plan,
)
from repro.core.segments import Segment, make_wait
# _entry_clear_time moved to store_base (the batched occupancy scans
# need it); re-exported here for its long-standing import path.
from repro.core.store_base import SegmentStore
from repro.core.store_base import _entry_clear_time as _entry_clear_time
from repro.core.strips import StripGraph
from repro.types import Grid, Query, manhattan

#: a committed boundary crossing: the robot is at from_cell at time-1
#: and at to_cell at time.
CrossingKey = Tuple[Grid, Grid, int]

#: Largest *object-backed* store (segment count) against which window /
#: shift certificates are minted and probed.  Certification scans the
#: store, so on congested strips it costs as much as the search it
#: tries to save while the next commit kills the certificate anyway;
#: small stores scan cheaply and their certificates live long enough to
#: pay.  Stores advertising :attr:`SegmentStore.cheap_scans` (the
#: columnar layout, whose band interval index answers ``free_window``
#: incrementally and whose ``band_signature`` is one vectorised mask)
#: skip the throttle entirely — certificate coverage no longer dies on
#: busy strips there.  Purely a performance gate — either side of it
#: produces bit-identical routes.
_CERT_STORE_MAX = 16

#: Largest :meth:`SegmentStore.scan_cost_hint` of a probe region against
#: which a certificate (or a crossing memo entry) is still minted.  For
#: object-backed stores the hint is the store size, so together with the
#: ``_CERT_STORE_MAX`` probe gate this reproduces the per-store throttle
#: exactly; the columnar layout's hint counts band-index entries near
#: the probe, making the throttle per-region instead of per-store.
_MINT_SCAN_MAX = 32


@dataclass(frozen=True)
class SearchConfig:
    """Tuning knobs of the strip-level search.

    ``detour_factor`` and ``max_detour`` bound how far past the
    free-flow distance the search keeps looking: popping a key beyond
    ``release + detour_factor * distance + max_detour`` aborts the
    (hopeless) search instead of sweeping the whole strip graph, and
    the planner falls back to grid A*.  Keys are admissible completion
    lower bounds, so only routes worse than the cutoff are discarded.
    """

    max_expansions: int = 600
    max_wait: int = 64
    use_heuristic: bool = True
    detour_factor: float = 2.0  # srplint: allow-float search-budget knob, int()-clamped before use
    max_detour: int = 64
    #: use the exact time-expanded intra-strip search instead of the
    #: paper's greedy one (quality ablation; see intra_strip_exact)
    intra_exact: bool = False
    #: with intra_exact, also allow backward moves inside strips —
    #: lifting the paper's Fig. 13 restriction entirely
    intra_backward: bool = False


@dataclass
class SearchStats:
    """Counters filled during one plan_route call."""

    intra_time: float = 0.0  # srplint: allow-float perf_counter seconds, reporting only
    #: portion of intra_time spent answering calls from the plan cache's
    #: certificate/key layers (hits only; always <= intra_time)
    cache_time: float = 0.0  # srplint: allow-float perf_counter seconds, reporting only
    intra_calls: int = 0
    intra_expansions: int = 0
    strips_popped: int = 0
    edges_relaxed: int = 0
    cache_hits: int = 0
    cache_negative_hits: int = 0
    cache_misses: int = 0
    #: positive hits served by a free-flow window certificate
    window_hits: int = 0
    #: positive hits served by a shift-invariance certificate
    shift_hits: int = 0
    #: boundary-crossing searches served from the crossing memo
    crossing_hits: int = 0
    #: boundary-crossing searches that ran the real wait loop
    crossing_misses: int = 0
    #: intra-strip searches answered free-flow straight from the store's
    #: band interval index (no cache involved; works cache-off too)
    band_skips: int = 0


@dataclass(frozen=True)
class CrossingEntry:
    """A committed step across a strip boundary.

    Attributes:
        time: arrival second in the new strip.
        from_cell: boundary cell left at ``time - 1``.
        to_cell: boundary cell occupied at ``time``.
        point: the point segment ``(time, pos)`` in the new strip's
            local coordinates, committed to that strip's store.
    """

    time: int
    from_cell: Grid
    to_cell: Grid
    point: Segment

    @property
    def key(self) -> CrossingKey:
        return (self.from_cell, self.to_cell, self.time)

    @property
    def reverse_key(self) -> CrossingKey:
        return (self.to_cell, self.from_cell, self.time)


@dataclass
class Leg:
    """Movement inside one strip of the final plan.

    Attributes:
        strip: strip index.
        entry: how the robot crossed into this strip (None for the strip
            the route starts in).
        segments: motion/wait segments within the strip, local coords.
    """

    strip: int
    entry: Optional[CrossingEntry]
    segments: List[Segment]


@dataclass
class RoutePlan:
    """A complete collision-free plan as a chain of strip legs."""

    start_time: int
    origin: Grid
    destination: Grid
    legs: List[Leg]
    arrival_time: int


@dataclass(slots=True)
class _Label:
    arrival: int
    pos: int
    pred: int
    leg_segments: List[Segment]
    entry: Optional[CrossingEntry]
    settled: bool = False


def _nearest_transit(
    ranges: Sequence[Tuple[int, int, int]], pos: int
) -> Optional[Tuple[int, int]]:
    """Greedy transit choice (Fig. 10): the adjacent pair nearest ``pos``.

    ``ranges`` are the plain ``(lo, hi, offset)`` tuples of
    :meth:`repro.core.strips.StripGraph.neighbor_transits` — this runs
    once per (settled strip, neighbor) pair, hence the flat ints.
    """
    best: Optional[Tuple[int, int]] = None
    best_dist = None
    for lo, hi, offset in ranges:
        tp = lo if pos < lo else (hi if pos > hi else pos)
        dist = pos - tp if tp < pos else tp - pos
        if best_dist is None or dist < best_dist:
            best = (tp, tp + offset)
            best_dist = dist
    return best


def _transit_toward(
    ranges: Sequence[Tuple[int, int, int]], from_pos: int, target_pos: int
) -> Optional[Tuple[int, int]]:
    """Transit pair whose landing position is nearest ``target_pos``.

    Used for edges into the *destination* strip: entering a long,
    congested strip right at the goal column avoids traversing it
    against opposing traffic (an extension over the paper's purely
    source-greedy transit; see DESIGN.md §6).
    """
    best: Optional[Tuple[int, int]] = None
    best_key = None
    for lo, hi, offset in ranges:
        want = target_pos - offset
        tp = lo if want < lo else (hi if want > hi else want)
        vp = tp + offset
        key = (abs(vp - target_pos), abs(tp - from_pos))
        if best_key is None or key < best_key:
            best = (tp, vp)
            best_key = key
    return best


class _Search:
    """One invocation of Algorithm 4 for a single query."""

    def __init__(
        self,
        graph: StripGraph,
        stores: Sequence[SegmentStore],
        crossings: AbstractSet[CrossingKey],
        config: SearchConfig,
        stats: SearchStats,
        cache: Optional[PlanCache] = None,
        allowed: Optional[Sequence[bool]] = None,
    ) -> None:
        self.graph = graph
        self.stores = stores
        self.crossings = crossings
        self.config = config
        self.stats = stats
        self.cache = cache
        #: per-strip admissibility mask (region-sharded planning); None
        #: means every strip may be traversed
        self.allowed = allowed
        self._exact = config.intra_exact
        # Raw view of the cache's entry dict: the probe below runs once
        # per edge relaxation, so even one extra method call shows up.
        self._cache_entries = cache.raw_entries() if cache is not None else None
        # Window certificates rebuild the free-flow plan without running
        # the search, which is only faithful when the uncached search
        # would at least get to its first collision probe — and never
        # for the exact time-expanded search, whose plans the greedy
        # free-flow shape does not describe.
        self._windows_ok = not self._exact and config.max_expansions >= 1
        # The crossing memo needs the ledger's content version; plain
        # sets (accepted for ad-hoc use) have none, so it stays off.
        self._crossings_versioned = hasattr(crossings, "version")

    # ------------------------------------------------------------------
    # Timed wrappers around the intra-strip level
    # ------------------------------------------------------------------
    def _intra(self, strip: int, t: int, origin: int, dest: int) -> Optional[IntraPlan]:
        started = _time.perf_counter()
        key = None
        store = self.stores[strip]
        entries = self._cache_entries
        stats = self.stats
        if self._windows_ok and store.cheap_scans and len(store) != 0:
            lo_b, hi_b = (origin, dest) if origin <= dest else (dest, origin)
            if t > store.last_end or store.band_clear(lo_b, hi_b, t, t + hi_b - lo_b):
                # Band-index free-flow fast path — no cache involved, so
                # it fires identically cache-on and cache-off.  Nothing
                # stored can touch the probe rectangle (the band index
                # certified the negative), so the greedy search's first
                # collision probe would come back clean and it would
                # return exactly this direct free-flow plan.
                stats.band_skips += 1
                stats.intra_calls += 1
                stats.intra_time += _time.perf_counter() - started
                return free_flow_plan(t, origin, dest)
        if entries is not None and (len(store) != 0 or self._exact):
            # Planning through an empty strip is already O(1) (a single
            # free-flow segment), so the cache only engages where there
            # is traffic.  Layered probe order — free-flow window, then
            # shift certificate, then the exact per-second key; every
            # layer is checked against content versions, so a hit is
            # never stale; see repro.core.plan_cache.
            version = store.version
            if not self._exact:
                cheap = store.cheap_scans
                if self._windows_ok and not cheap and t > store.last_end:
                    # O(1) degenerate free-flow window: every segment
                    # ever committed here ends before t (last_end is a
                    # monotone high-water mark, so this is sound even
                    # after decommit/prune), hence the uncached search
                    # would spend one clean probe and go free-flow.
                    stats.cache_hits += 1
                    stats.window_hits += 1
                    stats.intra_calls += 1
                    elapsed = _time.perf_counter() - started
                    stats.intra_time += elapsed
                    stats.cache_time += elapsed
                    return free_flow_plan(t, origin, dest)
                if cheap or len(store) <= _CERT_STORE_MAX:
                    # Certificates are only ever filed against small
                    # stores (see _memoise), so skip both probes — two
                    # tuple builds and dict gets per call — when the
                    # store has outgrown the certification bound.
                    # Columnar stores mint no window certificates (the
                    # band fast path above covers free-flow), so their
                    # window probe is skipped too.
                    if self._windows_ok and not cheap:
                        windows = entries.get(
                            (WINDOW_TAG, strip, origin, dest, version)
                        )
                        if windows is not None:
                            span = dest - origin if dest >= origin else origin - dest
                            for i in range(0, len(windows), 2):
                                if windows[i] <= t and t + span <= windows[i + 1]:
                                    stats.cache_hits += 1
                                    stats.window_hits += 1
                                    stats.intra_calls += 1
                                    elapsed = _time.perf_counter() - started
                                    stats.intra_time += elapsed
                                    stats.cache_time += elapsed
                                    return free_flow_plan(t, origin, dest)
                    skey = (SHIFT_TAG, strip, origin, dest, t)
                    cert = entries.get(skey)
                    if cert is not None:
                        cert_version, horizon, signature, encoded = cert
                        if cert_version != version:
                            # The strip changed somewhere — but if the
                            # band over the search's probe region reads
                            # back the same, the search would replay
                            # identically.
                            lo, hi = (origin, dest) if origin <= dest else (dest, origin)
                            if store.band_signature(lo, hi, t, horizon) == signature:
                                # Re-stamp so the next probe is O(1) again.
                                assert self.cache is not None
                                self.cache.put(
                                    skey, (version, horizon, signature, encoded)
                                )
                            else:
                                encoded = None
                        if encoded is not None:
                            stats.cache_hits += 1
                            stats.shift_hits += 1
                            stats.intra_calls += 1
                            elapsed = _time.perf_counter() - started
                            stats.intra_time += elapsed
                            stats.cache_time += elapsed
                            return decode_plan(encoded)
                    key = (strip, origin, dest, t, version)
                # Stores past the certification bound get no per-second
                # key either: exact keys on a congested store die on the
                # next commit, so storing them costs encode+put per miss
                # for almost no hits (measured well under 1%) — the call
                # still counts as a miss below so the hit rate stays an
                # honest fraction of cache-eligible calls.
            else:
                key = (strip, origin, dest, t, version)
            if key is not None:
                cached = entries.get(key, MISSING)
                if cached is not MISSING:
                    if cached is None:
                        stats.cache_negative_hits += 1
                        plan = None
                    else:
                        stats.cache_hits += 1
                        plan = decode_plan(cached)
                    elapsed = _time.perf_counter() - started
                    stats.intra_time += elapsed
                    stats.cache_time += elapsed
                    stats.intra_calls += 1
                    return plan
            stats.cache_misses += 1
        if self._exact:
            plan = plan_within_strip_exact(
                store,
                t,
                origin,
                dest,
                strip_length=self.graph.strips[strip].length,
                allow_backward=self.config.intra_backward,
                max_expansions=self.config.max_expansions,
                max_wait=self.config.max_wait,
            )
        else:
            plan = plan_within_strip(
                store,
                t,
                origin,
                dest,
                max_expansions=self.config.max_expansions,
                max_wait=self.config.max_wait,
            )
        if key is not None:
            self._memoise(key, store, strip, t, origin, dest, plan)
        stats.intra_time += _time.perf_counter() - started
        stats.intra_calls += 1
        if plan is not None:
            stats.intra_expansions += plan.expansions
        return plan

    def _memoise(
        self,
        key: Tuple[int, ...],
        store: SegmentStore,
        strip: int,
        t: int,
        origin: int,
        dest: int,
        plan: Optional[IntraPlan],
    ) -> None:
        """File a fresh intra-strip result under the strongest sound key.

        Failed searches only ever land under the exact per-second key
        (nothing bounds the region a failure depends on).  Free-flow
        results try a window certificate first; every other successful
        plan gets a shift-invariance certificate, whose probe region
        ``band x [t, arrival + max_wait]`` provably contains every
        collision query the greedy search issued.

        Certification itself costs a store scan (``free_window`` /
        ``band_signature``), so ``_intra`` only files results computed
        against stores small enough (:data:`_CERT_STORE_MAX`) that the
        scan is about as cheap as the search it hopes to save — on
        congested stores every key dies on the next commit, so minting
        certificates (or even exact entries) there costs more than the
        sub-1% hits they would ever serve.
        """
        cache = self.cache
        entries = self._cache_entries
        assert cache is not None and entries is not None  # keyed calls only
        if plan is None or self._exact:
            cache.put(key, None if plan is None else encode_plan(plan))
            return
        if plan.expansions <= 1 and self._windows_ok and store.cheap_scans:
            # The band interval index already re-derives free-flow
            # answers in O(log n) at probe time (the fast path in
            # ``_intra``), with zero invalidation cost — a window
            # certificate could only duplicate coverage the index
            # serves for free, so columnar stores mint none.  Checked
            # before the hint scan: this is the overwhelmingly common
            # miss on columnar stores.
            return
        lo, hi = (origin, dest) if origin <= dest else (dest, origin)
        if (
            store.scan_cost_hint(lo, hi, t, plan.arrival_time + self.config.max_wait)
            > _MINT_SCAN_MAX
        ):
            # Certification against this region would scan more entries
            # than the hits it could plausibly serve — and a certificate
            # minted against a region this dense dies on the next commit
            # anyway.  Skipping minting never changes routes.
            return
        if plan.expansions <= 1 and self._windows_ok:
            window = store.free_window(lo, hi, t, plan.arrival_time)
            if window is not None:
                wkey = (WINDOW_TAG, strip, origin, dest, store.version)
                old = entries.get(wkey)
                flat = window if old is None else old + window
                if len(flat) > 8:  # keep the 4 most recent windows
                    flat = flat[-8:]
                cache.put(wkey, flat)
                return
        horizon = plan.arrival_time + self.config.max_wait
        cache.put(
            (SHIFT_TAG, strip, origin, dest, t),
            (store.version, horizon, store.band_signature(lo, hi, t, horizon), encode_plan(plan)),
        )

    def _plan_crossing(
        self,
        from_strip: int,
        to_strip: int,
        t: int,
        from_pos: int,
        to_pos: int,
    ) -> Optional[Tuple[Optional[Segment], CrossingEntry, int]]:
        """Find the earliest crossing from (t, from_pos) into ``to_strip``.

        The robot may wait at ``from_pos`` first.  Returns the wait
        segment (or None), the crossing entry, and the arrival time at
        ``to_pos``; None when no wait length within the cap works.

        Off the empty-target fast path, results are memoised against the
        two stores' content versions plus the crossing ledger's — the
        whole result is determined by the arrival second, so the memo
        stores a single int (or ``None`` for a failed crossing).  The
        memo keeps the plain :data:`_CERT_STORE_MAX` size throttle for
        every layout: its key embeds both store versions, so against
        congested stores it dies on the next commit and building and
        hashing the 9-tuple per evaluation costs more than the hits it
        could serve.
        """
        started = _time.perf_counter()
        try:
            from_store = self.stores[from_strip]
            to_store = self.stores[to_strip]
            # Inline grid_at: positions here come from transit ranges,
            # always in bounds, so skip its range check and enum compare.
            anchors = self.graph.anchors
            ai, aj, lat = anchors[from_strip]
            from_cell = (ai, aj + from_pos) if lat else (ai + from_pos, aj)
            ai, aj, lat = anchors[to_strip]
            to_cell = (ai, aj + to_pos) if lat else (ai + to_pos, aj)
            if (
                len(to_store) == 0
                and (to_cell, from_cell, t + 1) not in self.crossings
            ):
                # Fast path: nothing in the target strip and no opposing
                # crossing — step over immediately, no waiting needed.
                # Already O(1); memoising it would only slow it down.
                entry = CrossingEntry(
                    t + 1, from_cell, to_cell, Segment(t + 1, to_pos, t + 1, to_pos)
                )
                return None, entry, t + 1
            if (
                from_store.cheap_scans
                and to_store.cheap_scans
                and (to_cell, from_cell, t + 1) not in self.crossings
                and (t > from_store.last_end
                     or from_store.band_clear(from_pos, from_pos, t, t))
                and (t + 1 > to_store.last_end
                     or to_store.band_clear(to_pos, to_pos, t + 1, t + 1))
            ):
                # Band fast path: nobody stands at the departure cell at
                # ``t``, the entry cell is free at ``t + 1`` and no
                # opposing crossing is committed — the wait loop below
                # would find exactly this immediate step (its occupancy
                # scan can only block the *departure* second, which the
                # band certified clear).  Two single-band probes replace
                # two full store scans.
                entry = CrossingEntry(
                    t + 1, from_cell, to_cell, Segment(t + 1, to_pos, t + 1, to_pos)
                )
                return None, entry, t + 1
            memo_key = None
            entries = self._cache_entries
            max_wait = self.config.max_wait
            if (
                entries is not None
                and self._crossings_versioned
                and len(to_store) <= _CERT_STORE_MAX
                and len(from_store) <= _CERT_STORE_MAX
            ):
                memo_key = (
                    CROSSING_TAG,
                    from_strip,
                    to_strip,
                    t,
                    from_pos,
                    to_pos,
                    from_store.version,
                    to_store.version,
                    getattr(self.crossings, "version"),
                )
                cached = entries.get(memo_key, MISSING)
                if cached is not MISSING:
                    self.stats.crossing_hits += 1
                    if cached is None:
                        return None
                    arrival = cached
                    wait = (
                        make_wait(t, from_pos, arrival - 1 - t)
                        if arrival - 1 > t
                        else None
                    )
                    entry = CrossingEntry(
                        arrival,
                        from_cell,
                        to_cell,
                        Segment(arrival, to_pos, arrival, to_pos),
                    )
                    return wait, entry, arrival
                self.stats.crossing_misses += 1
            if len(from_store) == 0:
                wait_blocked = None
            else:
                # Standing at the transit cell only collides at occupied
                # seconds, so the batched occupancy scan answers the full
                # wait window in one store call.
                wait_blocked = from_store.first_occupied(from_pos, t, t + max_wait)
            if wait_blocked is not None and wait_blocked <= t:
                if memo_key is not None:
                    assert self.cache is not None
                    self.cache.put(memo_key, None)
                return None  # cannot even stand at the transit cell
            latest_leave = t + max_wait if wait_blocked is None else wait_blocked - 1
            # Batched entry scan: the first arrival second the target
            # strip leaves the entry cell free, jumping past blocking
            # segments inside the store instead of probing one second at
            # a time from Python.
            arrival = to_store.clear_entry_time(to_pos, t + 1, latest_leave + 1)
            while arrival is not None and (to_cell, from_cell, arrival) in self.crossings:
                # Exact boundary swap with a committed route: resume the
                # scan one second later.
                arrival = to_store.clear_entry_time(to_pos, arrival + 1, latest_leave + 1)
            if arrival is not None:
                wait = make_wait(t, from_pos, arrival - 1 - t) if arrival - 1 > t else None
                point = Segment(arrival, to_pos, arrival, to_pos)
                entry = CrossingEntry(arrival, from_cell, to_cell, point)
                if memo_key is not None and arrival > t + 1:
                    # Only delayed crossings are worth memoising: they
                    # paid a probe loop above, while an immediate step
                    # costs one probe — cheaper than the memo write.
                    assert self.cache is not None
                    self.cache.put(memo_key, arrival)
                return wait, entry, arrival
            if memo_key is not None:
                assert self.cache is not None
                self.cache.put(memo_key, None)
            return None
        finally:
            self.stats.intra_time += _time.perf_counter() - started

    # ------------------------------------------------------------------
    # The search proper
    # ------------------------------------------------------------------
    def run(self, query: Query) -> Optional[RoutePlan]:
        graph = self.graph
        ori, dst, t0 = query.origin, query.destination, query.release_time
        if ori == dst:
            return RoutePlan(t0, ori, dst, [], t0)

        labels: Dict[int, _Label] = {}
        # Entries: (key, -arrival, seq, kind, *payload); kind 0 settles a
        # strip label, kind 1 lazily evaluates one edge (u, v, tp, vp).
        # Edge keys are admissible lower bounds (free-flow transit +
        # hop), so expensive intra-strip planning only runs for edges
        # that are actually competitive — lazy edge evaluation.  Stubs
        # are flattened into the heap tuple itself (arity 9 vs the
        # settle entries' 5): ``seq`` is unique, so tuple comparison
        # never reads past index 2 and the mixed arities are safe.
        heap: List[Tuple[int, ...]] = []
        seq = 0

        di, dj = dst
        use_h = self.config.use_heuristic
        # h(v, vp) = hK[v] + |vp + hM[v]| — see StripGraph.heuristic_tables.
        if use_h:
            hK, hM = graph.heuristic_tables(di, dj)
        else:
            hK = hM = []

        def heuristic(strip: int, pos: int) -> int:
            if not use_h:
                return 0
            return hK[strip] + abs(pos + hM[strip])

        def push(strip: int, label: _Label) -> None:
            nonlocal seq
            existing = labels.get(strip)
            if existing is not None and (
                existing.settled or existing.arrival <= label.arrival
            ):
                return
            labels[strip] = label
            seq += 1
            # Tie-break equal keys toward larger arrival: depth-first
            # across f-plateaus, like the grid A*'s -t tie-break; without
            # it the search sweeps the whole equal-cost band of strips.
            heapq.heappush(
                heap,
                (
                    label.arrival + heuristic(strip, label.pos),
                    -label.arrival,
                    seq,
                    0,
                    strip,
                ),
            )

        # -- origin ------------------------------------------------------
        ori_strip_idx, ori_pos = graph.locate(ori)
        ori_strip = graph.strips[ori_strip_idx]
        if ori_strip.is_aisle:
            push(ori_strip_idx, _Label(t0, ori_pos, -1, [], None))
        else:
            # Rack origin: slide into each adjacent aisle cell.
            labels[ori_strip_idx] = _Label(t0, ori_pos, -1, [], None)
            for cell in graph.warehouse.neighbors(ori):
                v, vp = graph.locate(cell)
                if self.allowed is not None and not self.allowed[v]:
                    continue
                crossing = self._plan_crossing(ori_strip_idx, v, t0, ori_pos, vp)
                if crossing is None:
                    continue
                _wait, entry, arrival = crossing
                push(v, _Label(arrival, vp, ori_strip_idx, [], entry))

        # -- destination bookkeeping --------------------------------------
        dst_strip_idx, dst_pos = graph.locate(dst)
        dst_is_rack = not graph.strips[dst_strip_idx].is_aisle
        # aisle strip index -> [transit positions adjacent to the rack dst]
        rack_targets: Dict[int, List[int]] = {}
        if dst_is_rack:
            for cell in graph.warehouse.neighbors(dst):
                v, vp = graph.locate(cell)
                if self.allowed is not None and not self.allowed[v]:
                    continue
                rack_targets.setdefault(v, []).append(vp)
            if not rack_targets:
                return None  # walled-in rack

        target_strips = frozenset(rack_targets) if dst_is_rack else frozenset((dst_strip_idx,))
        best: Optional[RoutePlan] = None

        _Tail = Tuple[List[Segment], Optional[Leg], int]

        def completion_tail(v: int, arrival: int, pos: int) -> Optional[_Tail]:
            """Final movement within target strip ``v`` from (arrival, pos).

            Returns ``(segments_in_v, rack_leg_or_None, completion_time)``
            or None when the destination cannot be reached from this
            entry.  For rack destinations all adjacent transit cells of
            ``v`` are tried and the earliest completion wins.
            """
            if not dst_is_rack:
                plan = self._intra(v, arrival, pos, dst_pos)
                if plan is None:
                    return None
                return list(plan.segments), None, plan.arrival_time
            tail: Optional[_Tail] = None
            for transit_pos in rack_targets.get(v, ()):
                plan = self._intra(v, arrival, pos, transit_pos)
                if plan is None:
                    continue
                crossing = self._plan_crossing(
                    v, dst_strip_idx, plan.arrival_time, transit_pos, dst_pos
                )
                if crossing is None:
                    continue
                wait, entry, completion = crossing
                if tail is not None and completion >= tail[2]:
                    continue
                segments = list(plan.segments)
                if wait is not None:
                    segments.append(wait)
                tail = segments, Leg(dst_strip_idx, entry, []), completion
            return tail

        def record_completion(base_legs: List[Leg], tail: _Tail) -> None:
            nonlocal best
            segments, rack_leg, completion = tail
            if best is not None and completion >= best.arrival_time:
                return
            legs = list(base_legs)
            last = legs.pop()
            legs.append(Leg(last.strip, last.entry, segments))
            if rack_leg is not None:
                legs.append(rack_leg)
            best = RoutePlan(t0, ori, dst, legs, completion)

        # Local binds for settle's inner loop — it touches every
        # (settled strip, neighbor) pair, far more often than anything
        # else at the strip level.
        aisle_adjacency = graph._aisle_adjacency
        heappush = heapq.heappush
        stats = self.stats
        labels_get = labels.get
        allowed = self.allowed

        def settle(u: int) -> None:
            """Pop handler for a strip label: complete and queue edge stubs."""
            nonlocal seq
            label = labels[u]
            if label.settled:
                return
            label.settled = True
            stats.strips_popped += 1
            arrival = label.arrival
            pos = label.pos

            if u in target_strips:
                # Complete from this strip's own (single) label; additional
                # entries into target strips are tried per incoming edge.
                tail = completion_tail(u, arrival, pos)
                if tail is not None:
                    base = self._chain_legs(labels, u)
                    base.append(Leg(u, label.entry, []))
                    record_completion(base, tail)

            for v, lo, hi, offset, multi in aisle_adjacency[u]:
                if allowed is not None and not allowed[v]:
                    continue
                existing = labels_get(v)
                if v not in target_strips:
                    # Common case: one greedy transit (Fig. 10), fully
                    # inlined — no nested tuple, no helper call for the
                    # overwhelmingly common single-range edge (see
                    # StripGraph's pre-unpacked aisle adjacency).
                    if existing is not None and existing.settled:
                        continue
                    if multi is None:
                        tp = lo if pos < lo else (hi if pos > hi else pos)
                        vp = tp + offset
                    else:
                        tp, vp = _nearest_transit(multi, pos)
                    # Admissible lower bound: free-flow run to the transit
                    # cell plus the boundary hop.
                    bound = arrival + (pos - tp if tp < pos else tp - pos) + 1
                    if existing is not None and existing.arrival <= bound:
                        continue  # dominated before evaluation
                    if use_h:
                        key = bound + hK[v] + abs(vp + hM[v])
                    else:
                        key = bound
                    # Stubs the pop loop could only ever discard (beyond
                    # the detour budget or the incumbent route) are
                    # dropped here instead of bloating the heap.
                    if key > key_limit:
                        continue
                    if best is not None and key >= best.arrival_time:
                        continue
                    seq += 1
                    heappush(heap, (key, -bound, seq, 1, u, v, tp, vp, bound))
                    continue
                # Target strip: additionally try entering right at the
                # goal column — traversing a long congested strip against
                # opposing traffic is the main failure mode of the
                # source-greedy transit.
                ranges = ((lo, hi, offset),) if multi is None else multi
                transits = [_nearest_transit(ranges, pos)]
                goal_pos = (
                    min(rack_targets[v], key=lambda p: abs(p - pos))
                    if dst_is_rack
                    else dst_pos
                )
                aligned = _transit_toward(ranges, pos, goal_pos)
                if aligned is not None and aligned not in transits:
                    transits.append(aligned)
                for tp, vp in transits:
                    bound = arrival + (pos - tp if tp < pos else tp - pos) + 1
                    seq += 1
                    h = hK[v] + abs(vp + hM[v]) if use_h else 0
                    heappush(heap, (bound + h, -bound, seq, 1, u, v, tp, vp, bound))

        def evaluate_edge(u: int, v: int, tp: int, vp: int, bound: int) -> None:
            """Pop handler for an edge stub: run the real intra/crossing."""
            label = labels[u]
            target_v = v in target_strips
            existing = labels.get(v)
            if existing is not None and not target_v:
                # Dominated or already settled: skip the expensive eval.
                if existing.settled or existing.arrival <= bound:
                    return
            stats.edges_relaxed += 1
            plan = self._intra(u, label.arrival, label.pos, tp)
            if plan is None:
                return
            crossing = self._plan_crossing(u, v, plan.arrival_time, tp, vp)
            if crossing is None:
                return
            wait, entry, arrival_v = crossing
            if best is not None and arrival_v >= best.arrival_time:
                return
            leg_segments = list(plan.segments)
            if wait is not None:
                leg_segments.append(wait)
            if target_v:
                # The strip-revisit restriction gives each strip one
                # label, so a blocked final leg from the labelled entry
                # would doom the query; trying completion from *every*
                # entry edge sidesteps that without multi-labelling.
                tail = completion_tail(v, arrival_v, vp)
                if tail is not None:
                    base = self._chain_legs(labels, u)
                    base.append(Leg(u, label.entry, leg_segments))
                    base.append(Leg(v, entry, []))
                    record_completion(base, tail)
            if existing is not None and existing.arrival <= arrival_v:
                return
            push(v, _Label(arrival_v, vp, u, leg_segments, entry))

        # -- main loop ------------------------------------------------------
        key_limit = int(
            t0 + self.config.detour_factor * manhattan(ori, dst) + self.config.max_detour
        )
        heappop = heapq.heappop
        while heap:
            entry = heappop(heap)
            key = entry[0]
            if best is not None and key >= best.arrival_time:
                break
            if key > key_limit:
                break  # nothing within the detour budget remains
            if entry[3] == 0:
                settle(entry[4])
            else:
                evaluate_edge(entry[4], entry[5], entry[6], entry[7], entry[8])

        return best

    def _chain_legs(self, labels: Dict[int, _Label], last_strip: int) -> List[Leg]:
        """Rebuild the legs preceding ``last_strip`` by walking pred links."""
        chain: List[int] = []
        cur = last_strip
        while cur != -1:
            chain.append(cur)
            cur = labels[cur].pred
        chain.reverse()
        legs: List[Leg] = []
        for here, nxt in zip(chain, chain[1:]):
            legs.append(Leg(here, labels[here].entry, labels[nxt].leg_segments))
        return legs


def plan_route(
    graph: StripGraph,
    stores: Sequence[SegmentStore],
    crossings: AbstractSet[CrossingKey],
    query: Query,
    config: SearchConfig,
    stats: Optional[SearchStats] = None,
    cache: Optional[PlanCache] = None,
    allowed: Optional[Sequence[bool]] = None,
) -> Optional[RoutePlan]:
    """Run Algorithm 4 for one query; read-only against the stores.

    ``cache`` optionally memoises intra-strip edge-weight calls across
    (and within) queries; see :mod:`repro.core.plan_cache`.  Results are
    identical with and without it.

    ``allowed`` optionally restricts the search to a subset of strips
    (per-strip boolean mask): disallowed strips are never entered or
    used as rack transit aisles.  Region-sharded planning uses this to
    confine every worker to its own partition band.

    Returns the winning :class:`RoutePlan` or None when the restricted
    search fails (the caller then falls back to grid-level A*).
    """
    return _Search(
        graph, stores, crossings, config, stats or SearchStats(), cache, allowed
    ).run(query)
