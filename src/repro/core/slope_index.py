"""Slope-based segment indexing (Section V-D, Algorithm 3).

Segments are partitioned by slope.  Within one slope class all
segments are parallel, so two of them can only collide when they ride
the *same* trajectory line; the paper detects this by rotating
non-horizontal segments by ±pi/4 (Eq. 4) and bucketing on the rotated
first coordinate.  We bucket on the integer line intercept
``p0 - slope * t0`` instead, which is the rotated coordinate scaled by
sqrt(2) — identical buckets, exact arithmetic.

For a query of slope ``k`` the store therefore:

* looks up only the same-intercept bucket among ``k``-slope segments
  (binary search by start time inside the bucket), and
* falls back to the Section V-B linear judgement for the two *other*
  slope classes, filtered by time-span overlap.

The rotation's side benefit noted in the paper — rotated keys are
almost unique so buckets stay tiny — holds here too: each trajectory
line is typically used by very few concurrent robots.

Every segment list carries a parallel plain-int list of start times, so
the binary searches run entirely in C (``bisect`` on an int list)
instead of evaluating a Python ``key`` lambda O(log n) times per probe.
These probes are the single hottest operation of the whole planner.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.segments import Segment
from repro.core.store_base import FOREVER, ConflictHit, SegmentStore
from repro.geometry.collision import conflict_between_segments

_SLOPES = (0, 1, -1)


class SlopeIndexedStore(SegmentStore):
    """Algorithm 3: per-slope start-time lists plus intercept maps."""

    __slots__ = (
        "queries",
        "judged",
        "version",
        "last_end",
        "_by_start",
        "_start_keys",
        "_by_intercept",
        "_intercept_keys",
        "_size",
        "_max_durations",
    )

    def __init__(self) -> None:
        super().__init__()
        # The paper's S_k: all k-slope segments ordered by start time,
        # with the parallel int key array used for binary search.
        self._by_start: Dict[int, List[Segment]] = {k: [] for k in _SLOPES}
        self._start_keys: Dict[int, List[int]] = {k: [] for k in _SLOPES}
        # The paper's M_k: intercept -> segments ordered by start time
        # (again with a parallel start-time key array per bucket).
        self._by_intercept: Dict[int, Dict[int, List[Segment]]] = {
            k: {} for k in _SLOPES
        }
        self._intercept_keys: Dict[int, Dict[int, List[int]]] = {
            k: {} for k in _SLOPES
        }
        self._size = 0
        # Longest duration per slope class: the candidate windows below
        # only need to reach back far enough for segments of the list
        # being scanned, and long waits (slope 0) would otherwise
        # stretch every cross-slope window too.
        self._max_durations: Dict[int, int] = {k: 0 for k in _SLOPES}

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Algorithm 3, "Insertion"
    # ------------------------------------------------------------------
    def insert(self, segment: Segment, owner: int = -1) -> None:
        k = segment.slope
        t0 = segment.t0
        keys = self._start_keys[k]
        idx = bisect.bisect_right(keys, t0)
        keys.insert(idx, t0)
        self._by_start[k].insert(idx, segment)
        bucket_keys = self._intercept_keys[k].get(segment.intercept)
        if bucket_keys is None:
            bucket_keys = self._intercept_keys[k][segment.intercept] = []
            bucket = self._by_intercept[k][segment.intercept] = []
        else:
            bucket = self._by_intercept[k][segment.intercept]
        idx = bisect.bisect_right(bucket_keys, t0)
        bucket_keys.insert(idx, t0)
        bucket.insert(idx, segment)
        self._size += 1
        if segment.duration > self._max_durations[k]:
            self._max_durations[k] = segment.duration
        self._bump_insert(segment)

    def remove(self, segment: Segment) -> None:
        """Decommit one segment: undo both index entries of :meth:`insert`.

        Both indexes insert at the *end* of their start-time tie window
        (``bisect_right``), so removal drops the *last* value-equal
        instance — the exact inverse, keeping insert-then-remove round
        trips bit-identical even with duplicates among ties.
        """
        k = segment.slope
        t0 = segment.t0
        keys = self._start_keys[k]
        segs = self._by_start[k]
        lo = bisect.bisect_left(keys, t0)
        hi = bisect.bisect_right(keys, t0, lo)
        for idx in reversed(range(lo, hi)):
            if segs[idx] == segment:
                del segs[idx]
                del keys[idx]
                break
        else:
            raise KeyError(f"segment {segment!r} not stored")
        bucket = self._by_intercept[k][segment.intercept]
        bucket_keys = self._intercept_keys[k][segment.intercept]
        blo = bisect.bisect_left(bucket_keys, t0)
        bhi = bisect.bisect_right(bucket_keys, t0, blo)
        for idx in reversed(range(blo, bhi)):
            if bucket[idx] == segment:
                del bucket[idx]
                del bucket_keys[idx]
                break
        if not bucket:
            del self._by_intercept[k][segment.intercept]
            del self._intercept_keys[k][segment.intercept]
        self._size -= 1
        if segment.duration == self._max_durations[k]:
            self._max_durations[k] = max(
                (s.duration for s in segs), default=0
            )
        self._bump_version()

    # ------------------------------------------------------------------
    # Algorithm 3, "Collision Judgement"
    # ------------------------------------------------------------------
    def earliest_conflict(self, segment: Segment) -> Optional[ConflictHit]:
        self.queries += 1
        best = self._same_slope_conflict(segment)
        if best is not None and best[0] <= segment.t0:
            return best
        for k in _SLOPES:
            if k == segment.slope:
                continue
            candidate = self._cross_slope_conflict(segment, k)
            if candidate is not None and (best is None or candidate[0] < best[0]):
                best = candidate
                if best[0] <= segment.t0:
                    break
        return best

    def _same_slope_conflict(self, segment: Segment) -> Optional[ConflictHit]:
        """Same-slope conflicts: only the same-intercept bucket matters."""
        bucket = self._by_intercept[segment.slope].get(segment.intercept)
        if not bucket:
            return None
        keys = self._intercept_keys[segment.slope][segment.intercept]
        lo = bisect.bisect_left(keys, segment.t0 - self._max_durations[segment.slope])
        end = bisect.bisect_right(keys, segment.t1)
        for idx in range(lo, end):
            other = bucket[idx]
            if other.t1 < segment.t0:
                continue
            self.judged += 1
            # Same trajectory line with overlapping spans: the first
            # shared second; ascending start order makes the first hit
            # the earliest one.
            return (max(segment.t0, other.t0), other)
        return None

    def _cross_slope_conflict(self, segment: Segment, k: int) -> Optional[ConflictHit]:
        """Judge the time-overlapping segments of a different slope class."""
        candidates = self._by_start[k]
        keys = self._start_keys[k]
        lo = bisect.bisect_left(keys, segment.t0 - self._max_durations[k])
        end = bisect.bisect_right(keys, segment.t1)
        found: Optional[ConflictHit] = None
        for idx in range(lo, end):
            other = candidates[idx]
            if other.t1 < segment.t0:
                continue
            self.judged += 1
            conflict = conflict_between_segments(segment, other)
            if conflict is None:
                continue
            if found is None or conflict.blocked_time < found[0]:
                found = (conflict.blocked_time, other)
                if found[0] <= segment.t0:
                    break
        return found

    # ------------------------------------------------------------------
    # Point queries (A* fallback fast path)
    # ------------------------------------------------------------------
    def occupied(self, pos: int, t: int) -> bool:
        for k in _SLOPES:
            bucket = self._by_intercept[k].get(pos - k * t)
            if not bucket:
                continue
            keys = self._intercept_keys[k][pos - k * t]
            lo = bisect.bisect_left(keys, t - self._max_durations[k])
            end = bisect.bisect_right(keys, t)
            for idx in range(lo, end):
                if bucket[idx].t1 >= t:
                    return True
        return False

    # ------------------------------------------------------------------
    # Free-flow window certificates
    # ------------------------------------------------------------------
    def free_window(
        self, lo: int, hi: int, t0: int, t1: int
    ) -> Optional[Tuple[int, int]]:
        # Per-slope loops with the band test inlined per slope class:
        # waits are in the band iff their cell is, unit-slope segments
        # iff their position range overlaps it.  Runs once per free-flow
        # certification on the planner's hot path.
        w_lo, w_hi = 0, FOREVER
        for k in _SLOPES:
            for segment in self._by_start[k]:
                p0 = segment.p0
                if k == 0:
                    if p0 < lo or p0 > hi:
                        continue
                    a, b = segment.t0, segment.t1
                elif k == 1:
                    if segment.p1 < lo or p0 > hi:
                        continue
                    a = segment.t0 + (lo - p0 if lo > p0 else 0)
                    b = min(segment.t0 + (hi - p0), segment.t1)
                else:
                    if p0 < lo or segment.p1 > hi:
                        continue
                    a = segment.t0 + (p0 - hi if hi < p0 else 0)
                    b = min(segment.t0 + (p0 - lo), segment.t1)
                if a <= t1 and b >= t0:
                    return None
                if b < t0:
                    if b >= w_lo:
                        w_lo = b + 1
                elif a - 1 < w_hi:
                    w_hi = a - 1
        return w_lo, w_hi

    # band_signature: the base implementation walks iter_segments below,
    # i.e. the per-slope start-time lists in _SLOPES order — exactly the
    # candidate scan order of earliest_conflict (the same-intercept
    # bucket of a slope class is an order-preserving subsequence of that
    # class's start-time list), so the inherited signature satisfies the
    # canonical-order contract.

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def iter_segments(self) -> Iterator[Segment]:
        for k in _SLOPES:
            yield from self._by_start[k]

    def prune(self, before: int) -> int:
        if all(s.t1 >= before for k in _SLOPES for s in self._by_start[k]):
            return 0  # no-op: the index (and its version) stays untouched
        dropped = 0
        max_durations = {k: 0 for k in _SLOPES}
        for k in _SLOPES:
            kept = [s for s in self._by_start[k] if s.t1 >= before]
            dropped += len(self._by_start[k]) - len(kept)
            self._by_start[k] = kept
            self._start_keys[k] = [s.t0 for s in kept]
            for s in kept:
                if s.duration > max_durations[k]:
                    max_durations[k] = s.duration
            buckets = self._by_intercept[k]
            bucket_keys = self._intercept_keys[k]
            for key in list(buckets):
                alive = [s for s in buckets[key] if s.t1 >= before]
                if alive:
                    if len(alive) != len(buckets[key]):
                        buckets[key] = alive
                        bucket_keys[key] = [s.t0 for s in alive]
                else:
                    del buckets[key]
                    del bucket_keys[key]
        self._size -= dropped
        # Recompute from the survivors so the candidate windows stay
        # tight after long multiday runs instead of remembering the
        # longest segment ever stored.
        self._max_durations = max_durations
        self._bump_version()
        return dropped

    def clear(self) -> None:
        if not self._size:
            self.last_end = -1  # scalar reset only; nothing to invalidate
            return
        for k in _SLOPES:
            self._by_start[k].clear()
            self._start_keys[k].clear()
            self._by_intercept[k].clear()
            self._intercept_keys[k].clear()
        self._size = 0
        self._max_durations = {k: 0 for k in _SLOPES}
        self.last_end = -1
        self._bump_version()
