"""Common interface of per-strip segment stores.

A *segment store* holds the committed segments of one strip and answers
the question Algorithm 2 needs: given a candidate segment, what is the
earliest time at which it becomes blocked by an existing segment — and
by *which* segment.  Knowing the blocking segment lets the intra-strip
search jump its waiting time directly past the obstacle instead of
probing second by second.

Two implementations exist:

* :class:`repro.core.naive_store.NaiveSegmentStore` — Section V-B's
  ordered set with linear judgement;
* :class:`repro.core.slope_index.SlopeIndexedStore` — Section V-D's
  slope-based index (Algorithm 3).

Both also answer point-occupancy queries, which the grid-level A*
fallback uses to stay consistent with previously committed routes.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.core.segments import Segment

#: (blocked_time, blocking_segment)
ConflictHit = Tuple[int, Segment]

#: Opaque, equality-compared content fingerprint of a store region;
#: element shape is store-specific (see :meth:`SegmentStore.band_signature`).
BandSignature = Tuple[object, ...]

#: Upper bound standing in for "no segment ever blocks this band again";
#: free-flow windows reported by :meth:`SegmentStore.free_window` use it
#: as their open right end.
FOREVER = 1 << 60


def _band_time_interval(
    segment: Segment, lo: int, hi: int
) -> Optional[Tuple[int, int]]:
    """Closed time interval during which ``segment`` sits inside ``[lo, hi]``.

    ``None`` when the segment's trajectory never enters the position
    band.  Conflicts between segments (vertex or swap) always happen at
    a shared position inside both segments' position ranges, so any
    segment able to conflict with a probe confined to the band must be
    inside the band — at a (possibly half-integer) time covered by the
    closed integer interval returned here.
    """
    p0, p1 = segment.p0, segment.p1
    pmin, pmax = (p0, p1) if p0 <= p1 else (p1, p0)
    if pmax < lo or pmin > hi:
        return None
    k = segment.slope
    if k == 0:
        return segment.t0, segment.t1
    if k == 1:
        enter = segment.t0 + (lo - p0 if lo > p0 else 0)
        exit_ = segment.t0 + (hi - p0)
    else:
        enter = segment.t0 + (p0 - hi if hi < p0 else 0)
        exit_ = segment.t0 + (p0 - lo)
    return enter, min(exit_, segment.t1)


def _entry_clear_time(obstacle: Segment, pos: int, t_from: int) -> int:
    """First time >= ``t_from`` at which ``obstacle`` has cleared ``pos``.

    For a wait segment parked on the cell that is one past its end; for
    a moving segment, one past the single second it passes the cell.
    Used to jump occupancy scans over an obstacle instead of probing
    second by second.
    """
    if obstacle.slope == 0:
        return max(t_from, obstacle.t1 + 1)
    t_pass = (pos - obstacle.intercept) * obstacle.slope
    return max(t_from, t_pass + 1)

#: Process-wide monotone source of store versions.  Every content
#: mutation of any store takes a fresh value, so two distinct content
#: states never share a version — even across store *instances*.  That
#: last property is what lets :class:`StripStoreMap.prune` drop an
#: emptied store and later materialise a fresh one for the same strip
#: without any risk of a stale :mod:`repro.core.plan_cache` entry keyed
#: on the old incarnation being served against the new one.
_VERSION_COUNTER = itertools.count(1)


def next_version() -> int:
    """A fresh globally-unique content version.

    Shared by the segment stores and the
    :class:`repro.core.crossings.CrossingLedger` so every piece of
    committed-traffic state draws from one monotone staleness signal.
    """
    return next(_VERSION_COUNTER)


class SegmentStore(ABC):
    """Committed segments of one strip plus collision queries."""

    __slots__ = ()

    #: True when full scans of this store are cheap enough that the
    #: certificate layer should not throttle itself on store size (see
    #: ``repro.core.inter_strip._CERT_STORE_MAX``).  Array-backed
    #: layouts with vectorised scans and an incremental band interval
    #: index set this; object-backed layouts keep the size throttle.
    cheap_scans: bool = False

    def __init__(self) -> None:
        #: number of earliest_conflict queries served (instrumentation)
        self.queries = 0
        #: number of pairwise judgements performed (instrumentation)
        self.judged = 0
        #: content version: changes exactly when the stored segment set
        #: changes (insert, effective prune, effective clear).  Cache
        #: keys derived from it are therefore never stale.
        self.version = next(_VERSION_COUNTER)
        #: high-water mark over the end times of every segment *ever*
        #: inserted: an upper bound on the latest end among the stored
        #: segments, maintained in O(1).  ``t > last_end`` certifies the
        #: whole strip is traffic-free from ``t`` on — the degenerate
        #: free-flow window ``(last_end + 1, FOREVER)`` for every band —
        #: without touching a single segment.  ``remove``/``prune`` leave
        #: it (possibly stale-high, which only costs certificate hits,
        #: never soundness); ``clear`` resets it.
        self.last_end = -1

    def _bump_version(self) -> None:
        """Take a fresh globally-unique version after a content change."""
        self.version = next(_VERSION_COUNTER)

    def _bump_insert(self, segment: Segment) -> None:
        """Version bump plus :attr:`last_end` upkeep, for insert paths."""
        if segment.t1 > self.last_end:
            self.last_end = segment.t1
        self.version = next(_VERSION_COUNTER)

    @abstractmethod
    def insert(self, segment: Segment, owner: int = -1) -> None:
        """Commit a segment.

        Zero-duration *point* segments are legal: they represent the
        paper's footnote-1 case of a route touching a strip for a single
        second (e.g. departing its origin cell immediately).

        ``owner`` is the query id of the route the segment belongs to
        (-1 when unattributed, e.g. blockages).  It is advisory
        bookkeeping for audit queries such as
        ``ColumnarSegmentStore.owners_overlapping`` — collision answers
        and the remove-by-value contract never depend on it, and
        layouts without owner tracking may ignore it.
        """

    @abstractmethod
    def remove(self, segment: Segment) -> None:
        """Decommit one stored segment (by value).

        Stores are multisets: committing a route may legally store two
        value-equal segments (e.g. a recovery hold ending exactly at the
        new departure second alongside the new route's origin-presence
        point), so ``remove`` drops exactly *one* instance.  Removing a
        segment that is not stored raises :class:`KeyError` — decommit
        bugs must fail loudly, silently ignoring them would desynchronise
        the stores from the surviving routes.

        Bumps the content version exactly like :meth:`insert`, which is
        what keeps :mod:`repro.core.plan_cache` entries valid for free.
        """

    @abstractmethod
    def earliest_conflict(self, segment: Segment) -> Optional[ConflictHit]:
        """Earliest blocked time of ``segment`` and the segment causing it.

        ``None`` means the whole candidate segment is collision-free.
        """

    @abstractmethod
    def iter_segments(self) -> Iterator[Segment]:
        """Iterate over all stored segments (order unspecified)."""

    @abstractmethod
    def prune(self, before: int) -> int:
        """Drop segments finishing strictly before ``before``; return count."""

    @abstractmethod
    def clear(self) -> None:
        """Remove every stored segment."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored segments."""

    def free_window(
        self, lo: int, hi: int, t0: int, t1: int
    ) -> Optional[Tuple[int, int]]:
        """Maximal time window around ``[t0, t1]`` with an empty band.

        Returns ``(w_lo, w_hi)`` such that ``w_lo <= t0 <= t1 <= w_hi``
        and *no* stored segment is inside the position band ``[lo, hi]``
        at any time in ``[w_lo, w_hi]`` — a *free-flow certificate*: any
        unit-speed move confined to the band whose whole time span lies
        inside the window is provably collision-free against this store
        state.  ``w_hi`` may be :data:`FOREVER`.  Returns ``None`` when
        some segment enters the band during ``[t0, t1]`` itself (the
        certificate is conservative: a segment inside the band need not
        actually conflict with a particular move).

        The window describes *this* content state; callers must key any
        cached use of it on :attr:`version`.
        """
        w_lo, w_hi = 0, FOREVER
        for segment in self.iter_segments():
            interval = _band_time_interval(segment, lo, hi)
            if interval is None:
                continue
            a, b = interval
            if a <= t1 and b >= t0:
                return None
            if b < t0:
                if b >= w_lo:
                    w_lo = b + 1
            elif a - 1 < w_hi:
                w_hi = a - 1
        return w_lo, w_hi

    def band_signature(self, lo: int, hi: int, t0: int, t1: int) -> BandSignature:
        """Canonical fingerprint of the segments able to affect probes in a region.

        The region is the position band ``[lo, hi]`` crossed with the
        time span ``[t0, t1]``.  The signature is the ordered tuple of
        raw ``(t0, p0, t1, p1)`` tuples of every stored segment whose
        position range and time span both intersect the region — a
        superset of the segments any :meth:`earliest_conflict` probe
        confined to the region could collide with.

        **Contract:** the order must follow the store's own candidate
        scan order, so that *equal* signatures on two content states
        guarantee every probe confined to the region answers identically
        on both — including which blocking segment is reported when two
        candidates tie on the blocked time.  The default implementation
        relies on :meth:`iter_segments` following that scan order;
        stores whose scan order differs must override.
        """
        return tuple(
            s.raw
            for s in self.iter_segments()
            if s.t0 <= t1
            and s.t1 >= t0
            and (s.p0 if s.p0 <= s.p1 else s.p1) <= hi
            and (s.p0 if s.p0 >= s.p1 else s.p1) >= lo
        )

    def earliest_block(self, segment: Segment) -> Optional[int]:
        """First integer time at which ``segment`` conflicts, or None."""
        hit = self.earliest_conflict(segment)
        return None if hit is None else hit[0]

    def occupied(self, pos: int, t: int) -> bool:
        """True when some stored segment occupies ``pos`` at time ``t``."""
        return self.earliest_conflict(Segment(t, pos, t, pos)) is not None

    def move_blocked(self, t: int, p_from: int, p_to: int) -> bool:
        """True when the unit move ``p_from -> p_to`` over ``[t, t+1]`` conflicts.

        Catches the target-cell vertex conflict and the swap conflict in
        one query; used by the A* fallback.
        """
        return self.earliest_conflict(Segment(t, p_from, t + 1, p_to)) is not None

    def first_occupied(self, pos: int, t_lo: int, t_hi: int) -> Optional[int]:
        """Earliest second in ``[t_lo, t_hi]`` at which ``pos`` is occupied.

        ``None`` when the cell is free for the whole span.  This is the
        batched form of the wait-probe the intra-strip search issues: a
        stationary probe parked on ``pos`` can only collide at the exact
        seconds some stored segment occupies the cell (unit slopes make
        swaps against a stationary segment impossible), so the answer
        equals ``earliest_block`` of the corresponding wait segment.
        Columnar layouts override this with a single vectorised scan.
        """
        if t_hi < t_lo:
            return None
        return self.earliest_block(Segment(t_lo, pos, t_hi, pos))

    def clear_entry_time(self, pos: int, t_from: int, t_cap: int) -> Optional[int]:
        """First second in ``[t_from, t_cap]`` at which ``pos`` is free.

        ``None`` when the cell stays occupied through the whole span.
        This batches the per-second occupancy scans of the inter-strip
        crossing probe and the planner's start-delay ladder into one
        call; the default walks point probes but jumps past each
        obstacle with :func:`_entry_clear_time`, so object-backed
        layouts answer identically (if more slowly) than the columnar
        single-scan override.
        """
        t = t_from
        while t <= t_cap:
            hit = self.earliest_conflict(Segment(t, pos, t, pos))
            if hit is None:
                return t
            t = max(t + 1, _entry_clear_time(hit[1], pos, t))
        return None

    def band_clear(self, lo: int, hi: int, t0: int, t1: int) -> bool:
        """Certify "no stored segment touches band [lo, hi] in [t0, t1]".

        ``True`` is a proof of absence; ``False`` only means the layout
        cannot certify it cheaply.  Object-backed layouts have no index
        to answer from, so they always decline — the columnar layout
        overrides this with its per-band interval index.
        """
        return False

    def scan_cost_hint(self, lo: int, hi: int, t0: int, t1: int) -> int:
        """Upper-bound estimate of the entries a region scan would touch.

        The certificate layer uses this to judge, per probe region,
        whether minting a certificate is worth its scan; without an
        index the store size itself is the only available bound.
        """
        return len(self)


class _EmptyStore(SegmentStore):
    """Immutable empty store shared by all strips without traffic."""

    __slots__ = ("queries", "judged", "version", "last_end")

    def __init__(self) -> None:
        self.queries = 0
        self.judged = 0
        self.last_end = -1
        # Version 0 is reserved for "no traffic at all".  Every strip
        # without a materialised store shares it, which is sound: a
        # planning result against an empty store depends only on the
        # query, so such cache entries stay valid whenever the strip is
        # (or becomes, after pruning) empty again.
        self.version = 0

    def insert(self, segment: Segment, owner: int = -1) -> None:  # pragma: no cover - guarded
        raise TypeError("the shared empty store is read-only")

    def remove(self, segment: Segment) -> None:
        raise KeyError(f"segment {segment!r} not stored (strip has no traffic)")

    def earliest_conflict(self, segment: Segment) -> Optional[ConflictHit]:
        return None

    def iter_segments(self) -> Iterator[Segment]:
        return iter(())

    def prune(self, before: int) -> int:
        return 0

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def occupied(self, pos: int, t: int) -> bool:
        return False

    def move_blocked(self, t: int, p_from: int, p_to: int) -> bool:
        return False

    def free_window(self, lo: int, hi: int, t0: int, t1: int) -> Optional[Tuple[int, int]]:
        return 0, FOREVER

    def band_signature(self, lo: int, hi: int, t0: int, t1: int) -> BandSignature:
        return ()

    def first_occupied(self, pos: int, t_lo: int, t_hi: int) -> Optional[int]:
        return None

    def clear_entry_time(self, pos: int, t_from: int, t_cap: int) -> Optional[int]:
        return t_from if t_from <= t_cap else None

    def band_clear(self, lo: int, hi: int, t0: int, t1: int) -> bool:
        return True

    def scan_cost_hint(self, lo: int, hi: int, t0: int, t1: int) -> int:
        return 0


EMPTY_STORE = _EmptyStore()


class StripStoreMap:
    """Lazy per-strip store collection.

    Most strips never see traffic (rack strips, remote aisles), so real
    stores are only materialised on first insert; reads against an
    untouched strip hit a shared immutable empty store.  This keeps the
    planner's resident state — the paper's MC metric — proportional to
    live traffic instead of warehouse size.
    """

    def __init__(
        self, n_strips: int, factory: Callable[[], SegmentStore]
    ) -> None:
        self._n = n_strips
        self._factory = factory
        self._stores: Dict[int, SegmentStore] = {}

    def __getitem__(self, idx: int) -> SegmentStore:
        return self._stores.get(idx, EMPTY_STORE)

    def version_of(self, idx: int) -> int:
        """Content version of a strip's store (0 for untouched strips)."""
        return self._stores.get(idx, EMPTY_STORE).version

    def materialize(self, idx: int) -> SegmentStore:
        """The real (writable) store of a strip, created on demand."""
        store = self._stores.get(idx)
        if store is None:
            if not 0 <= idx < self._n:
                raise IndexError(f"strip index {idx} out of range")
            store = self._stores[idx] = self._factory()
        return store

    def active_items(self) -> Iterator[Tuple[int, SegmentStore]]:
        """(strip_index, store) pairs that hold at least one segment."""
        return iter(self._stores.items())

    def remove(self, idx: int, segment: Segment) -> None:
        """Decommit one segment from a strip's store.

        A store emptied by the removal is dropped, reverting the strip
        to the shared :data:`EMPTY_STORE` (version 0) — sound for the
        same reason :meth:`prune` may drop emptied stores: version-0
        cache entries describe a traffic-free strip, which the strip now
        is again.
        """
        store = self._stores.get(idx)
        if store is None:
            raise KeyError(f"segment {segment!r} not stored (strip {idx} has no traffic)")
        store.remove(segment)
        if len(store) == 0:
            del self._stores[idx]

    def prune(self, before: int) -> int:
        # Dropping an emptied store reverts the strip to EMPTY_STORE
        # (version 0), whose cache entries describe a traffic-free strip
        # and are therefore valid again.  A later materialize() builds a
        # brand-new store whose versions come from the global counter,
        # so cache entries keyed on the dropped incarnation can never be
        # resurrected.
        dropped = 0
        for idx in list(self._stores):
            store = self._stores[idx]
            dropped += store.prune(before)
            if len(store) == 0:
                del self._stores[idx]
        return dropped

    def clear(self) -> None:
        self._stores.clear()

    def total_segments(self) -> int:
        return sum(len(s) for s in self._stores.values())

    def __iter__(self) -> Iterator[SegmentStore]:
        """Iterate over the materialised (traffic-bearing) stores."""
        return iter(self._stores.values())

    def __len__(self) -> int:
        return self._n
