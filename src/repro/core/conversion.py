"""Conversion between strip/segment plans and grid-level routes.

Fig. 22(a) of the paper reports "conversion between strip- and
grid-based representation" as one of the three components of SRP's
planning time; this module is that component, instrumented separately
by :class:`repro.core.planner.SRPPlanner`.

Two directions are provided:

* :func:`plan_to_route` — materialise a :class:`RoutePlan` (chain of
  per-strip segment legs) into the grid-per-second :class:`Route` that
  the simulator executes;
* :func:`route_to_strip_artifacts` — decompose an arbitrary grid route
  (produced by the A* fallback) back into per-strip segments, entry
  points and crossing events, so fallback routes live in the same
  bookkeeping as strip-level routes and later queries plan around them.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.inter_strip import CrossingKey, RoutePlan
from repro.core.segments import Segment
from repro.core.strips import StripGraph
from repro.exceptions import PlanningFailedError
from repro.types import Grid, Route


def plan_to_route(graph: StripGraph, plan: RoutePlan) -> Route:
    """Materialise a strip-level plan into one grid per timestep.

    Waiting gaps before crossings (e.g. a robot pausing under its rack
    before sliding into the aisle) are filled with repeated grids so the
    resulting route satisfies the unit-speed contract of Definition 2.
    """
    grids: List[Grid] = [plan.origin]
    t = plan.start_time
    anchors = graph.anchors

    for leg in plan.legs:
        strip = graph.strips[leg.strip]
        if leg.entry is not None:
            # Wait at the previous cell until the crossing second ...
            pause = leg.entry.time - 1 - t
            if pause > 0:
                grids.extend([grids[-1]] * pause)
                t += pause
            # ... then step across the boundary.
            grids.append(leg.entry.to_cell)
            t += 1
        for seg in leg.segments:
            if seg.t0 != t or strip.grid_at(seg.p0) != grids[-1]:
                raise PlanningFailedError(
                    f"discontinuous plan: segment {seg} does not start at "
                    f"time {t} grid {grids[-1]}",
                    release_time=plan.start_time,
                    phase="conversion",
                )
            # Whole-segment extension — one batch per segment instead of
            # a grid_at call per simulated second.
            step = seg.slope
            duration = seg.duration
            if step == 0:
                grids.extend([grids[-1]] * duration)
            else:
                ai, aj, lat = anchors[leg.strip]
                pos = seg.p0
                if lat:
                    grids.extend(
                        (ai, aj + pos + step * k) for k in range(1, duration + 1)
                    )
                else:
                    grids.extend(
                        (ai + pos + step * k, aj) for k in range(1, duration + 1)
                    )
            t += duration
    if t != plan.arrival_time or grids[-1] != plan.destination:
        raise PlanningFailedError(
            f"plan materialised to time {t}, grid {grids[-1]}; expected "
            f"time {plan.arrival_time}, grid {plan.destination}",
            release_time=plan.start_time,
            phase="conversion",
        )
    return Route(plan.start_time, grids)


def route_to_strip_artifacts(
    graph: StripGraph, route: Route
) -> Tuple[List[Tuple[int, Segment]], List[CrossingKey]]:
    """Decompose a grid route into per-strip segments plus crossing events.

    Returns ``(segments, crossings)`` where ``segments`` are
    ``(strip_index, segment)`` pairs ready for the per-strip stores —
    maximal move/wait runs inside each strip plus a point segment at
    every strip entry — and ``crossings`` are the boundary crossing keys
    mirroring what the strip-level planner commits for its own routes.
    """
    segments: List[Tuple[int, Segment]] = []
    crossings: List[CrossingKey] = []
    steps = list(route.steps())
    if len(steps) < 2:
        return segments, crossings

    cur_strip, cur_pos = graph.locate(steps[0][1])
    # The origin's standing instant must be covered even when the route
    # leaves its first strip immediately (footnote-1 point case).
    segments.append((cur_strip, Segment(steps[0][0], cur_pos, steps[0][0], cur_pos)))
    run_start_t, run_start_p = steps[0][0], cur_pos
    prev_t, prev_p, prev_grid = run_start_t, run_start_p, steps[0][1]
    run_slope: int | None = None  # slope of the open run, None when empty

    def flush(end_t: int, end_p: int) -> None:
        if end_t > run_start_t:
            segments.append((cur_strip, Segment(run_start_t, run_start_p, end_t, end_p)))

    for t, grid in steps[1:]:
        strip_idx, pos = graph.locate(grid)
        if strip_idx != cur_strip:
            # Close the run in the old strip, mark the entry point and
            # record the boundary crossing event.
            flush(prev_t, prev_p)
            segments.append((strip_idx, Segment(t, pos, t, pos)))
            crossings.append((prev_grid, grid, t))
            cur_strip = strip_idx
            run_start_t, run_start_p = t, pos
            run_slope = None
        else:
            step = pos - prev_p
            if run_slope is not None and step != run_slope:
                flush(prev_t, prev_p)
                run_start_t, run_start_p = prev_t, prev_p
            run_slope = step
        prev_t, prev_p, prev_grid = t, pos, grid
    flush(prev_t, prev_p)
    return segments, crossings
