"""Segment representation of routes within strips (Section V-A).

A :class:`Segment` is the paper's Definition 6 tuple ``<s, f>`` in the
(time, position) plane.  Because robots move at unit speed along a
strip, slopes are restricted to +1 (forward), -1 (backward) and 0
(waiting), which is what makes collision detection cheap (Remarks in
Section V-A).

The module also exposes the paper's Eq. (4) coordinate rotation.  The
planner itself keys same-slope segments by their integer line intercept
``p0 - slope * t0``, which equals the rotated coordinate ``s'[0]``
scaled by sqrt(2) — identical bucketing with exact arithmetic.

Segments sit on the hottest path of the planner (every collision check
touches several), so the class is slotted and precomputes its slope and
intercept at construction.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.geometry.collision import RawSegment


class Segment:
    """A route fragment within one strip.

    Attributes:
        t0, p0: start time and start position (the paper's ``s``).
        t1, p1: finish time and finish position (the paper's ``f``).
        slope: +1 forward, -1 backward, 0 waiting or a degenerate point.
        intercept: integer line intercept ``p0 - slope * t0`` — the
            exact analogue of Eq. (4)'s rotated first coordinate.
    """

    __slots__ = ("t0", "p0", "t1", "p1", "slope", "intercept")

    def __init__(self, t0: int, p0: int, t1: int, p1: int) -> None:
        if t1 < t0:
            raise ValueError(f"segment runs backwards in time: {(t0, p0, t1, p1)}")
        if p1 != p0 and abs(p1 - p0) != t1 - t0:
            raise ValueError(f"segment is not unit speed or waiting: {(t0, p0, t1, p1)}")
        self.t0 = t0
        self.p0 = p0
        self.t1 = t1
        self.p1 = p1
        if p1 == p0:
            self.slope = 0
        else:
            self.slope = 1 if p1 > p0 else -1
        self.intercept = p0 - self.slope * t0

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def raw(self) -> RawSegment:
        """The flattened tuple used by the geometry layer."""
        return (self.t0, self.p0, self.t1, self.p1)

    @property
    def duration(self) -> int:
        return self.t1 - self.t0

    @property
    def is_point(self) -> bool:
        return self.t0 == self.t1

    @property
    def is_wait(self) -> bool:
        return self.p0 == self.p1 and self.t1 > self.t0

    def position_at(self, t: int) -> int:
        """Position at integer time ``t`` (must lie within the span)."""
        if not self.t0 <= t <= self.t1:
            raise ValueError(f"time {t} outside segment span [{self.t0}, {self.t1}]")
        return self.p0 + self.slope * (t - self.t0)

    def rotated(self) -> Tuple[float, float]:
        """Eq. (4): rotate the start point by -pi/4 (slope +1) or +pi/4 (slope -1).

        Provided for fidelity with the paper and exercised in tests; the
        index buckets by :attr:`intercept`, which equals ``sqrt(2)``
        times the rotated first coordinate (up to sign convention).
        """
        theta = -math.pi / 4 if self.slope >= 0 else math.pi / 4  # srplint: allow-float paper-fidelity Eq. 4 helper, test-only
        cos_t, sin_t = math.cos(theta), math.sin(theta)  # srplint: allow-float paper-fidelity Eq. 4 helper, test-only
        x, y = self.t0, self.p0
        return (cos_t * x - sin_t * y, sin_t * x + cos_t * y)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Segment):
            return NotImplemented
        return (
            self.t0 == other.t0
            and self.p0 == other.p0
            and self.t1 == other.t1
            and self.p1 == other.p1
        )

    def __hash__(self) -> int:
        return hash((self.t0, self.p0, self.t1, self.p1))

    def __repr__(self) -> str:
        return f"Segment(t0={self.t0}, p0={self.p0}, t1={self.t1}, p1={self.p1})"


def make_move(t: int, p_from: int, p_to: int) -> Segment:
    """Segment for a unit-speed move from ``p_from`` to ``p_to`` starting at ``t``."""
    return Segment(t, p_from, t + abs(p_to - p_from), p_to)


def make_wait(t: int, p: int, duration: int) -> Segment:
    """Segment for waiting ``duration`` seconds at position ``p`` from time ``t``."""
    if duration < 0:
        raise ValueError("wait duration must be non-negative")
    return Segment(t, p, t + duration, p)
