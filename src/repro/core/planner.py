"""The end-to-end Strip-based Route Planner (the paper's SRP).

:class:`SRPPlanner` wires the pieces together exactly as Fig. 2
describes: strip graph construction once at start-up, then per query an
inter-strip Dijkstra whose edge weights come from intra-strip
segment-based planning, a conversion of the winning segment plan to a
grid route, and commitment of the plan's segments into the per-strip
stores so subsequent queries are collision-aware of it.

Instrumentation matches Fig. 22(a)'s time breakdown: ``inter_time``,
``intra_time`` and ``conversion_time`` are accumulated separately.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.columnar_store import ColumnarSegmentStore
from repro.core.conversion import plan_to_route, route_to_strip_artifacts
from repro.core.crossings import CrossingLedger
from repro.core.fallback import SegmentStoreChecker, fallback_plan
from repro.core.inter_strip import CrossingKey, RoutePlan, SearchConfig, SearchStats, plan_route
from repro.core.naive_store import NaiveSegmentStore
from repro.core.plan_cache import PlanCache
from repro.core.segments import Segment
from repro.core.slope_index import SlopeIndexedStore
from repro.core.store_base import SegmentStore, StripStoreMap
from repro.core.strips import StripGraph, build_strip_graph
from repro.core.time_bucket_store import TimeBucketStore
from repro.exceptions import InvalidQueryError, PlanningFailedError
from repro.pathfinding.distance import StripDistanceMaps
from repro.planner_base import Planner
from repro.types import Grid, Query, Route, concatenate_routes
from repro.warehouse.matrix import Warehouse


@dataclass
class SRPStats:
    """Per-planner counters; times in seconds (Fig. 22 breakdown)."""

    inter_time: float = 0.0  # srplint: allow-float perf_counter seconds, reporting only
    intra_time: float = 0.0  # srplint: allow-float perf_counter seconds, reporting only
    #: portion of intra_time spent on plan-cache hits (certificate and
    #: exact-key lookups that returned a result without a real search)
    cache_time: float = 0.0  # srplint: allow-float perf_counter seconds, reporting only
    conversion_time: float = 0.0  # srplint: allow-float perf_counter seconds, reporting only
    queries: int = 0
    fallbacks: int = 0
    start_delays: int = 0
    intra_calls: int = 0
    intra_expansions: int = 0
    strips_popped: int = 0
    edges_relaxed: int = 0
    #: intra-strip calls answered from the plan cache (positive results,
    #: including window and shift certificate hits)
    cache_hits: int = 0
    #: intra-strip calls answered from the negative cache (memoised failures)
    cache_negative_hits: int = 0
    #: intra-strip calls that had to run the real search
    cache_misses: int = 0
    #: positive hits served by a free-flow window certificate
    window_hits: int = 0
    #: positive hits served by a shift-invariance certificate
    shift_hits: int = 0
    #: boundary-crossing searches served from the crossing memo
    crossing_hits: int = 0
    #: boundary-crossing searches that ran the real wait loop
    crossing_misses: int = 0
    #: intra-strip searches answered free-flow straight from the store's
    #: band interval index (no cache involved; works cache-off too)
    band_skips: int = 0
    #: recovery replans served (``replan_from`` calls, successful or not)
    replans: int = 0
    #: segments removed from stores by route decommits
    decommitted_segments: int = 0
    #: recovery planning operations attempted: every ``replan_from``
    #: call plus every externally planned suffix committed via
    #: ``commit_recovered_route``.  Together with
    #: ``decommitted_segments`` this is the recovery-efficiency metric
    #: the serial-vs-joint comparison is judged on.
    replan_attempts: int = 0
    #: conflict clusters recovered jointly (``recovery="joint"`` runs)
    recovery_clusters: int = 0
    #: robots that went through joint cluster recovery
    cluster_robots: int = 0
    #: clusters escalated to CBS after prioritised replanning failed
    cbs_escalations: int = 0
    #: clusters that fell back to the serial hold-and-replan ladder
    serial_fallbacks: int = 0

    @property
    def total_time(self) -> float:
        return self.inter_time + self.intra_time + self.conversion_time

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of intra-strip calls served from the plan cache."""
        served = self.cache_hits + self.cache_negative_hits
        total = served + self.cache_misses
        return served / total if total else 0.0  # srplint: allow-float reporting ratio, never fed to routes

    def reset(self) -> None:
        # Re-assigning a fresh instance's state (calling ``self.__init__``
        # directly is unsound under strict typing and breaks on dataclass
        # signature changes).
        self.__dict__.update(SRPStats().__dict__)


@dataclass
class CommitRecord:
    """Everything one query committed, for later decommit/recovery.

    ``segments`` lists one entry per *store insertion* (a multiset view:
    value-equal duplicates are legal), so a decommit can undo exactly
    the insertions the commit performed.  ``route`` is the query's
    current full grid route, updated in place by recoveries.
    """

    query: Query
    route: Route
    segments: List[Tuple[int, Segment]] = field(default_factory=list)
    crossings: List[CrossingKey] = field(default_factory=list)


class SRPPlanner(Planner):
    """Strip-based collision-aware route planner (the paper's contribution).

    Args:
        warehouse: the warehouse to plan in.
        use_slope_index: True selects the Algorithm 3 slope-based index
            (Section V-D); False selects the naive ordered-set store of
            Section V-B.  This switch drives the Fig. 22(b) ablation.
        use_heuristic: add an admissible Manhattan heuristic to the
            inter-strip search (an engineering extension over the
            paper's plain Dijkstra; effectiveness is unaffected).
        intra_exact: replace the greedy Algorithm 2 search with the
            exact time-expanded intra-strip search (slower, slightly
            better routes; the Fig. 13 restriction ablation).
        intra_backward: with intra_exact, also allow backward moves
            inside strips, lifting the Fig. 13 restriction entirely.
        store: segment store backend — "slope" (Algorithm 3, default),
            "naive" (Section V-B) or "bucket" (time-bucketed index, an
            extension beyond the paper).  Overrides use_slope_index.
        store_layout: physical layout of the per-strip stores —
            "columnar" (array-backed parallel int columns with
            vectorised scans; bit-identical to the slope index and the
            default for store="slope") or "object" (one Python object
            per segment; the default for the other backends).
            "columnar" requires store="slope" — it reproduces exactly
            that backend's semantics.
        cache: memoise intra-strip edge-weight calls keyed by store
            content version (see :mod:`repro.core.plan_cache`).  Routes
            are bit-for-bit identical with the cache on or off; the
            flag exists for ablation and the Fig. 22-style breakdown
            (``stats.cache_hits`` / ``cache_misses``).
        cache_size: LRU bound on memoised entries (intra-strip plans,
            free-flow window certificates, shift certificates, crossing
            memos).  Certificates stay valid across store-version bumps,
            so — unlike the original per-second entries — they keep
            paying across an entire query stream; the default is sized
            for that.  Entries are flat int tuples, so a large bound
            costs little beyond its resident ints.
        max_wait: cap on consecutive waiting seconds tried at one cell.
        max_expansions: per-intra-strip-search collision-query budget.
        max_start_delay: how many release-time delays to try when the
            origin cell is occupied at release before giving up.
    """

    name = "SRP"

    def __init__(
        self,
        warehouse: Warehouse,
        use_slope_index: bool = True,
        use_heuristic: bool = True,
        max_wait: int = 64,
        max_expansions: int = 2000,
        max_start_delay: int = 32,
        fallback_expansions: int = 200_000,
        intra_exact: bool = False,
        intra_backward: bool = False,
        store: Optional[str] = None,
        store_layout: Optional[str] = None,
        cache: bool = True,
        cache_size: int = 4096,
        region: Optional[Sequence[bool]] = None,
    ) -> None:
        super().__init__()
        self.warehouse = warehouse
        self.graph: StripGraph = build_strip_graph(warehouse)
        #: per-strip admissibility mask for region-sharded planning; None
        #: (the default) plans over the whole strip graph.  With a mask,
        #: queries must start and end on allowed strips and every search
        #: (strip-level and the A* fallback) stays inside them.
        self.region: Optional[Tuple[bool, ...]] = (
            None if region is None else tuple(bool(x) for x in region)
        )
        if self.region is not None and len(self.region) != self.graph.n_vertices:
            raise ValueError(
                f"region mask covers {len(self.region)} strips, "
                f"graph has {self.graph.n_vertices}"
            )
        if store is None:
            store = "slope" if use_slope_index else "naive"
        factories = {
            "slope": SlopeIndexedStore,
            "naive": NaiveSegmentStore,
            "bucket": TimeBucketStore,
        }
        if store not in factories:
            raise ValueError(f"unknown store {store!r}; expected one of {sorted(factories)}")
        if store_layout is None:
            store_layout = "columnar" if store == "slope" else "object"
        if store_layout not in ("object", "columnar"):
            raise ValueError(
                f"unknown store_layout {store_layout!r}; expected 'object' or 'columnar'"
            )
        if store_layout == "columnar" and store != "slope":
            raise ValueError(
                "store_layout='columnar' implements the slope-index semantics; "
                "combine it with store='slope' (or pick store_layout='object')"
            )
        self.store_kind = store
        self.store_layout = store_layout
        self.use_slope_index = store == "slope"
        factory: Callable[[], SegmentStore] = (
            ColumnarSegmentStore if store_layout == "columnar" else factories[store]
        )
        self._store_factory = factory
        # Lazy map: strips without traffic share one empty store, so the
        # planner's resident state scales with live routes, not with
        # warehouse size (this is the MC story of Figs. 19-21).
        self.stores = StripStoreMap(self.graph.n_vertices, self._store_factory)
        self.config = SearchConfig(
            max_expansions=max_expansions,
            max_wait=max_wait,
            use_heuristic=use_heuristic,
            intra_exact=intra_exact,
            intra_backward=intra_backward,
        )
        self.max_start_delay = max_start_delay
        self.fallback_expansions = fallback_expansions
        #: versioned memo of intra-strip edge weights (None = disabled)
        self.plan_cache: Optional[PlanCache] = PlanCache(cache_size) if cache else None
        #: committed boundary crossings (from_cell, to_cell, arrival_time)
        self.crossings = CrossingLedger(warehouse.height, warehouse.width)
        #: strip-keyed heuristic fields for the A* fallback: one pair of
        #: multi-source BFS fields per destination *strip* serves every
        #: destination cell in it (see pathfinding.distance)
        self.distance_maps = StripDistanceMaps(warehouse, self.graph)
        self.stats = SRPStats()
        #: per-query commit records enabling decommit/recovery; only
        #: queries with a non-negative ``query_id`` are recorded (ids
        #: are the recovery handle, and anonymous queries have none).
        self._commits: Dict[int, CommitRecord] = {}
        #: routes rewritten by recoveries since the last take_revisions()
        self._revisions: Dict[int, Route] = {}
        #: transient standing-presence claims for decommitted cluster
        #: members awaiting their replan (joint recovery only); always
        #: released again within the same cluster recovery.
        self._recovery_holds: Dict[int, Tuple[int, Segment]] = {}
        #: outstanding boundary-strip claims of in-flight two-phase
        #: commits (region-sharded cross-region planning): per query id,
        #: the hold segments and inter-region crossing keys claimed
        #: during *prepare* and not yet bound into the commit record.
        self._boundary_claims: Dict[
            int, Tuple[List[Tuple[int, Segment]], List[CrossingKey]]
        ] = {}
        #: exogenous cell blockages committed via commit_blockage, as
        #: ``(cell, t0, t1)`` — kept so the post-run state audit can
        #: distinguish injected obstacles from phantom reservations.
        self.blockages: List[Tuple[Grid, int, int]] = []
        #: extra release delays tried by the recovery ladder's final
        #: wait-and-retry rung, beyond ``max_start_delay``
        self.recovery_backoff: Tuple[int, ...] = (8, 16, 32, 64)

    # ------------------------------------------------------------------
    # Planner interface
    # ------------------------------------------------------------------
    def plan(self, query: Query) -> Route:
        """Plan one query and commit its occupancy for future queries."""
        self._check_query(query)
        started = _time.perf_counter()
        try:
            route = self._plan_inner(query)
        finally:
            self.timers.total += _time.perf_counter() - started
            self.timers.queries += 1
        return route

    def _plan_inner(self, query: Query) -> Route:
        self.stats.queries += 1
        origin_strip, origin_pos = self.graph.locate(query.origin)
        store = self.stores[origin_strip]
        release = query.release_time
        latest = release + self.max_start_delay
        attempts = 0
        t = release
        while True:
            # Delay departure past seconds when the origin cell itself is
            # claimed by earlier traffic (e.g. a robot crossing it).  The
            # batched occupancy scan jumps straight to the next free
            # second — the same attempt sequence the old per-second probe
            # loop produced, in one store call per attempt.
            free = store.clear_entry_time(origin_pos, t, latest)
            if free is None:
                break
            delay = free - release
            attempt = Query(
                query.origin,
                query.destination,
                free,
                query.kind,
                query.query_id,
            )
            # The strip search is cheap and retried at every free second;
            # the expensive A* fallback is rationed to every fourth
            # attempt (transient congestion near the start often clears
            # within a couple of seconds).
            allow_fallback = attempts % 4 == 0 or delay == self.max_start_delay
            attempts += 1
            route = self._plan_once(attempt, allow_fallback)
            if route is not None:
                if delay:
                    self.stats.start_delays += 1
                return route
            t = free + 1
        self.timers.failures += 1
        raise PlanningFailedError(
            f"no collision-free route from {query.origin} to {query.destination}",
            query_id=query.query_id,
            release_time=query.release_time,
            phase="start-delay",
            expansions=self.stats.intra_expansions,
        )

    def _plan_once(self, query: Query, allow_fallback: bool = True) -> Optional[Route]:
        search_started = _time.perf_counter()
        stats = SearchStats()
        plan = plan_route(
            self.graph,
            self.stores,
            self.crossings,
            query,
            self.config,
            stats,
            self.plan_cache,
            self.region,
        )
        elapsed = _time.perf_counter() - search_started
        self.stats.intra_time += stats.intra_time
        self.stats.cache_time += stats.cache_time
        self.stats.inter_time += max(0.0, elapsed - stats.intra_time)  # srplint: allow-float timer bookkeeping
        self.stats.intra_calls += stats.intra_calls
        self.stats.intra_expansions += stats.intra_expansions
        self.stats.strips_popped += stats.strips_popped
        self.stats.edges_relaxed += stats.edges_relaxed
        self.stats.cache_hits += stats.cache_hits
        self.stats.cache_negative_hits += stats.cache_negative_hits
        self.stats.cache_misses += stats.cache_misses
        self.stats.window_hits += stats.window_hits
        self.stats.shift_hits += stats.shift_hits
        self.stats.crossing_hits += stats.crossing_hits
        self.stats.crossing_misses += stats.crossing_misses
        self.stats.band_skips += stats.band_skips

        if plan is not None:
            conv_started = _time.perf_counter()
            route = plan_to_route(self.graph, plan)
            route.query_id = query.query_id
            self._commit_plan(query, plan, route)
            self.stats.conversion_time += _time.perf_counter() - conv_started
            return route
        if not allow_fallback:
            return None
        return self._plan_fallback(query)

    def _plan_fallback(self, query: Query) -> Optional[Route]:
        """Section VI remarks: rare grid-level A* against the stores."""
        started = _time.perf_counter()
        route = fallback_plan(
            self.graph,
            self.stores,
            self.crossings,
            self.distance_maps,
            query,
            max_expansions=self.fallback_expansions,
            allowed=self.region,
        )
        if route is not None:
            self.stats.fallbacks += 1
            route.query_id = query.query_id
            segments, crossings = route_to_strip_artifacts(self.graph, route)
            for strip_idx, segment in segments:
                self.stores.materialize(strip_idx).insert(segment, query.query_id)
            self.crossings.update(crossings)
            presence = self._commit_origin_presence(route)
            if query.query_id >= 0:
                self._commits[query.query_id] = CommitRecord(
                    query, route, segments + [presence], list(crossings)
                )
        self.stats.inter_time += _time.perf_counter() - started
        return route

    def plan_strip_only(
        self, query: Query, max_start_delay: Optional[int] = None
    ) -> Optional[Route]:
        """Strip-level planning only; never runs the grid-level A* fallback.

        The cheap rung of the service degradation ladder: the strip
        search is where the plan cache and the free-flow certificates
        live, so under steady traffic most calls are answered without a
        real search.  Scans the release-delay window like :meth:`plan`
        (bounded by ``max_start_delay``, default the planner's own) but
        returns ``None`` instead of raising when no strip-level route
        exists within the window.  Successful routes are committed
        exactly like :meth:`plan` results.
        """
        self._check_query(query)
        started = _time.perf_counter()
        try:
            self.stats.queries += 1
            window = self.max_start_delay if max_start_delay is None else max_start_delay
            origin_strip, origin_pos = self.graph.locate(query.origin)
            store = self.stores[origin_strip]
            release = query.release_time
            t = release
            while True:
                free = store.clear_entry_time(origin_pos, t, release + window)
                if free is None:
                    return None
                attempt = Query(
                    query.origin,
                    query.destination,
                    free,
                    query.kind,
                    query.query_id,
                )
                route = self._plan_once(attempt, allow_fallback=False)
                if route is not None:
                    if free > release:
                        self.stats.start_delays += 1
                    return route
                t = free + 1
        finally:
            self.timers.total += _time.perf_counter() - started
            self.timers.queries += 1

    def plan_fallback_only(
        self, query: Query, max_start_delay: Optional[int] = None
    ) -> Optional[Route]:
        """One expansion-bounded grid-level A* shot, skipping strip search.

        The last answering rung of the service degradation ladder: when
        the deadline budget is too small for the full SRP pipeline, a
        single space-time A* against the stores still produces a
        collision-free (if not strip-optimal) route.  The shot is taken
        at the first second within ``max_start_delay`` (default the
        planner's own) at which the origin cell is free; returns
        ``None`` when no such second exists or A* exhausts its budget.
        Successful routes are committed exactly like :meth:`plan`
        results.
        """
        self._check_query(query)
        self.stats.queries += 1
        window = self.max_start_delay if max_start_delay is None else max_start_delay
        origin_strip, origin_pos = self.graph.locate(query.origin)
        store = self.stores[origin_strip]
        started = _time.perf_counter()
        try:
            release = query.release_time
            t = store.clear_entry_time(origin_pos, release, release + window)
            if t is None:
                return None
            attempt = Query(
                query.origin, query.destination, t, query.kind, query.query_id
            )
            route = self._plan_fallback(attempt)
            if route is not None and t > release:
                self.stats.start_delays += 1
            return route
        finally:
            self.timers.total += _time.perf_counter() - started
            self.timers.queries += 1

    def reset(self) -> None:
        self.stores.clear()
        self.crossings.clear()
        self.distance_maps.clear()
        # Not strictly required for correctness (store versions are
        # never reused), but drops the memory.
        if self.plan_cache is not None:
            self.plan_cache.clear()
        self._commits.clear()
        self._revisions.clear()
        self._boundary_claims.clear()
        self.blockages.clear()
        self.stats.reset()
        self.timers.reset()

    def prune(self, before: int) -> None:
        """Drop bookkeeping of routes that finished before ``before``."""
        self.stores.prune(before)
        self.crossings.prune(before)
        for query_id in [
            q for q, rec in self._commits.items()
            if rec.route.finish_time < before
        ]:
            del self._commits[query_id]
        if self.blockages:
            self.blockages = [b for b in self.blockages if b[2] >= before]

    def take_revisions(self) -> Dict[int, Route]:
        """Routes rewritten by recovery replans since the last call."""
        revisions, self._revisions = self._revisions, {}
        return revisions

    def planning_state(self) -> object:
        """MC counts the traffic-scaling state: stores + crossing events."""
        return (self.stores, self.crossings)

    # ------------------------------------------------------------------
    # Recovery / execution-disturbance API
    # ------------------------------------------------------------------
    def committed_route(self, query_id: int) -> Optional[Route]:
        """The current full route committed for ``query_id`` (or None)."""
        record = self._commits.get(query_id)
        return None if record is None else record.route

    def cell_occupied(self, cell: Grid, t: int) -> bool:
        """True when committed traffic claims ``cell`` at time ``t``.

        Used by fault injection to decide whether a transient blockage
        can land on a cell: debris cannot materialise under a robot, and
        a blockage overlapping a robot's standing presence could never
        be recovered from (the robot's hold would conflict forever).
        """
        strip_idx, pos = self.graph.locate(cell)
        return self.stores[strip_idx].occupied(pos, t)

    def commit_blockage(self, cell: Grid, t0: int, t1: int) -> None:
        """Reserve ``cell`` over ``[t0, t1]`` as an exogenous obstacle.

        Used by fault injection for transient cell blockages (debris, a
        dead robot, a human in the aisle): future queries plan around it
        exactly like committed traffic.  Blockages are recorded on
        :attr:`blockages` so the post-run state audit can tell them
        apart from route traffic; they expire via :meth:`prune` like any
        other finished segment.
        """
        if not self.warehouse.in_bounds(cell):
            raise InvalidQueryError(f"blockage cell {cell} is out of bounds")
        if t1 < t0:
            raise InvalidQueryError(f"blockage window [{t0}, {t1}] runs backwards")
        strip_idx, pos = self.graph.locate(cell)
        self.stores.materialize(strip_idx).insert(Segment(t0, pos, t1, pos))
        self.blockages.append((cell, t0, t1))

    def recovery_checker(self) -> SegmentStoreChecker:
        """A grid-level conflict checker over the live committed state.

        Exposes the planner's segment stores and crossing ledger through
        the :class:`~repro.pathfinding.space_time_astar.ConflictChecker`
        protocol, so joint recovery can run CBS over a conflict cluster
        against everything *outside* the cluster exactly as committed
        (the cluster's own suffixes are decommitted first).
        """
        return SegmentStoreChecker(self.graph, self.stores, self.crossings)

    def decommit_for_recovery(self, query_id: int, cell: Grid, now: int) -> int:
        """Strip a route back to its executed prefix ahead of joint recovery.

        Joint cluster recovery (:mod:`repro.simulation.recovery`)
        decommits *every* member's unexecuted suffix before replanning
        any of them, so no member plans around a doomed suffix of
        another.  The robot must stand at ``cell`` (the route's position
        at ``now``).  The commit record's route becomes the executed
        prefix and is recorded as a revision; a follow-up
        :meth:`replan_from` with ``decommitted=True`` or a
        :meth:`commit_recovered_route` completes the recovery.  Calling
        it again at the same instant removes nothing (idempotent).

        Returns the number of store removals performed (also accumulated
        on ``stats.decommitted_segments``).
        """
        record = self._commits.get(query_id)
        if record is None:
            raise InvalidQueryError(
                f"query {query_id} has no committed route to recover"
            )
        route = record.route
        expected = route.position_at(now)
        if cell != expected:
            raise InvalidQueryError(
                f"query {query_id}: robot reported at {cell} but its route "
                f"puts it at {expected} at t={now}"
            )
        removed = self._decommit_suffix(record, now)
        record.route = self._executed_prefix(route, now, cell)
        self._revisions[query_id] = record.route
        return removed

    def commit_recovery_hold(
        self, query_id: int, cell: Grid, now: int, until: int
    ) -> None:
        """Commit the standing presence of a decommitted cluster member.

        After :meth:`decommit_for_recovery` strips a member back to its
        executed prefix, the robot still physically stands at ``cell``
        until at least ``until`` — but that presence no longer exists in
        the segment stores, so cluster members replanned *before* it
        would happily route straight through its stop cell (and the
        joint cascade would chase the resulting conflict forever).  This
        commits the forced hold ``[anchor, until]`` as an ordinary
        claim; the member's own replan removes it first via
        :meth:`release_recovery_hold`.  Idempotent while held.
        """
        if query_id in self._recovery_holds:
            return
        record = self._commits.get(query_id)
        if record is None:
            raise InvalidQueryError(
                f"query {query_id} has no committed route to recover"
            )
        expected = record.route.position_at(now)
        if cell != expected:
            raise InvalidQueryError(
                f"query {query_id}: robot reported at {cell} but its route "
                f"puts it at {expected} at t={now}"
            )
        anchor = max(now, record.route.start_time)
        strip_idx, pos = self.graph.locate(cell)
        hold = Segment(anchor, pos, max(until, anchor), pos)
        self.stores.materialize(strip_idx).insert(hold, query_id)
        self._recovery_holds[query_id] = (strip_idx, hold)

    def release_recovery_hold(self, query_id: int) -> None:
        """Remove the hold committed by :meth:`commit_recovery_hold`.

        No-op when no hold is outstanding for ``query_id``.
        """
        held = self._recovery_holds.pop(query_id, None)
        if held is not None:
            self.stores.remove(held[0], held[1])

    # ------------------------------------------------------------------
    # Two-phase boundary commit (region-sharded cross-region planning)
    # ------------------------------------------------------------------
    def abort_commit(self, query_id: int) -> int:
        """Remove *everything* ``query_id`` committed — the exact inverse.

        The rollback half of the sharded two-phase commit: every store
        insertion and crossing key recorded for the query is removed (an
        exact inverse — ``remove()`` undoes one insertion, and the
        record is a multiset view of them), leaving segment stores and
        the crossing ledger bit-identical to their pre-commit state up
        to content versions, which bump monotonically by design.  Any
        outstanding boundary claims are released too.  Returns the
        number of store removals.
        """
        removed = self.release_boundary_claims(query_id)
        record = self._commits.pop(query_id, None)
        if record is None:
            if removed:
                return removed
            raise InvalidQueryError(
                f"query {query_id} has no committed route to abort"
            )
        for strip_idx, seg in record.segments:
            self.stores.remove(strip_idx, seg)
            removed += 1
        for key in record.crossings:
            self.crossings.remove_key(key)
        self.stats.decommitted_segments += removed
        return removed

    def claim_boundary_hold(
        self, query_id: int, cell: Grid, t0: int, t1: int
    ) -> bool:
        """Claim a standing presence at a boundary cell over ``[t0, t1]``.

        The *prepare* half-step of a cross-region hand-off: the robot
        arrives at the boundary cell at ``t0`` but its onward leg only
        departs at ``t1 + 1``, so the gap must be visibly reserved (the
        sharded analogue of :meth:`commit_recovery_hold`).  The claim
        only succeeds when the whole window is free; on refusal nothing
        is inserted and the coordinator aborts the transaction.  Claims
        are transient until :meth:`bind_boundary_claims` folds them into
        the query's commit record or :meth:`release_boundary_claims`
        rolls them back.
        """
        if t1 < t0:
            return True  # empty window: the leg departs immediately
        strip_idx, pos = self.graph.locate(cell)
        store = self.stores[strip_idx]
        if len(store) != 0 and store.first_occupied(pos, t0, t1) is not None:
            return False
        hold = Segment(t0, pos, t1, pos)
        self.stores.materialize(strip_idx).insert(hold, query_id)
        self._boundary_claims.setdefault(query_id, ([], []))[0].append(
            (strip_idx, hold)
        )
        return True

    def claim_boundary_crossing(self, query_id: int, key: CrossingKey) -> bool:
        """Claim an inter-region boundary crossing event.

        Registers ``(from_cell, to_cell, t)`` in this shard's ledger so
        later local plans cannot commit the opposing swap.  Refused (and
        nothing registered) when the exact reverse crossing is already
        committed — the coordinator then aborts and retries elsewhere.
        Both shards adjacent to a boundary claim the same key, keeping
        each ledger self-contained for the per-shard audit.
        """
        if (key[1], key[0], key[2]) in self.crossings:
            return False
        self.crossings.add_key(key)
        self._boundary_claims.setdefault(query_id, ([], []))[1].append(key)
        return True

    def bind_boundary_claims(self, query_id: int) -> None:
        """The *commit* phase: make outstanding claims permanent.

        Folds the query's boundary holds and crossing keys into its
        commit record, so later :meth:`prune` / :meth:`abort_commit` /
        recovery decommits treat them exactly like route artifacts.
        No-op when the query has no outstanding claims.
        """
        claims = self._boundary_claims.pop(query_id, None)
        if claims is None:
            return
        record = self._commits.get(query_id)
        if record is None:
            raise InvalidQueryError(
                f"query {query_id} has boundary claims but no commit record"
            )
        record.segments.extend(claims[0])
        record.crossings.extend(claims[1])

    def release_boundary_claims(self, query_id: int) -> int:
        """The *abort* phase for claims: exact rollback of prepare.

        Removes every outstanding boundary hold and crossing key claimed
        for ``query_id``.  Returns the number of store removals; no-op
        (returning 0) when nothing is outstanding.
        """
        claims = self._boundary_claims.pop(query_id, None)
        if claims is None:
            return 0
        removed = 0
        for strip_idx, seg in claims[0]:
            self.stores.remove(strip_idx, seg)
            removed += 1
        for key in claims[1]:
            self.crossings.remove_key(key)
        self.stats.decommitted_segments += removed
        return removed

    def commit_recovered_route(
        self, query_id: int, cell: Grid, now: int, suffix: Route
    ) -> Route:
        """Commit an externally planned recovery suffix for ``query_id``.

        The counterpart of :meth:`decommit_for_recovery` for recoveries
        whose new route was *not* produced by this planner's ladder: a
        CBS solution over a conflict cluster, or a slowdown-stretched
        copy of the robot's own suffix.  ``suffix`` must start at
        ``cell`` (where the robot stands at ``now``), depart no earlier
        than the committed anchor (claims never extend backward past the
        committed start time), and end at the query's destination.  The
        suffix's segments and crossings are committed verbatim; a
        hold-in-place segment covers any gap between the anchor and the
        suffix's departure so the standing robot stays visible.

        Returns the revised full route (executed prefix + suffix), also
        exposed through :meth:`take_revisions`.
        """
        record = self._commits.get(query_id)
        if record is None:
            raise InvalidQueryError(
                f"query {query_id} has no committed route to recover"
            )
        expected = record.route.position_at(now)
        if cell != expected:
            raise InvalidQueryError(
                f"query {query_id}: robot reported at {cell} but its route "
                f"puts it at {expected} at t={now}"
            )
        if suffix.origin != cell:
            raise InvalidQueryError(
                f"query {query_id}: recovered suffix starts at {suffix.origin}, "
                f"but the robot stands at {cell}"
            )
        if suffix.destination != record.query.destination:
            raise InvalidQueryError(
                f"query {query_id}: recovered suffix ends at "
                f"{suffix.destination}, not the committed destination "
                f"{record.query.destination}"
            )
        anchor = max(now, record.route.start_time)
        undeparted = now < record.route.start_time
        if suffix.start_time < anchor:
            raise InvalidQueryError(
                f"query {query_id}: recovered suffix departs at "
                f"{suffix.start_time}, before the committed anchor {anchor}"
            )
        self.stats.replan_attempts += 1
        started = _time.perf_counter()
        try:
            prefix = self._executed_prefix(record.route, now, cell)
            strip_idx, pos = self.graph.locate(cell)
            conv_started = _time.perf_counter()
            segments, crossings = route_to_strip_artifacts(self.graph, suffix)
            self.stats.conversion_time += _time.perf_counter() - conv_started
            for seg_strip, segment in segments:
                self.stores.materialize(seg_strip).insert(segment, query_id)
            self.crossings.update(crossings)
            record.segments.extend(segments)
            record.crossings.extend(crossings)
            if suffix.start_time > anchor and not undeparted:
                hold = Segment(anchor, pos, suffix.start_time, pos)
                self.stores.materialize(strip_idx).insert(hold, query_id)
                record.segments.append((strip_idx, hold))
            # A parked robot (disturbed before departure) has no executed
            # history and leaves its pre-departure parking unreserved, so
            # its revised route is the suffix alone.
            revised = suffix if undeparted else concatenate_routes(prefix, suffix)
            record.route = revised
            self._revisions[query_id] = revised
            return revised
        finally:
            self.timers.total += _time.perf_counter() - started
            self.timers.queries += 1

    def replan_from(
        self,
        query_id: int,
        cell: Grid,
        now: int,
        hold_until: Optional[int] = None,
        *,
        decommitted: bool = False,
    ) -> Route:
        """Recover the route of ``query_id`` after an execution disturbance.

        The robot executing the route stopped at ``cell`` at time
        ``now`` (a stall, or a stop forced by another robot's stall) and
        cannot move again before ``hold_until`` (default ``now + 1``).
        Recovery proceeds in three steps:

        1. **decommit** — the not-yet-executed suffix (everything after
           ``now``) of the committed route is removed from the segment
           stores and the crossing ledger; segments spanning ``now`` are
           truncated to their executed prefix.  Every removal bumps the
           store content version, so plan-cache entries about the old
           suffix die for free.
        2. **hold** — the robot's standing presence at ``cell`` from
           ``now`` until the recovered route departs is committed, so
           queries planned meanwhile route around the stopped robot.
        3. **replan** — a fresh route from ``cell`` to the original
           destination, released no earlier than ``hold_until``, found
           by a graceful-degradation ladder: the cached/strip-level
           search across the release-delay window, then one
           expansion-bounded grid A* shot, then bounded wait-and-retry
           at coarser delays (:attr:`recovery_backoff`).

        Returns the *revised full route* (executed prefix + hold + new
        plan), also exposed through :meth:`take_revisions`.  On failure
        raises :class:`PlanningFailedError` carrying the query id, the
        release time, the deepest ladder rung reached and the expansions
        spent; the robot's residual hold stays committed so the planner
        state remains consistent with a robot abandoned in place.

        With ``decommitted=True`` the suffix was already stripped by
        :meth:`decommit_for_recovery` (joint cluster recovery): the
        decommit step is skipped, the committed route is expected to be
        the executed prefix (so the finished-route check is waived) and
        the replan targets the original query destination.
        """
        record = self._commits.get(query_id)
        if record is None:
            raise InvalidQueryError(
                f"query {query_id} has no committed route to recover"
            )
        route = record.route
        if not decommitted and now >= route.finish_time:
            raise InvalidQueryError(
                f"query {query_id}: route already finished at t={route.finish_time}"
            )
        expected = route.position_at(now)
        if cell != expected:
            raise InvalidQueryError(
                f"query {query_id}: robot reported at {cell} but its route "
                f"puts it at {expected} at t={now}"
            )
        # A route disturbed before its departure belongs to a *parked*
        # robot (it never moved, DESIGN.md §4 leaves parked presence
        # unreserved): its recovery simply delays the departure, with no
        # standing hold at all.  Fabricating one would claim a shared
        # station cell two parked robots can legally pipeline through —
        # and two forced holds on one cell can never be replanned apart,
        # so the recovery cascade would chase that conflict forever.
        undeparted = now < route.start_time
        anchor = max(now, route.start_time)
        release = max(anchor, now + 1, now + 1 if hold_until is None else hold_until)
        destination = record.query.destination if decommitted else route.destination
        self.stats.replans += 1
        self.stats.replan_attempts += 1
        expansions_before = self.stats.intra_expansions
        started = _time.perf_counter()
        try:
            if not decommitted:
                self._decommit_suffix(record, now)
            prefix = self._executed_prefix(route, now, cell)
            strip_idx, pos = self.graph.locate(cell)
            replan_query = Query(
                cell, destination, release, record.query.kind, query_id
            )
            new_route, phase = self._recovery_ladder(replan_query, strip_idx, pos)
            if new_route is None:
                if undeparted:
                    # Parked robot: it just stays parked (non-blocking).
                    record.route = Route(release, [cell], query_id=query_id)
                else:
                    # Leave a residual hold over the forced-stop window so
                    # the stranded robot's presence survives in the stores.
                    hold = Segment(anchor, pos, release, pos)
                    self.stores.materialize(strip_idx).insert(hold, query_id)
                    record.segments.append((strip_idx, hold))
                    record.route = concatenate_routes(
                        prefix, Route(release, [cell], query_id=query_id)
                    )
                self._revisions[query_id] = record.route
                self.timers.failures += 1
                raise PlanningFailedError(
                    f"recovery of query {query_id} found no route from "
                    f"{cell} to {destination}",
                    query_id=query_id,
                    release_time=release,
                    phase=phase,
                    expansions=self.stats.intra_expansions - expansions_before,
                )
            # The ladder's successful attempt wrote a fresh commit record
            # holding only the new plan's artifacts; fold it back into the
            # original record together with the hold-in-place presence
            # (departed robots only — a parked robot's route and claims
            # both begin at the delayed departure).
            new_record = self._commits[query_id]
            record.segments.extend(new_record.segments)
            if undeparted:
                revised = new_route
            else:
                hold = Segment(anchor, pos, new_route.start_time, pos)
                self.stores.materialize(strip_idx).insert(hold, query_id)
                record.segments.append((strip_idx, hold))
                revised = concatenate_routes(prefix, new_route)
            record.crossings.extend(new_record.crossings)
            record.route = revised
            self._commits[query_id] = record
            self._revisions[query_id] = revised
            return revised
        finally:
            self.timers.total += _time.perf_counter() - started
            self.timers.queries += 1

    def _recovery_ladder(
        self, query: Query, origin_strip: int, origin_pos: int
    ) -> Tuple[Optional[Route], str]:
        """The graceful-degradation ladder behind :meth:`replan_from`.

        Returns ``(route_or_None, deepest_phase_reached)``; phases are
        ``"strip"`` -> ``"fallback"`` -> ``"wait-retry"``.
        """
        store = self.stores[origin_strip]
        release = query.release_time
        # Rung 1: cached/strip-level search across the release-delay window.
        phase = "strip"
        free_seconds: List[int] = []
        for delay in range(self.max_start_delay + 1):
            t = release + delay
            if store.occupied(origin_pos, t):
                continue
            free_seconds.append(t)
            attempt = Query(query.origin, query.destination, t, query.kind, query.query_id)
            route = self._plan_once(attempt, allow_fallback=False)
            if route is not None:
                return route, phase
        # Rung 2: one expansion-bounded grid A* shot at the first free second.
        phase = "fallback"
        if free_seconds:
            attempt = Query(
                query.origin, query.destination, free_seconds[0], query.kind, query.query_id
            )
            route = self._plan_fallback(attempt)
            if route is not None:
                return route, phase
        # Rung 3: bounded wait-and-retry — transient congestion around a
        # disturbance often clears within tens of seconds.
        phase = "wait-retry"
        for extra in self.recovery_backoff:
            t = release + self.max_start_delay + extra
            if store.occupied(origin_pos, t):
                continue
            attempt = Query(query.origin, query.destination, t, query.kind, query.query_id)
            route = self._plan_once(attempt, allow_fallback=True)
            if route is not None:
                return route, phase
        return None, phase

    def _decommit_suffix(self, record: CommitRecord, now: int) -> int:
        """Remove the not-yet-executed (``t > now``) part of a route.

        Stored segments entirely in the future are removed; segments
        spanning ``now`` are replaced by their executed prefix.  Returns
        the number of store removals.  Every mutation bumps content
        versions, which keeps the plan cache exact with no extra work.
        """
        surviving: List[Tuple[int, Segment]] = []
        removed = 0
        for strip_idx, seg in record.segments:
            if seg.t1 <= now:
                surviving.append((strip_idx, seg))
                continue
            self.stores.remove(strip_idx, seg)
            removed += 1
            if seg.t0 <= now:
                kept = Segment(seg.t0, seg.p0, now, seg.position_at(now))
                self.stores.materialize(strip_idx).insert(kept, record.query.query_id)
                surviving.append((strip_idx, kept))
        record.segments = surviving
        kept_keys: List[CrossingKey] = []
        for key in record.crossings:
            if key[2] > now:
                self.crossings.remove_key(key)
            else:
                kept_keys.append(key)
        record.crossings = kept_keys
        self.stats.decommitted_segments += removed
        return removed

    @staticmethod
    def _executed_prefix(route: Route, now: int, cell: Grid) -> Route:
        """The part of ``route`` the robot executed up to time ``now``."""
        if now <= route.start_time:
            # Stopped before departure: the robot stands at its origin,
            # and the revised route keeps the committed start time (its
            # claims never extend backward past the original start).
            return Route(route.start_time, [route.grids[0]], query_id=route.query_id)
        cut = min(now, route.finish_time) - route.start_time
        prefix = Route(
            route.start_time, list(route.grids[: cut + 1]), query_id=route.query_id
        )
        assert prefix.destination == cell
        return prefix

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_query(self, query: Query) -> None:
        for label, cell in (("origin", query.origin), ("destination", query.destination)):
            if not self.warehouse.in_bounds(cell):
                raise InvalidQueryError(f"{label} {cell} is out of bounds")
            if self.region is not None and not self.region[
                self.graph.strip_index_of(cell)
            ]:
                raise InvalidQueryError(
                    f"{label} {cell} is outside this planner's region"
                )

    def _commit_plan(self, query: Query, plan: RoutePlan, route: Route) -> None:
        committed: List[Tuple[int, Segment]] = []
        crossing_keys: List[CrossingKey] = []
        for leg in plan.legs:
            store = self.stores.materialize(leg.strip)
            if leg.entry is not None:
                store.insert(leg.entry.point, query.query_id)
                committed.append((leg.strip, leg.entry.point))
                self.crossings.add_key(leg.entry.key)
                crossing_keys.append(leg.entry.key)
            for segment in leg.segments:
                store.insert(segment, query.query_id)
                committed.append((leg.strip, segment))
        committed.append(self._commit_origin_presence(route))
        if query.query_id >= 0:
            self._commits[query.query_id] = CommitRecord(
                query, route, committed, crossing_keys
            )

    def _commit_origin_presence(self, route: Route) -> Tuple[int, Segment]:
        """Reserve the origin cell for the route's initial standing span.

        A route that leaves its origin cell immediately produces no leg
        segment there (the paper's footnote-1 "single point" case), and
        a rack-origin route waits under its rack outside any leg; both
        occupancies must still be visible to later queries.  Returns the
        ``(strip, segment)`` pair for the caller's commit record.
        """
        origin = route.grids[0]
        depart = 0
        while depart + 1 < len(route.grids) and route.grids[depart + 1] == origin:
            depart += 1
        strip_idx, pos = self.graph.locate(origin)
        presence = Segment(route.start_time, pos, route.start_time + depart, pos)
        self.stores.materialize(strip_idx).insert(presence, route.query_id)
        return strip_idx, presence

    @property
    def n_segments(self) -> int:
        """Total committed segments across all strips (memory proxy)."""
        return self.stores.total_segments()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cached = "on" if self.plan_cache is not None else "off"
        return (
            f"SRPPlanner(warehouse={self.warehouse.name!r}, "
            f"store={self.store_kind!r}, layout={self.store_layout!r}, "
            f"strips={self.graph.n_vertices}, cache={cached})"
        )
