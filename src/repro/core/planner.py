"""The end-to-end Strip-based Route Planner (the paper's SRP).

:class:`SRPPlanner` wires the pieces together exactly as Fig. 2
describes: strip graph construction once at start-up, then per query an
inter-strip Dijkstra whose edge weights come from intra-strip
segment-based planning, a conversion of the winning segment plan to a
grid route, and commitment of the plan's segments into the per-strip
stores so subsequent queries are collision-aware of it.

Instrumentation matches Fig. 22(a)'s time breakdown: ``inter_time``,
``intra_time`` and ``conversion_time`` are accumulated separately.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Optional

from repro.core.conversion import plan_to_route, route_to_strip_artifacts
from repro.core.crossings import CrossingLedger
from repro.core.fallback import fallback_plan
from repro.core.inter_strip import RoutePlan, SearchConfig, SearchStats, plan_route
from repro.core.naive_store import NaiveSegmentStore
from repro.core.plan_cache import PlanCache
from repro.core.segments import Segment
from repro.core.slope_index import SlopeIndexedStore
from repro.core.store_base import SegmentStore, StripStoreMap
from repro.core.time_bucket_store import TimeBucketStore
from repro.core.strips import StripGraph, build_strip_graph
from repro.exceptions import InvalidQueryError, PlanningFailedError
from repro.pathfinding.distance import DistanceMaps
from repro.planner_base import Planner
from repro.types import Query, Route
from repro.warehouse.matrix import Warehouse


@dataclass
class SRPStats:
    """Per-planner counters; times in seconds (Fig. 22 breakdown)."""

    inter_time: float = 0.0
    intra_time: float = 0.0
    conversion_time: float = 0.0
    queries: int = 0
    fallbacks: int = 0
    start_delays: int = 0
    intra_calls: int = 0
    intra_expansions: int = 0
    strips_popped: int = 0
    edges_relaxed: int = 0
    #: intra-strip calls answered from the plan cache (positive results)
    cache_hits: int = 0
    #: intra-strip calls answered from the negative cache (memoised failures)
    cache_negative_hits: int = 0
    #: intra-strip calls that had to run the real search
    cache_misses: int = 0

    @property
    def total_time(self) -> float:
        return self.inter_time + self.intra_time + self.conversion_time

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of intra-strip calls served from the plan cache."""
        served = self.cache_hits + self.cache_negative_hits
        total = served + self.cache_misses
        return served / total if total else 0.0

    def reset(self) -> None:
        self.__init__()


class SRPPlanner(Planner):
    """Strip-based collision-aware route planner (the paper's contribution).

    Args:
        warehouse: the warehouse to plan in.
        use_slope_index: True selects the Algorithm 3 slope-based index
            (Section V-D); False selects the naive ordered-set store of
            Section V-B.  This switch drives the Fig. 22(b) ablation.
        use_heuristic: add an admissible Manhattan heuristic to the
            inter-strip search (an engineering extension over the
            paper's plain Dijkstra; effectiveness is unaffected).
        intra_exact: replace the greedy Algorithm 2 search with the
            exact time-expanded intra-strip search (slower, slightly
            better routes; the Fig. 13 restriction ablation).
        intra_backward: with intra_exact, also allow backward moves
            inside strips, lifting the Fig. 13 restriction entirely.
        store: segment store backend — "slope" (Algorithm 3, default),
            "naive" (Section V-B) or "bucket" (time-bucketed index, an
            extension beyond the paper).  Overrides use_slope_index.
        cache: memoise intra-strip edge-weight calls keyed by store
            content version (see :mod:`repro.core.plan_cache`).  Routes
            are bit-for-bit identical with the cache on or off; the
            flag exists for ablation and the Fig. 22-style breakdown
            (``stats.cache_hits`` / ``cache_misses``).
        cache_size: LRU bound on memoised intra-strip plans.  Reuse is
            temporally local (completion-tail retries within a search,
            the release-delay retry loop), so a small cache captures
            almost all hits; large bounds measurably tax allocator and
            GC locality for no extra hits on steady query streams.
        max_wait: cap on consecutive waiting seconds tried at one cell.
        max_expansions: per-intra-strip-search collision-query budget.
        max_start_delay: how many release-time delays to try when the
            origin cell is occupied at release before giving up.
    """

    name = "SRP"

    def __init__(
        self,
        warehouse: Warehouse,
        use_slope_index: bool = True,
        use_heuristic: bool = True,
        max_wait: int = 64,
        max_expansions: int = 2000,
        max_start_delay: int = 32,
        fallback_expansions: int = 200_000,
        intra_exact: bool = False,
        intra_backward: bool = False,
        store: Optional[str] = None,
        cache: bool = True,
        cache_size: int = 256,
    ) -> None:
        super().__init__()
        self.warehouse = warehouse
        self.graph: StripGraph = build_strip_graph(warehouse)
        if store is None:
            store = "slope" if use_slope_index else "naive"
        factories = {
            "slope": SlopeIndexedStore,
            "naive": NaiveSegmentStore,
            "bucket": TimeBucketStore,
        }
        if store not in factories:
            raise ValueError(f"unknown store {store!r}; expected one of {sorted(factories)}")
        self.store_kind = store
        self.use_slope_index = store == "slope"
        self._store_factory = factories[store]
        # Lazy map: strips without traffic share one empty store, so the
        # planner's resident state scales with live routes, not with
        # warehouse size (this is the MC story of Figs. 19-21).
        self.stores = StripStoreMap(self.graph.n_vertices, self._store_factory)
        self.config = SearchConfig(
            max_expansions=max_expansions,
            max_wait=max_wait,
            use_heuristic=use_heuristic,
            intra_exact=intra_exact,
            intra_backward=intra_backward,
        )
        self.max_start_delay = max_start_delay
        self.fallback_expansions = fallback_expansions
        #: versioned memo of intra-strip edge weights (None = disabled)
        self.plan_cache: Optional[PlanCache] = PlanCache(cache_size) if cache else None
        #: committed boundary crossings (from_cell, to_cell, arrival_time)
        self.crossings = CrossingLedger(warehouse.height, warehouse.width)
        self.distance_maps = DistanceMaps(warehouse)
        self.stats = SRPStats()

    # ------------------------------------------------------------------
    # Planner interface
    # ------------------------------------------------------------------
    def plan(self, query: Query) -> Route:
        """Plan one query and commit its occupancy for future queries."""
        self._check_query(query)
        started = _time.perf_counter()
        try:
            route = self._plan_inner(query)
        finally:
            self.timers.total += _time.perf_counter() - started
            self.timers.queries += 1
        return route

    def _plan_inner(self, query: Query) -> Route:
        self.stats.queries += 1
        origin_strip, origin_pos = self.graph.locate(query.origin)
        store = self.stores[origin_strip]
        attempts = 0
        for delay in range(self.max_start_delay + 1):
            # Delay departure past seconds when the origin cell itself is
            # claimed by earlier traffic (e.g. a robot crossing it).
            if store.occupied(origin_pos, query.release_time + delay):
                continue
            attempt = Query(
                query.origin,
                query.destination,
                query.release_time + delay,
                query.kind,
                query.query_id,
            )
            # The strip search is cheap and retried at every free second;
            # the expensive A* fallback is rationed to every fourth
            # attempt (transient congestion near the start often clears
            # within a couple of seconds).
            allow_fallback = attempts % 4 == 0 or delay == self.max_start_delay
            attempts += 1
            route = self._plan_once(attempt, allow_fallback)
            if route is not None:
                if delay:
                    self.stats.start_delays += 1
                return route
        self.timers.failures += 1
        raise PlanningFailedError(
            f"no collision-free route from {query.origin} to "
            f"{query.destination} at t={query.release_time}"
        )

    def _plan_once(self, query: Query, allow_fallback: bool = True) -> Optional[Route]:
        search_started = _time.perf_counter()
        stats = SearchStats()
        plan = plan_route(
            self.graph,
            self.stores,
            self.crossings,
            query,
            self.config,
            stats,
            self.plan_cache,
        )
        elapsed = _time.perf_counter() - search_started
        self.stats.intra_time += stats.intra_time
        self.stats.inter_time += max(0.0, elapsed - stats.intra_time)
        self.stats.intra_calls += stats.intra_calls
        self.stats.intra_expansions += stats.intra_expansions
        self.stats.strips_popped += stats.strips_popped
        self.stats.edges_relaxed += stats.edges_relaxed
        self.stats.cache_hits += stats.cache_hits
        self.stats.cache_negative_hits += stats.cache_negative_hits
        self.stats.cache_misses += stats.cache_misses

        if plan is not None:
            conv_started = _time.perf_counter()
            route = plan_to_route(self.graph, plan)
            self._commit_plan(plan, route)
            self.stats.conversion_time += _time.perf_counter() - conv_started
            return route
        if not allow_fallback:
            return None
        return self._plan_fallback(query)

    def _plan_fallback(self, query: Query) -> Optional[Route]:
        """Section VI remarks: rare grid-level A* against the stores."""
        started = _time.perf_counter()
        route = fallback_plan(
            self.graph,
            self.stores,
            self.crossings,
            self.distance_maps,
            query,
            max_expansions=self.fallback_expansions,
        )
        if route is not None:
            self.stats.fallbacks += 1
            segments, crossings = route_to_strip_artifacts(self.graph, route)
            for strip_idx, segment in segments:
                self.stores.materialize(strip_idx).insert(segment)
            self.crossings.update(crossings)
            self._commit_origin_presence(route)
        self.stats.inter_time += _time.perf_counter() - started
        return route

    def reset(self) -> None:
        self.stores.clear()
        self.crossings.clear()
        self.distance_maps.clear()
        # Not strictly required for correctness (store versions are
        # never reused), but drops the memory.
        if self.plan_cache is not None:
            self.plan_cache.clear()
        self.stats.reset()
        self.timers.reset()

    def prune(self, before: int) -> None:
        """Drop bookkeeping of routes that finished before ``before``."""
        self.stores.prune(before)
        self.crossings.prune(before)

    def planning_state(self) -> object:
        """MC counts the traffic-scaling state: stores + crossing events."""
        return (self.stores, self.crossings)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_query(self, query: Query) -> None:
        for label, cell in (("origin", query.origin), ("destination", query.destination)):
            if not self.warehouse.in_bounds(cell):
                raise InvalidQueryError(f"{label} {cell} is out of bounds")

    def _commit_plan(self, plan: RoutePlan, route: Route) -> None:
        for leg in plan.legs:
            store = self.stores.materialize(leg.strip)
            if leg.entry is not None:
                store.insert(leg.entry.point)
                self.crossings.add_key(leg.entry.key)
            for segment in leg.segments:
                store.insert(segment)
        self._commit_origin_presence(route)

    def _commit_origin_presence(self, route: Route) -> None:
        """Reserve the origin cell for the route's initial standing span.

        A route that leaves its origin cell immediately produces no leg
        segment there (the paper's footnote-1 "single point" case), and
        a rack-origin route waits under its rack outside any leg; both
        occupancies must still be visible to later queries.
        """
        origin = route.grids[0]
        depart = 0
        while depart + 1 < len(route.grids) and route.grids[depart + 1] == origin:
            depart += 1
        strip_idx, pos = self.graph.locate(origin)
        self.stores.materialize(strip_idx).insert(
            Segment(route.start_time, pos, route.start_time + depart, pos)
        )

    @property
    def n_segments(self) -> int:
        """Total committed segments across all strips (memory proxy)."""
        return self.stores.total_segments()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        index = "slope-index" if self.use_slope_index else "naive"
        cached = "on" if self.plan_cache is not None else "off"
        return (
            f"SRPPlanner(warehouse={self.warehouse.name!r}, store={index}, "
            f"strips={self.graph.n_vertices}, cache={cached})"
        )
