"""Grid-level reservation table shared by the baseline planners.

The table records, per committed route, every ``(cell, time)``
occupancy and every directed move, so vertex and swap conflicts can be
checked in O(1).  This per-timestep representation is exactly what the
paper contrasts SRP's few-endpoints segments against in the memory
comparison (Figs. 19-21): a route of length L costs O(L) table entries.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.types import Grid, Route


class ReservationTable:
    """Vertex and edge reservations of all committed routes."""

    def __init__(self) -> None:
        # (cell, t) -> owning route token
        self._vertices: Dict[Tuple[Grid, int], int] = {}
        # (from, to, t) -> owning route token, for moves over [t, t+1]
        self._edges: Dict[Tuple[Grid, Grid, int], int] = {}
        # token -> registered route, so routes can be released (RP re-planning)
        self._routes: Dict[int, Route] = {}
        self._next_token = 0

    # ------------------------------------------------------------------
    # Conflict checking (ConflictChecker protocol)
    # ------------------------------------------------------------------
    def cell_blocked(self, cell: Grid, t: int) -> bool:
        return (cell, t) in self._vertices

    def move_blocked(self, a: Grid, b: Grid, t: int) -> bool:
        if (b, t + 1) in self._vertices:
            return True
        return a != b and (b, a, t) in self._edges

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, route: Route) -> int:
        """Reserve a route; returns a token usable with :meth:`release`."""
        token = self._next_token
        self._next_token += 1
        self._routes[token] = route
        steps = list(route.steps())
        for t, cell in steps:
            self._vertices[(cell, t)] = token
        for (t, a), (_t, b) in zip(steps, steps[1:]):
            if a != b:
                self._edges[(a, b, t)] = token
        return token

    def release(self, token: int) -> Route:
        """Remove a route's reservations; returns the released route."""
        route = self._routes.pop(token)
        steps = list(route.steps())
        for t, cell in steps:
            if self._vertices.get((cell, t)) == token:
                del self._vertices[(cell, t)]
        for (t, a), (_t, b) in zip(steps, steps[1:]):
            if a != b and self._edges.get((a, b, t)) == token:
                del self._edges[(a, b, t)]
        return route

    def route(self, token: int) -> Route:
        return self._routes[token]

    def conflicts_with(self, route: Route) -> bool:
        """True when ``route`` conflicts with any reservation."""
        return bool(self.routes_conflicting(route))

    def routes_conflicting(self, route: Route) -> Set[int]:
        """Tokens of registered routes that conflict with ``route``."""
        tokens: Set[int] = set()
        steps = list(route.steps())
        for t, cell in steps:
            owner = self._vertices.get((cell, t))
            if owner is not None:
                tokens.add(owner)
        for (t, a), (_t, b) in zip(steps, steps[1:]):
            if a != b:
                owner = self._edges.get((b, a, t))
                if owner is not None:
                    tokens.add(owner)
        return tokens

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def prune(self, before: int) -> int:
        """Release routes that finished strictly before ``before``."""
        stale = [tok for tok, r in self._routes.items() if r.finish_time < before]
        for token in stale:
            self.release(token)
        return len(stale)

    def clear(self) -> None:
        self._vertices.clear()
        self._edges.clear()
        self._routes.clear()

    def __len__(self) -> int:
        return len(self._vertices)

    @property
    def n_routes(self) -> int:
        return len(self._routes)
