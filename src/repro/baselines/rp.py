"""RP — Replanning (after Svancara et al., AAAI 2019 [3]).

The replanning strategy first searches the shortest path for the new
query *ignoring* collisions; only when the result collides with
existing routes does it re-plan the colliding routes together.  The
joint re-plan uses conflict-based search for small groups (the "offline
optimal method" of the paper's baseline description) and falls back to
prioritized planning when the group is large or CBS exhausts its node
budget.

Only routes that have not started executing are movable: a robot that
is already driving keeps its committed trajectory (its successors may
already be scheduled), so started routes act as immovable traffic.
When nothing can be moved — or the joint re-plan fails — the new query
is planned with plain cooperative space-time A* around all existing
traffic, which keeps RP complete at the cost of the extra search the
paper's RP baseline is known for.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Optional

from repro.baselines.cbs import cbs_solve
from repro.baselines.reservation import ReservationTable
from repro.exceptions import InvalidQueryError, PlanningFailedError
from repro.pathfinding.distance import DistanceMaps
from repro.pathfinding.space_time_astar import space_time_astar
from repro.planner_base import Planner
from repro.types import Query, Route
from repro.warehouse.matrix import Warehouse


class RPPlanner(Planner):
    """Plan ignoring collisions, re-plan colliding groups jointly."""

    name = "RP"

    def __init__(
        self,
        warehouse: Warehouse,
        cbs_group_limit: int = 4,
        cbs_node_limit: int = 100,
        max_expansions: int = 400_000,
        horizon_slack: int = 256,
        max_start_delay: int = 64,
    ) -> None:
        super().__init__()
        self.warehouse = warehouse
        self.table = ReservationTable()
        self.distance_maps = DistanceMaps(warehouse)
        self.cbs_group_limit = cbs_group_limit
        self.cbs_node_limit = cbs_node_limit
        self.max_expansions = max_expansions
        self.horizon_slack = horizon_slack
        self.max_start_delay = max_start_delay
        #: number of joint re-planning episodes (instrumentation)
        self.replans = 0
        #: of which solved by CBS rather than prioritized planning
        self.cbs_solved = 0
        #: queries answered by the cooperative A* fallback
        self.solo_fallbacks = 0
        # token -> original query, needed to re-plan a route from scratch
        self._query_of: Dict[int, Query] = {}
        # query_id -> revised route, drained by take_revisions()
        self._revisions: Dict[int, Route] = {}

    # ------------------------------------------------------------------
    def plan(self, query: Query) -> Route:
        started = _time.perf_counter()
        try:
            route = self._plan_inner(query)
        finally:
            self.timers.total += _time.perf_counter() - started
            self.timers.queries += 1
        return route

    def _plan_inner(self, query: Query) -> Route:
        if not self.warehouse.in_bounds(query.origin) or not self.warehouse.in_bounds(
            query.destination
        ):
            raise InvalidQueryError(f"query endpoints out of bounds: {query}")
        # Step 1: shortest path ignoring collisions.
        free_route = self._shortest_ignoring_collisions(query)
        if free_route is None:
            self.timers.failures += 1
            raise PlanningFailedError(
                f"RP: destination unreachable for {query}",
                query_id=query.query_id,
                release_time=query.release_time,
                phase="free-route",
            )
        conflicting = self.table.routes_conflicting(free_route)
        if not conflicting:
            token = self.table.register(free_route)
            self._query_of[token] = query
            return free_route
        # Step 2: joint re-plan with the movable colliders.
        self.replans += 1
        route = self._replan_group(query, sorted(conflicting), query.release_time)
        if route is not None:
            return route
        # Step 3: route the new query around all committed traffic.
        self.solo_fallbacks += 1
        route = self._cooperative_astar(query)
        if route is None:
            self.timers.failures += 1
            raise PlanningFailedError(
                f"RP could not resolve conflicts for {query}",
                query_id=query.query_id,
                release_time=query.release_time,
                phase="cooperative-astar",
            )
        token = self.table.register(route)
        self._query_of[token] = query
        return route

    def _shortest_ignoring_collisions(self, query: Query) -> Optional[Route]:
        path = self.distance_maps.greedy_path(query.origin, query.destination)
        if path is None:
            return None
        return Route(query.release_time, path, query.query_id)

    def _replan_group(
        self, query: Query, tokens: List[int], now: int
    ) -> Optional[Route]:
        """Jointly re-plan the new query with the movable colliders.

        Movable means not started: ``start_time >= now``.  Returns the
        new query's route on success; None sends the caller to the
        cooperative A* fallback (originals are restored untouched).
        """
        movable = [t for t in tokens if self.table.route(t).start_time >= now]
        if not movable:
            return None
        group_queries = [query]
        original: List[tuple] = []
        for token in movable:
            route = self.table.release(token)
            member = self._query_of.pop(token)
            original.append((member, route))
            group_queries.append(
                Query(member.origin, member.destination, now, member.kind, member.query_id)
            )

        def restore_originals() -> None:
            for member, route in original:
                token = self.table.register(route)
                self._query_of[token] = member

        routes: Optional[List[Route]] = None
        if len(group_queries) <= self.cbs_group_limit:
            routes = cbs_solve(
                self.warehouse,
                group_queries,
                self.distance_maps,
                base_checker=self.table,
                max_nodes=self.cbs_node_limit,
            )
            if routes is not None:
                self.cbs_solved += 1
        if routes is None:
            routes = self._prioritized(group_queries)
        if routes is None:
            restore_originals()
            return None
        # Register atomically, verifying against the table as we go
        # (defence in depth; the joint search already avoided it).
        registered: List[int] = []
        for route in routes:
            if self.table.conflicts_with(route):
                for token in registered:
                    self.table.release(token)
                restore_originals()
                return None
            registered.append(self.table.register(route))
        for q, token in zip(group_queries, registered):
            self._query_of[token] = q
            if q is not query:
                self._revisions[q.query_id] = self.table.route(token)
        return routes[0]

    def _cooperative_astar(self, query: Query) -> Optional[Route]:
        dist_map = self.distance_maps.get(query.destination)
        for delay in range(self.max_start_delay + 1):
            route = space_time_astar(
                self.warehouse,
                query.origin,
                query.destination,
                query.release_time + delay,
                self.table,
                dist_map,
                max_expansions=self.max_expansions,
                horizon_slack=self.horizon_slack,
            )
            if route is not None:
                route.query_id = query.query_id
                return route
        return None

    def _prioritized(self, queries: List[Query]) -> Optional[List[Route]]:
        """Plan the group one by one against the table plus earlier members."""
        registered: List[int] = []
        routes: List[Route] = []
        for q in queries:
            dist_map = self.distance_maps.get(q.destination)
            route = None
            for delay in range(self.max_start_delay + 1):
                route = space_time_astar(
                    self.warehouse,
                    q.origin,
                    q.destination,
                    q.release_time + delay,
                    self.table,
                    dist_map,
                    max_expansions=self.max_expansions,
                    horizon_slack=self.horizon_slack,
                )
                if route is not None:
                    break
            if route is None:
                for token in registered:
                    self.table.release(token)
                return None
            route.query_id = q.query_id
            registered.append(self.table.register(route))
            routes.append(route)
        # Registration is undone: _replan_group re-registers with queries.
        for token in registered:
            self.table.release(token)
        return routes

    # ------------------------------------------------------------------
    def take_revisions(self) -> Dict[int, Route]:
        revisions = self._revisions
        self._revisions = {}
        return revisions

    def reset(self) -> None:
        self.table.clear()
        self.distance_maps.clear()
        self._query_of.clear()
        self._revisions.clear()
        self.replans = 0
        self.cbs_solved = 0
        self.solo_fallbacks = 0
        self.timers.reset()

    def prune(self, before: int) -> None:
        stale = [
            tok
            for tok in list(self._query_of)
            if self.table.route(tok).finish_time < before
        ]
        for token in stale:
            self.table.release(token)
            del self._query_of[token]

    def planning_state(self) -> object:
        return self.table
