"""TWP — Time Windowed Planning (after Li et al., AAAI 2021 [5]).

Instead of resolving conflicts over the entire route, TWP enforces
collision constraints only within a bounded time window after the
query's release ("confines the planning in a certain time window for
acceleration").  Beyond the window the search degenerates to plain
shortest-path A*, which bounds the 3-D search effort per query.

The relaxation means two committed routes may still conflict *beyond*
their planning windows; like the original algorithm this trades a small
amount of effectiveness (and, strictly, collision-freedom outside the
window) for speed.  The simulator accounts for this by re-issuing a
window-sized re-plan when a route outlives its window (``replan_tail``),
restoring end-to-end collision-freedom at extra planning cost.
"""

from __future__ import annotations

import time as _time

from repro.baselines.reservation import ReservationTable
from repro.exceptions import InvalidQueryError, PlanningFailedError
from repro.pathfinding.distance import DistanceMaps
from repro.pathfinding.space_time_astar import space_time_astar
from repro.planner_base import Planner
from repro.types import Query, Route
from repro.warehouse.matrix import Warehouse


class TWPPlanner(Planner):
    """Windowed cooperative A*: conflicts enforced for ``window`` steps."""

    name = "TWP"

    def __init__(
        self,
        warehouse: Warehouse,
        window: int = 24,
        max_expansions: int = 400_000,
        horizon_slack: int = 256,
        max_start_delay: int = 64,
    ) -> None:
        super().__init__()
        self.warehouse = warehouse
        self.window = window
        self.table = ReservationTable()
        self.distance_maps = DistanceMaps(warehouse)
        self.max_expansions = max_expansions
        self.horizon_slack = horizon_slack
        self.max_start_delay = max_start_delay

    def plan(self, query: Query) -> Route:
        started = _time.perf_counter()
        try:
            route = self._plan_inner(query)
        finally:
            self.timers.total += _time.perf_counter() - started
            self.timers.queries += 1
        return route

    def _plan_inner(self, query: Query) -> Route:
        if not self.warehouse.in_bounds(query.origin) or not self.warehouse.in_bounds(
            query.destination
        ):
            raise InvalidQueryError(f"query endpoints out of bounds: {query}")
        dist_map = self.distance_maps.get(query.destination)
        for delay in range(self.max_start_delay + 1):
            route = space_time_astar(
                self.warehouse,
                query.origin,
                query.destination,
                query.release_time + delay,
                self.table,
                dist_map,
                max_expansions=self.max_expansions,
                window=self.window,
                horizon_slack=self.horizon_slack,
            )
            if route is not None:
                route = self._resolve_tail(route, dist_map)
                if route is None:
                    continue
                self.table.register(route)
                return route
        self.timers.failures += 1
        raise PlanningFailedError(
            f"TWP could not plan {query}",
            query_id=query.query_id,
            release_time=query.release_time,
            phase="windowed-astar",
        )

    def _resolve_tail(self, route: Route, dist_map):
        """Repair conflicts the window relaxation left beyond the window.

        Repeatedly re-plans from the first out-of-window conflict with a
        fresh window, mimicking the rolling-window execution of lifelong
        TWP while keeping the planner's per-query interface.  The last
        resort enforces conflicts everywhere; returns None when even
        that fails (the caller then delays the start).
        """
        for attempt in range(8):
            conflict_t = self._first_conflict_after_window(route)
            if conflict_t is None:
                return route
            # Re-plan the remainder starting one step before the conflict.
            cut = max(conflict_t - 1, route.start_time)
            prefix = route.grids[: cut - route.start_time + 1]
            tail = space_time_astar(
                self.warehouse,
                prefix[-1],
                route.destination,
                cut,
                self.table,
                dist_map,
                max_expansions=self.max_expansions,
                window=self.window if attempt < 7 else None,
                horizon_slack=self.horizon_slack,
            )
            if tail is None:
                return None
            route = Route(route.start_time, prefix + tail.grids[1:], route.query_id)
        if self._first_conflict_after_window(route) is not None:
            return None
        return route

    def _first_conflict_after_window(self, route: Route):
        steps = list(route.steps())
        window_end = route.start_time + self.window
        for (t, a), (_t, b) in zip(steps, steps[1:]):
            if t < window_end:
                continue
            if self.table.move_blocked(a, b, t):
                return t
        last_t, last_cell = steps[-1]
        if last_t >= window_end and self.table.cell_blocked(last_cell, last_t):
            return last_t
        return None

    def reset(self) -> None:
        self.table.clear()
        self.distance_maps.clear()
        self.timers.reset()

    def prune(self, before: int) -> None:
        self.table.prune(before)

    def planning_state(self) -> object:
        return self.table
