"""SAP — Simple A*-based Planning (the paper's first baseline).

Plans each query with a full space-time A* over the 3-D search space
(2-D grid + time), one query at a time, against the reservation table
of every previously planned route — classic cooperative A*.  The newly
planned route is then reserved so later queries avoid it.

Being the *simple* baseline, SAP uses the plain Manhattan heuristic by
default, which misjudges detours around rack clusters and expands many
more states — the behaviour behind the paper's "usually SAP is the
slowest" observation.  Pass ``use_true_distance=True`` for the
idealised variant with cached BFS distance maps (the heuristic the
other baselines employ).
"""

from __future__ import annotations

import time as _time

from repro.baselines.reservation import ReservationTable
from repro.exceptions import InvalidQueryError, PlanningFailedError
from repro.pathfinding.distance import DistanceMaps
from repro.pathfinding.space_time_astar import space_time_astar
from repro.planner_base import Planner
from repro.types import Query, Route
from repro.warehouse.matrix import Warehouse


class SAPPlanner(Planner):
    """Cooperative space-time A*, one query at a time."""

    name = "SAP"

    def __init__(
        self,
        warehouse: Warehouse,
        max_expansions: int = 400_000,
        horizon_slack: int = 256,
        max_start_delay: int = 64,
        use_true_distance: bool = False,
    ) -> None:
        super().__init__()
        self.warehouse = warehouse
        self.table = ReservationTable()
        self.use_true_distance = use_true_distance
        self.distance_maps = DistanceMaps(warehouse) if use_true_distance else None
        self.max_expansions = max_expansions
        self.horizon_slack = horizon_slack
        self.max_start_delay = max_start_delay

    def plan(self, query: Query) -> Route:
        started = _time.perf_counter()
        try:
            route = self._plan_inner(query)
        finally:
            self.timers.total += _time.perf_counter() - started
            self.timers.queries += 1
        return route

    def _plan_inner(self, query: Query) -> Route:
        if not self.warehouse.in_bounds(query.origin) or not self.warehouse.in_bounds(
            query.destination
        ):
            raise InvalidQueryError(f"query endpoints out of bounds: {query}")
        dist_map = (
            self.distance_maps.get(query.destination)
            if self.distance_maps is not None
            else None
        )
        for delay in range(self.max_start_delay + 1):
            route = space_time_astar(
                self.warehouse,
                query.origin,
                query.destination,
                query.release_time + delay,
                self.table,
                dist_map,
                max_expansions=self.max_expansions,
                horizon_slack=self.horizon_slack,
            )
            if route is not None:
                self.table.register(route)
                return route
        self.timers.failures += 1
        raise PlanningFailedError(
            f"SAP could not plan {query}",
            query_id=query.query_id,
            release_time=query.release_time,
            phase="space-time-astar",
        )

    def reset(self) -> None:
        self.table.clear()
        if self.distance_maps is not None:
            self.distance_maps.clear()
        self.timers.reset()

    def prune(self, before: int) -> None:
        self.table.prune(before)

    def planning_state(self) -> object:
        return self.table
