"""Conflict-Based Search (Sharon et al. 2015 [2]) for small agent groups.

CBS is the "offline optimal method" the RP baseline re-plans colliding
groups with.  This implementation supports the standard two-level
scheme: the high level branches on vertex/edge conflicts, the low level
plans single-agent space-time A* under constraint sets.

It is intended for the *small* groups RP produces (typically 2-4
agents); the node budget keeps worst cases bounded, and callers fall
back to prioritized planning when the budget is exhausted.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.pathfinding.distance import DistanceMaps
from repro.pathfinding.space_time_astar import ConflictChecker, space_time_astar
from repro.types import Grid, Query, Route
from repro.warehouse.matrix import Warehouse

# A constraint forbids agent `agent` from being at `cell` at time `t`
# (vertex) or from moving cell->cell2 over [t, t+1] (edge).
VertexConstraint = Tuple[Grid, int]
EdgeConstraint = Tuple[Grid, Grid, int]


@dataclass
class _ConstraintChecker:
    """Per-agent conflict checker combining CBS constraints and a base checker."""

    vertex: Set[VertexConstraint]
    edge: Set[EdgeConstraint]
    base: Optional[ConflictChecker] = None

    def move_blocked(self, a: Grid, b: Grid, t: int) -> bool:
        if (b, t + 1) in self.vertex:
            return True
        if a != b and (a, b, t) in self.edge:
            return True
        if self.base is not None and self.base.move_blocked(a, b, t):
            return True
        return False

    def cell_blocked(self, cell: Grid, t: int) -> bool:
        if (cell, t) in self.vertex:
            return True
        return self.base is not None and self.base.cell_blocked(cell, t)


@dataclass(order=True)
class _Node:
    cost: int
    order: int
    routes: List[Route] = field(compare=False)
    constraints: List[Tuple[Set[VertexConstraint], Set[EdgeConstraint]]] = field(
        compare=False
    )


def _first_conflict(routes: Sequence[Route]):
    """Return (i, j, kind, payload) for the earliest pairwise conflict."""
    best = None
    for i in range(len(routes)):
        for j in range(i + 1, len(routes)):
            conflict = _pair_conflict(routes[i], routes[j])
            if conflict is None:
                continue
            t = conflict[0]
            if best is None or t < best[0]:
                best = (t, i, j, conflict)
    if best is None:
        return None
    _t, i, j, conflict = best
    return i, j, conflict


def _pair_conflict(a: Route, b: Route):
    """Earliest vertex/edge conflict between two routes, or None."""
    lo = max(a.start_time, b.start_time)
    hi = min(a.finish_time, b.finish_time)
    if lo > hi:
        return None
    for t in range(lo, hi + 1):
        pa, pb = a.position_at(t), b.position_at(t)
        if pa == pb:
            return (t, "vertex", pa)
        if t < hi:
            na, nb = a.position_at(t + 1), b.position_at(t + 1)
            if na == pb and nb == pa:
                return (t, "edge", (pa, na))
    return None


def cbs_solve(
    warehouse: Warehouse,
    queries: Sequence[Query],
    distance_maps: DistanceMaps,
    base_checker: Optional[ConflictChecker] = None,
    max_nodes: int = 200,
    max_expansions: int = 50_000,
    horizon_slack: int = 128,
    stand_from: Optional[Sequence[int]] = None,
) -> Optional[List[Route]]:
    """Solve a small joint planning instance with conflict-based search.

    Args:
        queries: one origin/destination/release per agent.
        base_checker: additional immovable traffic (routes *outside* the
            group) every agent must also respect.
        max_nodes: high-level constraint-tree node budget.
        stand_from: when given, agent ``i`` is standing at its origin
            from second ``stand_from[i]`` onwards (a disturbed robot
            waiting out its hold): its routes are padded back to that
            second with origin holds *before* conflict checking, so the
            high level sees the standing presence that
            :func:`_pair_conflict` would otherwise miss — two agents
            cannot be routed through each other's pre-departure cells.
            A constraint landing inside the padded span makes that
            branch infeasible (the agent cannot leave early).

    Returns:
        One route per query (same order), mutually conflict-free and
        compatible with ``base_checker``; None when the budget is
        exhausted or some agent becomes unroutable.
    """

    def low_level(idx: int, vertex, edge) -> Optional[Route]:
        query = queries[idx]
        checker = _ConstraintChecker(vertex, edge, base_checker)
        dist_map = distance_maps.get(query.destination)
        stand = query.release_time if stand_from is None else stand_from[idx]
        if any(
            (query.origin, t) in vertex for t in range(stand, query.release_time)
        ):
            return None  # cannot leave before release; the pad is forced
        for delay in range(0, 16):
            route = space_time_astar(
                warehouse,
                query.origin,
                query.destination,
                query.release_time + delay,
                checker,
                dist_map,
                max_expansions=max_expansions,
                horizon_slack=horizon_slack,
            )
            if route is not None:
                if stand_from is not None and stand < route.start_time:
                    pad = route.start_time - stand
                    route = Route(stand, [query.origin] * pad + list(route.grids))
                route.query_id = query.query_id
                return route
        return None

    constraints = [(set(), set()) for _ in queries]
    routes: List[Route] = []
    for idx in range(len(queries)):
        route = low_level(idx, *constraints[idx])
        if route is None:
            return None
        routes.append(route)

    order = 0
    root = _Node(sum(r.duration for r in routes), order, routes, constraints)
    heap = [root]
    nodes_expanded = 0
    while heap:
        node = heapq.heappop(heap)
        conflict = _first_conflict(node.routes)
        if conflict is None:
            return node.routes
        nodes_expanded += 1
        if nodes_expanded > max_nodes:
            return None
        i, j, (t, kind, payload) = conflict
        for agent, other in ((i, j), (j, i)):
            vertex = set(node.constraints[agent][0])
            edge = set(node.constraints[agent][1])
            if kind == "vertex":
                vertex.add((payload, t))
            else:
                a_cell, b_cell = payload
                if agent == i:
                    edge.add((a_cell, b_cell, t))
                else:
                    edge.add((b_cell, a_cell, t))
            new_route = low_level(agent, vertex, edge)
            if new_route is None:
                continue
            new_routes = list(node.routes)
            new_routes[agent] = new_route
            new_constraints = list(node.constraints)
            new_constraints[agent] = (vertex, edge)
            order += 1
            heapq.heappush(
                heap,
                _Node(
                    sum(r.duration for r in new_routes),
                    order,
                    new_routes,
                    new_constraints,
                ),
            )
    return None


@dataclass(frozen=True)
class ClusterAgent:
    """One disturbed robot inside a joint-recovery conflict cluster.

    ``release`` is the earliest second the robot may move again (its
    hold-until), ``stand_from`` the second it has been standing at
    ``origin`` since (the committed anchor) — the span between them is
    forced standing presence the joint solve must respect.
    """

    query_id: int
    origin: Grid
    destination: Grid
    release: int
    stand_from: int


def solve_conflict_cluster(
    warehouse: Warehouse,
    agents: Sequence[ClusterAgent],
    distance_maps: DistanceMaps,
    base_checker: Optional[ConflictChecker] = None,
    max_nodes: int = 200,
    max_expansions: int = 50_000,
    horizon_slack: int = 128,
) -> Optional[List[Route]]:
    """Jointly plan a recovery conflict cluster with CBS.

    The reusable entry point behind ``recovery="joint"``'s escalation:
    every agent is planned from its stop cell to its original
    destination, released no earlier than its hold, padded back to its
    anchor with standing holds, mutually conflict-free and compatible
    with all committed traffic outside the cluster (``base_checker``,
    usually :meth:`repro.core.planner.SRPPlanner.recovery_checker`).
    Returns one route per agent (same order, each starting at
    ``stand_from``) or None when the budget is exhausted.
    """
    queries = [
        Query(a.origin, a.destination, a.release, query_id=a.query_id)
        for a in agents
    ]
    return cbs_solve(
        warehouse,
        queries,
        distance_maps,
        base_checker,
        max_nodes=max_nodes,
        max_expansions=max_expansions,
        horizon_slack=horizon_slack,
        stand_from=[a.stand_from for a in agents],
    )
