"""ACP — Adaptive Cached Planning (after Shi et al., ICDE 2022 [6]).

ACP accelerates planning with a cache: per destination it keeps the
shortest-path tree (our :class:`DistanceMaps`), so the spatial path of
any query is a cache descent instead of a search.  Near the destination
— and, in our per-query adaptation, whenever the cached path is usable
— it "directly uses the cached shortest path and simply waits till no
collision will happen": the departure is delayed until the fixed path
is conflict-free.  When no tolerable delay works, it falls back to a
full space-time A* for that query.

This gives ACP its characteristic profile from the paper's figures:
planning is cheap (cache hit + conflict scan), memory is mid-pack
(reservations plus cached trees), and effectiveness suffers under
congestion because waiting replaces detouring.
"""

from __future__ import annotations

import time as _time
from typing import Optional

from repro.baselines.reservation import ReservationTable
from repro.exceptions import InvalidQueryError, PlanningFailedError
from repro.pathfinding.distance import DistanceMaps
from repro.pathfinding.space_time_astar import space_time_astar
from repro.planner_base import Planner
from repro.types import Query, Route
from repro.warehouse.matrix import Warehouse


class ACPPlanner(Planner):
    """Cached shortest paths plus wait-until-clear conflict resolution."""

    name = "ACP"

    def __init__(
        self,
        warehouse: Warehouse,
        max_cached_delay: int = 24,
        max_expansions: int = 400_000,
        horizon_slack: int = 256,
        max_start_delay: int = 64,
    ) -> None:
        super().__init__()
        self.warehouse = warehouse
        self.table = ReservationTable()
        self.distance_maps = DistanceMaps(warehouse)
        self.max_cached_delay = max_cached_delay
        self.max_expansions = max_expansions
        self.horizon_slack = horizon_slack
        self.max_start_delay = max_start_delay
        #: queries answered straight from the cache (instrumentation)
        self.cache_answers = 0
        #: queries that needed the full search fallback
        self.search_answers = 0

    # ------------------------------------------------------------------
    def plan(self, query: Query) -> Route:
        started = _time.perf_counter()
        try:
            route = self._plan_inner(query)
        finally:
            self.timers.total += _time.perf_counter() - started
            self.timers.queries += 1
        return route

    def _plan_inner(self, query: Query) -> Route:
        if not self.warehouse.in_bounds(query.origin) or not self.warehouse.in_bounds(
            query.destination
        ):
            raise InvalidQueryError(f"query endpoints out of bounds: {query}")
        route = self._cached_with_waits(query)
        if route is not None:
            self.cache_answers += 1
            self.table.register(route)
            return route
        route = self._full_search(query)
        if route is not None:
            self.search_answers += 1
            self.table.register(route)
            return route
        self.timers.failures += 1
        raise PlanningFailedError(
            f"ACP could not plan {query}",
            query_id=query.query_id,
            release_time=query.release_time,
            phase="full-search",
        )

    def _cached_with_waits(self, query: Query) -> Optional[Route]:
        """Delay the cached shortest path until it is conflict-free."""
        path = self.distance_maps.greedy_path(query.origin, query.destination)
        if path is None:
            return None
        for delay in range(self.max_cached_delay + 1):
            start = query.release_time + delay
            candidate = Route(start, list(path), query.query_id)
            if not self.table.conflicts_with(candidate):
                return candidate
        return None

    def _full_search(self, query: Query) -> Optional[Route]:
        dist_map = self.distance_maps.get(query.destination)
        for delay in range(self.max_start_delay + 1):
            route = space_time_astar(
                self.warehouse,
                query.origin,
                query.destination,
                query.release_time + delay,
                self.table,
                dist_map,
                max_expansions=self.max_expansions,
                horizon_slack=self.horizon_slack,
            )
            if route is not None:
                route.query_id = query.query_id
                return route
        return None

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.table.clear()
        self.distance_maps.clear()
        self.cache_answers = 0
        self.search_answers = 0
        self.timers.reset()

    def prune(self, before: int) -> None:
        self.table.prune(before)

    def planning_state(self) -> object:
        # Traffic-scaling state only: distance-map caches are static
        # per-destination structures shared by every grid baseline and
        # excluded from MC for all planners alike (see EXPERIMENTS.md).
        return self.table
