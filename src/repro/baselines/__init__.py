"""Grid-based baseline planners the paper compares SRP against.

All four baselines plan at grid level with the 3-D (space x time)
search the paper identifies as the bottleneck:

* :mod:`repro.baselines.sap` — **SAP**, simple A*-based planning: one
  cooperative space-time A* per query against a reservation table;
* :mod:`repro.baselines.rp` — **RP** [Svancara et al. 2019], plan
  ignoring collisions, then re-plan the colliding group;
* :mod:`repro.baselines.twp` — **TWP** [Li et al. 2021], time-windowed
  planning: conflicts enforced only within a window;
* :mod:`repro.baselines.acp` — **ACP** [Shi et al. 2022], adaptive
  cached planning: cached shortest paths plus wait-until-clear.

:mod:`repro.baselines.cbs` implements conflict-based search, used by RP
for small conflict groups, and :mod:`repro.baselines.reservation` the
shared grid-level reservation table.
"""

from repro.baselines.acp import ACPPlanner
from repro.baselines.cbs import cbs_solve
from repro.baselines.reservation import ReservationTable
from repro.baselines.rp import RPPlanner
from repro.baselines.sap import SAPPlanner
from repro.baselines.twp import TWPPlanner

__all__ = [
    "ReservationTable",
    "SAPPlanner",
    "TWPPlanner",
    "RPPlanner",
    "ACPPlanner",
    "cbs_solve",
]


def make_baseline(name: str, warehouse):
    """Factory: build a baseline planner by its paper label."""
    planners = {
        "SAP": SAPPlanner,
        "RP": RPPlanner,
        "TWP": TWPPlanner,
        "ACP": ACPPlanner,
    }
    try:
        cls = planners[name]
    except KeyError:
        raise ValueError(f"unknown baseline {name!r}; expected one of {sorted(planners)}")
    return cls(warehouse)
