"""JSON (de)serialisation of warehouses and task traces.

The format is intentionally simple and diff-friendly: the rack matrix
is stored as ASCII rows, metadata as plain lists.  Round-tripping is
exact and covered by tests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

import numpy as np

from repro.exceptions import LayoutError
from repro.types import Task
from repro.warehouse.matrix import Warehouse

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def warehouse_to_dict(warehouse: Warehouse) -> Dict[str, Any]:
    """Serialise a warehouse to a JSON-ready dictionary."""
    rows = [
        "".join("#" if warehouse.racks[i, j] else "." for j in range(warehouse.width))
        for i in range(warehouse.height)
    ]
    return {
        "format_version": _FORMAT_VERSION,
        "name": warehouse.name,
        "racks": rows,
        "pickers": [list(p) for p in warehouse.pickers],
        "robot_homes": [list(h) for h in warehouse.robot_homes],
    }


def warehouse_from_dict(data: Dict[str, Any]) -> Warehouse:
    """Rebuild a warehouse from :func:`warehouse_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise LayoutError(f"unsupported warehouse format version: {version!r}")
    rows = data["racks"]
    if not rows:
        raise LayoutError("serialised warehouse has no rows")
    racks = np.array([[ch == "#" for ch in row] for row in rows], dtype=bool)
    return Warehouse(
        racks,
        pickers=[tuple(p) for p in data.get("pickers", [])],
        robot_homes=[tuple(h) for h in data.get("robot_homes", [])],
        name=data.get("name", ""),
    )


def save_warehouse(warehouse: Warehouse, path: PathLike) -> None:
    """Write a warehouse to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(warehouse_to_dict(warehouse), f, indent=1)


def load_warehouse(path: PathLike) -> Warehouse:
    """Read a warehouse previously written by :func:`save_warehouse`."""
    with open(path, "r", encoding="utf-8") as f:
        return warehouse_from_dict(json.load(f))


def save_tasks(tasks: List[Task], path: PathLike) -> None:
    """Write a task trace to ``path`` as JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "tasks": [
            {
                "release_time": t.release_time,
                "rack": list(t.rack),
                "picker": list(t.picker),
                "task_id": t.task_id,
            }
            for t in tasks
        ],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=1)


def load_tasks(path: PathLike) -> List[Task]:
    """Read a task trace previously written by :func:`save_tasks`."""
    with open(path, "r", encoding="utf-8") as f:
        payload = json.load(f)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise LayoutError(f"unsupported task trace format version: {version!r}")
    return [
        Task(
            release_time=item["release_time"],
            rack=tuple(item["rack"]),
            picker=tuple(item["picker"]),
            task_id=item.get("task_id", -1),
        )
        for item in payload["tasks"]
    ]
