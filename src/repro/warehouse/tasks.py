"""Synthetic delivery-task traces.

Each delivery task (Section VIII-A) produces three planning queries:
*pickup* (robot to rack), *transmission* (rack to picker) and *return*
(picker back to the rack's home cell).  The paper's memory plots show
arrival spikes "at the beginning or the middle, indicating the tasks
flood in during morning or noon"; the default trace reproduces that
diurnal shape with a two-peak arrival mixture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import LayoutError
from repro.types import Grid, Query, QueryKind, Task
from repro.warehouse.matrix import Warehouse


@dataclass(frozen=True)
class TaskTraceSpec:
    """Parameters for one simulated day of delivery tasks.

    Attributes:
        n_tasks: number of delivery tasks in the day.
        day_length: span of release timestamps (seconds).
        pattern: ``"diurnal"`` (morning + noon peaks, per the paper's
            observation) or ``"uniform"``.
        rack_skew: Zipf exponent of rack popularity; 0 draws racks
            uniformly, higher values concentrate demand on "hot" racks
            (real order streams are heavily skewed).
        seed: RNG seed; traces are fully deterministic.
        duty_cycle: fraction of the day that carries task releases.
            1.0 (the default) spreads arrivals over the whole day;
            smaller values compress the same arrival pattern into the
            first ``duty_cycle`` share of ``day_length``, leaving a
            quiet tail — the battery axis uses this to model shifts
            where the fleet works hard then recovers charge.
    """

    n_tasks: int
    day_length: int = 4000
    pattern: str = "diurnal"
    rack_skew: float = 0.0
    seed: int = 2023
    duty_cycle: float = 1.0

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise LayoutError("a trace needs at least one task")
        if self.day_length < 1:
            raise LayoutError("day_length must be positive")
        if self.pattern not in ("diurnal", "uniform"):
            raise LayoutError(f"unknown arrival pattern {self.pattern!r}")
        if self.rack_skew < 0:
            raise LayoutError("rack_skew must be non-negative")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise LayoutError("duty_cycle must be inside (0, 1]")


def _release_times(spec: TaskTraceSpec, rng: np.random.Generator) -> np.ndarray:
    """Sample sorted integer release times following the arrival pattern."""
    if spec.pattern == "uniform":
        times = rng.uniform(0, spec.day_length, size=spec.n_tasks)
    else:
        # Morning peak around 25% of the day, noon peak around 55%,
        # plus a light uniform background.
        component = rng.random(spec.n_tasks)
        times = np.where(
            component < 0.45,
            rng.normal(0.25 * spec.day_length, 0.08 * spec.day_length, spec.n_tasks),
            np.where(
                component < 0.85,
                rng.normal(0.55 * spec.day_length, 0.10 * spec.day_length, spec.n_tasks),
                rng.uniform(0, spec.day_length, spec.n_tasks),
            ),
        )
    times = np.clip(times, 0, spec.day_length - 1)
    if spec.duty_cycle != 1.0:
        # Compress the whole arrival pattern into the working share of
        # the day (guarded so default traces stay bit-identical).
        times = times * spec.duty_cycle
    return np.sort(times).astype(int)


def generate_tasks(warehouse: Warehouse, spec: TaskTraceSpec) -> List[Task]:
    """Generate one day of delivery tasks for ``warehouse``.

    Racks are drawn uniformly from rack cells and pickers uniformly from
    picker stations, matching the paper's per-task query structure.

    Raises:
        LayoutError: when the warehouse has no racks or no pickers.
    """
    racks = warehouse.rack_cells()
    if not racks:
        raise LayoutError("warehouse has no rack cells to deliver")
    if not warehouse.pickers:
        raise LayoutError("warehouse has no picker stations")
    rng = np.random.default_rng(spec.seed)
    releases = _release_times(spec, rng)
    if spec.rack_skew > 0:
        # Zipf-like popularity over a shuffled rack ranking.
        ranks = rng.permutation(len(racks))
        weights = 1.0 / np.power(np.arange(1, len(racks) + 1), spec.rack_skew)
        weights = weights[ranks]
        weights /= weights.sum()
        rack_idx = rng.choice(len(racks), size=spec.n_tasks, p=weights)
    else:
        rack_idx = rng.integers(0, len(racks), size=spec.n_tasks)
    picker_idx = rng.integers(0, len(warehouse.pickers), size=spec.n_tasks)
    return [
        Task(
            release_time=int(releases[k]),
            rack=racks[int(rack_idx[k])],
            picker=warehouse.pickers[int(picker_idx[k])],
            task_id=k,
        )
        for k in range(spec.n_tasks)
    ]


def day_trace_spec(
    dataset_name: str,
    day: int,
    volume_divisor: float = 1000.0,
    day_length: int = 1500,
    seed_base: int = 500,
) -> TaskTraceSpec:
    """Trace spec whose volume follows Table II's Day1..Day5 profile.

    The paper's Figs. 16-21 plot five real days per warehouse whose
    task volumes differ up to 5x (W-3 Day4 carries 134.6k tasks versus
    26.5k on Day3).  ``volume_divisor`` scales the published thousands
    down to a pure-Python-friendly count while preserving the per-day
    ratios, so multi-day comparisons keep the paper's load profile.

    Args:
        dataset_name: "W-1", "W-2" or "W-3".
        day: 1-based day index into Table II's volume columns.
    """
    from repro.warehouse.datasets import DATASET_SUMMARY

    try:
        info = DATASET_SUMMARY[dataset_name]
    except KeyError:
        raise LayoutError(f"unknown dataset {dataset_name!r}")
    if not 1 <= day <= len(info.tasks_per_day):
        raise LayoutError(f"day must be in 1..{len(info.tasks_per_day)}")
    thousands = info.tasks_per_day[day - 1]
    n_tasks = max(8, round(thousands * 1000 / volume_divisor))
    # str hashes are salted per process; derive a stable per-dataset salt.
    salt = sum(ord(ch) for ch in dataset_name) % 97
    return TaskTraceSpec(
        n_tasks=n_tasks,
        day_length=day_length,
        seed=seed_base + 10 * day + salt,
    )


def queries_for_task(task: Task, robot_cell: Grid, start_time: int) -> List[Query]:
    """Expand a task into its three queries, assuming instant handoffs.

    This helper is used by tests and examples; the simulator issues the
    stages one by one as the previous stage completes.
    """
    return [
        Query(robot_cell, task.rack, start_time, QueryKind.PICKUP, task.task_id),
        Query(task.rack, task.picker, start_time, QueryKind.TRANSMISSION, task.task_id),
        Query(task.picker, task.rack, start_time, QueryKind.RETURN, task.task_id),
    ]
