"""Warehouse substrate: matrices, layouts, datasets and task traces.

The paper evaluates on three proprietary Geek+ warehouses (Table II).
This subpackage rebuilds that substrate:

* :mod:`repro.warehouse.matrix` — the warehouse matrix of Definition 1
  plus metadata (pickers, robot home cells);
* :mod:`repro.warehouse.layout` — a parametric generator for the
  regular rack-cluster/aisle layouts the paper exploits (2 x l rack
  clusters, latitudinal aisles, picker stations);
* :mod:`repro.warehouse.datasets` — replicas of W-1, W-2 and W-3
  matching Table II's dimensions and approximate rack/picker counts;
* :mod:`repro.warehouse.tasks` — synthetic delivery-task traces with
  the diurnal arrival pattern the paper's memory figures reveal;
* :mod:`repro.warehouse.io` — JSON (de)serialisation of all the above.
"""

from repro.warehouse.datasets import DATASET_SUMMARY, dataset_by_name, w1, w2, w3
from repro.warehouse.io import (
    load_tasks,
    load_warehouse,
    save_tasks,
    save_warehouse,
    warehouse_from_dict,
    warehouse_to_dict,
)
from repro.warehouse.layout import LayoutSpec, generate_layout
from repro.warehouse.matrix import Warehouse
from repro.warehouse.tasks import TaskTraceSpec, day_trace_spec, generate_tasks, queries_for_task

__all__ = [
    "Warehouse",
    "LayoutSpec",
    "generate_layout",
    "w1",
    "w2",
    "w3",
    "dataset_by_name",
    "DATASET_SUMMARY",
    "TaskTraceSpec",
    "day_trace_spec",
    "generate_tasks",
    "queries_for_task",
    "warehouse_to_dict",
    "warehouse_from_dict",
    "save_warehouse",
    "load_warehouse",
    "save_tasks",
    "load_tasks",
]
