"""Parametric generator for regular Geek+-style warehouse layouts.

The paper's efficiency argument rests on warehouses being *regular*:
rack clusters of identical ``2 x l`` footprint separated by straight
aisles, with latitudinal aisles spanning the full width (Fig. 15 and
the remarks under Algorithm 1).  This generator produces exactly that
family of layouts:

* a top margin and inter-cluster-row aisles that span entire rows
  (these become the latitudinal aisle strips of Algorithm 1);
* vertical aisles of configurable width between cluster columns;
* a bottom station zone whose outer row hosts the picker stations;
* robot home cells scattered deterministically over free cells.

A ``fill_ratio`` below 1 leaves a deterministic pseudo-random subset of
cluster slots empty, which lets dataset replicas match the rack counts
of Table II (real warehouses keep staging/buffer zones rack-free).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import LayoutError
from repro.types import Grid
from repro.warehouse.matrix import Warehouse


@dataclass(frozen=True)
class LayoutSpec:
    """Parameters of a regular warehouse layout.

    Attributes:
        height: total rows H of the warehouse.
        width: total columns W of the warehouse.
        cluster_length: the ``l`` in the paper's ``2 x l`` rack clusters
            (rows per cluster).
        h_aisle_width: rows of full-width aisle between cluster rows.
        v_aisle_width: columns of aisle between cluster columns.
        top_margin: full-width aisle rows at the top.
        station_rows: full-width aisle rows at the bottom (picker zone).
        side_margin: aisle columns at the left and right edges.
        n_pickers: picker stations to place along the bottom (and, when
            they do not fit, the top) boundary row.
        n_robots: robot home cells to scatter over free cells.
        fill_ratio: probability that a cluster slot actually holds a
            rack cluster (1.0 = fully dense).
        cluster_orientation: ``"vertical"`` (the paper's 2-wide, l-tall
            clusters) or ``"horizontal"`` (l-wide, 2-tall).  Horizontal
            clusters break the long-column regularity Algorithm 1
            exploits and serve as a robustness/ablation layout.
        seed: RNG seed for cluster thinning and robot placement.
    """

    height: int
    width: int
    cluster_length: int = 8
    h_aisle_width: int = 2
    v_aisle_width: int = 1
    top_margin: int = 2
    station_rows: int = 3
    side_margin: int = 2
    n_pickers: int = 8
    n_robots: int = 8
    fill_ratio: float = 1.0
    cluster_orientation: str = "vertical"
    seed: int = 7

    def __post_init__(self) -> None:
        if self.height < self.top_margin + self.station_rows + self.cluster_length:
            raise LayoutError("warehouse too short for one cluster row")
        if self.width < 2 * self.side_margin + 2:
            raise LayoutError("warehouse too narrow for one cluster column")
        if self.cluster_length < 1:
            raise LayoutError("cluster_length must be >= 1")
        if not 0.0 <= self.fill_ratio <= 1.0:
            raise LayoutError("fill_ratio must lie in [0, 1]")
        if min(self.h_aisle_width, self.v_aisle_width) < 1:
            raise LayoutError("aisle widths must be >= 1")
        if self.cluster_orientation not in ("vertical", "horizontal"):
            raise LayoutError(
                f"unknown cluster orientation {self.cluster_orientation!r}"
            )

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def cluster_height(self) -> int:
        """Rows one cluster occupies (l for vertical, 2 for horizontal)."""
        return self.cluster_length if self.cluster_orientation == "vertical" else 2

    @property
    def cluster_width(self) -> int:
        """Columns one cluster occupies (2 for vertical, l for horizontal)."""
        return 2 if self.cluster_orientation == "vertical" else self.cluster_length

    def cluster_row_starts(self) -> List[int]:
        """Top row index of every cluster row band that fits."""
        starts = []
        row = self.top_margin
        limit = self.height - self.station_rows
        while row + self.cluster_height <= limit:
            starts.append(row)
            row += self.cluster_height + self.h_aisle_width
        return starts

    def cluster_col_starts(self) -> List[int]:
        """Left column index of every cluster column that fits."""
        starts = []
        col = self.side_margin
        limit = self.width - self.side_margin
        while col + self.cluster_width <= limit:
            starts.append(col)
            col += self.cluster_width + self.v_aisle_width
        return starts

    def max_racks(self) -> int:
        """Rack cells if every cluster slot were filled."""
        return (
            len(self.cluster_row_starts())
            * len(self.cluster_col_starts())
            * self.cluster_height
            * self.cluster_width
        )


def generate_layout(spec: LayoutSpec, name: str = "") -> Warehouse:
    """Build a :class:`Warehouse` from a :class:`LayoutSpec`.

    The generated matrix keeps every inter-cluster-row aisle spanning the
    full width so Algorithm 1 aggregates them into single latitudinal
    strips, which is the structural property SRP exploits.
    """
    racks = np.zeros((spec.height, spec.width), dtype=bool)
    rng = np.random.default_rng(spec.seed)

    row_starts = spec.cluster_row_starts()
    col_starts = spec.cluster_col_starts()
    if not row_starts or not col_starts:
        raise LayoutError("layout spec leaves no room for any rack cluster")

    slots = [(r0, c0) for r0 in row_starts for c0 in col_starts]
    n_filled = round(spec.fill_ratio * len(slots))
    if n_filled < len(slots):
        chosen = rng.choice(len(slots), size=n_filled, replace=False)
        filled = [slots[int(i)] for i in chosen]
    else:
        filled = slots
    for r0, c0 in filled:
        racks[r0 : r0 + spec.cluster_height, c0 : c0 + spec.cluster_width] = True

    pickers = _place_pickers(spec)
    homes = _place_robot_homes(spec, racks, pickers, rng)
    return Warehouse(racks, pickers=pickers, robot_homes=homes, name=name)


def _place_pickers(spec: LayoutSpec) -> List[Grid]:
    """Spread picker stations along the bottom row, overflowing to the top.

    Stations sit on the outermost full-aisle rows so that robots can
    queue in the station zone without blocking the rack field.
    """
    pickers: List[Grid] = []
    taken = set()
    bottom = spec.height - 1
    top = 0
    usable = list(range(1, spec.width - 1))
    per_row = len(usable) // 2 + 1  # every other column at most
    for idx in range(spec.n_pickers):
        row = bottom if idx < per_row else top
        rank = idx if idx < per_row else idx - per_row
        # Probe forward past already-taken columns (wrap within the row).
        for probe in range(len(usable)):
            cell = (row, usable[(2 * rank + probe) % len(usable)])
            if cell not in taken:
                taken.add(cell)
                pickers.append(cell)
                break
    return pickers


def _place_robot_homes(
    spec: LayoutSpec,
    racks: np.ndarray,
    pickers: List[Grid],
    rng: np.random.Generator,
) -> List[Grid]:
    """Scatter robot home cells over free, non-picker cells."""
    free_rows, free_cols = np.nonzero(~racks)
    taken = set(pickers)
    candidates = [
        (int(i), int(j))
        for i, j in zip(free_rows, free_cols)
        if (int(i), int(j)) not in taken
    ]
    if spec.n_robots > len(candidates):
        raise LayoutError("not enough free cells for the requested robots")
    picks = rng.choice(len(candidates), size=spec.n_robots, replace=False)
    return [candidates[k] for k in sorted(int(p) for p in picks)]
