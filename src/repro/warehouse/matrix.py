"""The warehouse matrix (Definition 1) and its metadata.

A warehouse is a boolean matrix ``M`` where ``M[i, j]`` is True when a
rack occupies grid ``(i, j)``.  Robots move along rack-free grids at
unit speed.  On top of the raw matrix we track the picker stations and
robot home cells needed by the simulator.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.exceptions import LayoutError
from repro.types import Grid


class Warehouse:
    """A grid warehouse: rack matrix plus pickers and robot homes.

    Attributes:
        racks: boolean ``(H, W)`` array; True marks a rack cell.
        pickers: picker station cells (always rack-free).
        robot_homes: initial robot cells (always rack-free).
        name: dataset label, e.g. ``"W-1"``.
    """

    def __init__(
        self,
        racks: np.ndarray,
        pickers: Sequence[Grid] = (),
        robot_homes: Sequence[Grid] = (),
        name: str = "",
    ) -> None:
        racks = np.asarray(racks, dtype=bool)
        if racks.ndim != 2 or racks.size == 0:
            raise LayoutError("rack matrix must be a non-empty 2-D array")
        self.racks = racks
        self.pickers: List[Grid] = [tuple(p) for p in pickers]
        self.robot_homes: List[Grid] = [tuple(h) for h in robot_homes]
        self.name = name
        for label, cells in (("picker", self.pickers), ("robot home", self.robot_homes)):
            for cell in cells:
                if not self.in_bounds(cell):
                    raise LayoutError(f"{label} cell {cell} is out of bounds")
                if self.is_rack(cell):
                    raise LayoutError(f"{label} cell {cell} sits on a rack")

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of rows (the paper's H)."""
        return int(self.racks.shape[0])

    @property
    def width(self) -> int:
        """Number of columns (the paper's W)."""
        return int(self.racks.shape[1])

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.height, self.width)

    @property
    def n_cells(self) -> int:
        """Total grid count H * W (the paper's grid-based vertex count)."""
        return self.height * self.width

    @property
    def n_racks(self) -> int:
        return int(self.racks.sum())

    def in_bounds(self, grid: Grid) -> bool:
        i, j = grid
        return 0 <= i < self.height and 0 <= j < self.width

    def is_rack(self, grid: Grid) -> bool:
        return bool(self.racks[grid[0], grid[1]])

    def is_free(self, grid: Grid) -> bool:
        """True when ``grid`` is inside the warehouse and rack-free."""
        return self.in_bounds(grid) and not self.is_rack(grid)

    def neighbors(self, grid: Grid) -> Iterator[Grid]:
        """Yield the rack-free 4-neighbours of ``grid``."""
        i, j = grid
        for cell in ((i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
            if self.is_free(cell):
                yield cell

    def all_neighbors(self, grid: Grid) -> Iterator[Grid]:
        """Yield every in-bounds 4-neighbour, racks included."""
        i, j = grid
        for cell in ((i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
            if self.in_bounds(cell):
                yield cell

    def rack_cells(self) -> List[Grid]:
        """Return every rack cell as a list of grids (row-major order)."""
        rows, cols = np.nonzero(self.racks)
        return [(int(i), int(j)) for i, j in zip(rows, cols)]

    def free_cells(self) -> List[Grid]:
        rows, cols = np.nonzero(~self.racks)
        return [(int(i), int(j)) for i, j in zip(rows, cols)]

    # ------------------------------------------------------------------
    # Derived graph statistics (Table II, "grid-based" columns)
    # ------------------------------------------------------------------
    def grid_vertex_count(self) -> int:
        """Grid-graph vertex count as reported in Table II (all grids)."""
        return self.n_cells

    def grid_edge_count(self) -> int:
        """Grid-graph edge count as reported in Table II (~2 per grid)."""
        return 2 * self.n_cells

    # ------------------------------------------------------------------
    # ASCII round-trip (handy for tests and docs)
    # ------------------------------------------------------------------
    RACK_CHAR = "#"
    FREE_CHAR = "."
    PICKER_CHAR = "P"
    HOME_CHAR = "R"

    @classmethod
    def from_ascii(cls, art: str, name: str = "") -> "Warehouse":
        """Build a warehouse from ASCII art.

        ``#`` marks a rack, ``.`` a free cell, ``P`` a picker station and
        ``R`` a robot home.  Leading/trailing blank lines are ignored and
        all rows must have equal width.
        """
        lines = [line for line in (row.rstrip() for row in art.splitlines()) if line]
        if not lines:
            raise LayoutError("empty ASCII layout")
        width = max(len(line) for line in lines)
        lines = [line.ljust(width, cls.FREE_CHAR) for line in lines]
        racks = np.zeros((len(lines), width), dtype=bool)
        pickers: List[Grid] = []
        homes: List[Grid] = []
        for i, line in enumerate(lines):
            for j, ch in enumerate(line):
                if ch == cls.RACK_CHAR:
                    racks[i, j] = True
                elif ch == cls.PICKER_CHAR:
                    pickers.append((i, j))
                elif ch == cls.HOME_CHAR:
                    homes.append((i, j))
                elif ch != cls.FREE_CHAR:
                    raise LayoutError(f"unknown layout character {ch!r} at {(i, j)}")
        return cls(racks, pickers=pickers, robot_homes=homes, name=name)

    def to_ascii(self) -> str:
        """Render the warehouse back to the ASCII format of ``from_ascii``."""
        chars = [
            [self.RACK_CHAR if self.racks[i, j] else self.FREE_CHAR for j in range(self.width)]
            for i in range(self.height)
        ]
        for i, j in self.pickers:
            chars[i][j] = self.PICKER_CHAR
        for i, j in self.robot_homes:
            if chars[i][j] == self.FREE_CHAR:
                chars[i][j] = self.HOME_CHAR
        return "\n".join("".join(row) for row in chars)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Warehouse(name={self.name!r}, shape={self.shape}, "
            f"racks={self.n_racks}, pickers={len(self.pickers)}, "
            f"robots={len(self.robot_homes)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Warehouse):
            return NotImplemented
        return (
            np.array_equal(self.racks, other.racks)
            and self.pickers == other.pickers
            and self.robot_homes == other.robot_homes
        )
