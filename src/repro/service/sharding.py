"""Region-sharded planning: per-region worker processes + boundary 2PC.

The strip decomposition is naturally partitionable — strips only
interact at shared crossings — so the planner scales horizontally by
cutting the warehouse into K contiguous row bands along full-width
aisle rows (the latitudinal strips of Algorithm 1; longitudinal strips
never span one, so a cut splits no strip).  Each band becomes a
*shard*: a worker process owning a region-restricted
:class:`~repro.core.planner.SRPPlanner` — its own segment stores,
crossing ledger and plan caches — driven over a pipe with the service's
strict JSON-line codec (:mod:`repro.service.protocol`).

The frontend :class:`ShardedPlanner` classifies queries by the region
of their endpoints:

* **intra-region** queries are forwarded whole to the owning shard;
* **cross-region** queries are decomposed at boundary strips and
  executed under a two-phase commit.  *Prepare* plans one leg per
  region and tentatively commits it, together with a *standing boundary
  hold* covering the hand-off gap (the robot arrives at the boundary
  cell before its onward leg departs — the sharded analogue of PR 7's
  recovery pre-holds) and the inter-region crossing key, claimed in
  **both** adjacent shards' ledgers so each remains self-contained for
  swap detection and the per-shard audit.  *Commit* binds the claims
  into the query's commit record; *abort* rolls every prepared shard
  back via the exact decommit inverse
  (:meth:`~repro.core.planner.SRPPlanner.abort_commit`), then the
  router retries at another boundary column / bumped release, or gives
  up and lets the service ladder degrade the rung.

**Determinism.**  Partitioning is a pure function of (warehouse, K);
every worker is a deterministic planner over its region; the router's
attempt schedule is fixed.  A single-worker shard (``workers=1``) is
*bit-for-bit* the unsharded planner — the region mask is ``None`` and
the code path identical — so recorded sessions replay exactly.  With
K > 1, concurrent dispatch interleaves shard commits, so multi-worker
runs are reproducible per shard but not across a wall-clock soak (see
docs/service.md).  This module is inside srplint's SRP003 determinism
scope: no wall clock (``perf_counter`` timer spans only), no
randomness, no unordered-set iteration.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time as _time
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.planner import SRPPlanner
from repro.core.strips import StripGraph, build_strip_graph
from repro.exceptions import InvalidQueryError, PlanningFailedError
from repro.planner_base import Planner
from repro.service.protocol import (
    ProtocolError,
    decode_route,
    encode_message,
    encode_route,
    parse_message_line,
)
from repro.types import Grid, Query, QueryKind, Route, concatenate_routes
from repro.warehouse.matrix import Warehouse

#: first request id handed to anonymous (query_id < 0) cross-region
#: queries — the two-phase commit needs a per-shard commit handle, and
#: service request ids stay far below this
_ANON_ID_BASE = 1 << 40

#: router attempt schedule for one cross-region transaction: pairs of
#: (boundary-column choice index, release bump).  Fixed order keeps the
#: retry ladder deterministic.
_CROSS_ATTEMPTS: Tuple[Tuple[int, int], ...] = (
    (0, 0),
    (1, 0),
    (0, 4),
    (2, 0),
    (1, 4),
    (0, 12),
)


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegionPartition:
    """K contiguous row bands cut along full-width aisle rows.

    ``bounds[r]`` is the inclusive ``(first_row, last_row)`` of region
    ``r`` (ordered north to south); every cut row — the last row of each
    region but the southmost — is a fully rack-free latitudinal aisle
    strip, so no strip spans two regions.  ``strip_region[s]`` maps
    strip index to its region; ``boundary_columns[b]`` lists, for the
    boundary between regions ``b`` and ``b + 1``, the columns where both
    boundary cells are rack-free (the legal hand-off columns).
    """

    k: int
    bounds: Tuple[Tuple[int, int], ...]
    strip_region: Tuple[int, ...]
    boundary_columns: Tuple[Tuple[int, ...], ...]

    def region_of_row(self, row: int) -> int:
        starts = [lo for lo, _hi in self.bounds]
        region = bisect_right(starts, row) - 1
        if region < 0 or row > self.bounds[region][1]:
            raise InvalidQueryError(f"row {row} outside the partitioned warehouse")
        return region

    def region_of_cell(self, cell: Grid) -> int:
        return self.region_of_row(cell[0])

    def mask(self, region: int) -> Tuple[bool, ...]:
        """Per-strip admissibility mask of one region (planner input)."""
        return tuple(r == region for r in self.strip_region)


def compute_partition(
    warehouse: Warehouse, graph: StripGraph, k: int
) -> RegionPartition:
    """Cut the strip graph into ``k`` row bands balancing strip count.

    Candidate cuts are full-width rack-free rows (each is one
    latitudinal strip, and longitudinal strips stop at them — Algorithm
    1's latitudinal pass — so any such cut splits no strip) that admit
    at least one boundary column.  The ``k - 1`` cuts are chosen
    greedily nearest the ideal cumulative strip-count boundaries; ties
    break toward the smaller row.  ``k`` is clamped to the number of
    usable cuts plus one, so the returned partition's ``k`` may be
    smaller than requested.  Deterministic: a pure function of
    ``(warehouse, k)``, computed identically by the frontend router and
    every worker.
    """
    if k < 1:
        raise ValueError(f"partition needs at least one region, got k={k}")
    racks = warehouse.racks
    height, width = warehouse.height, warehouse.width
    candidates: List[Tuple[int, Tuple[int, ...]]] = []
    for row in range(height - 1):
        if racks[row].any():
            continue
        cols = tuple(c for c in range(width) if not racks[row + 1][c])
        if cols:
            candidates.append((row, cols))
    strips_through_row = [0] * height
    for strip in graph.strips:
        strips_through_row[strip.alpha[0]] += 1
    prefix = [0] * height
    running = 0
    for row in range(height):
        running += strips_through_row[row]
        prefix[row] = running
    total = len(graph.strips)
    k = min(k, len(candidates) + 1)
    cut_indices: List[int] = []
    last = -1
    for j in range(1, k):
        ideal = total * j // k
        # Leave enough later candidates for the remaining cuts.
        hi = len(candidates) - (k - 1 - j)
        best_idx = -1
        best_key: Optional[Tuple[int, int]] = None
        for idx in range(last + 1, hi):
            row = candidates[idx][0]
            key = (abs(prefix[row] - ideal), row)
            if best_key is None or key < best_key:
                best_key = key
                best_idx = idx
        cut_indices.append(best_idx)
        last = best_idx
    cut_rows = [candidates[i][0] for i in cut_indices]
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for row in cut_rows:
        bounds.append((lo, row))
        lo = row + 1
    bounds.append((lo, height - 1))
    starts = [b[0] for b in bounds]

    def region_of_row(row: int) -> int:
        return bisect_right(starts, row) - 1

    strip_region = tuple(region_of_row(s.alpha[0]) for s in graph.strips)
    boundary_columns = tuple(candidates[i][1] for i in cut_indices)
    return RegionPartition(k, tuple(bounds), strip_region, boundary_columns)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _plan_rung(
    planner: SRPPlanner, query: Query, rung: str, delay: Optional[int]
) -> Optional[Route]:
    """One ladder rung against a worker's planner; None when it fails."""
    if rung == "cached":
        if delay is None:
            return planner.plan_strip_only(query)
        return planner.plan_strip_only(query, max_start_delay=delay)
    if rung == "fallback":
        if delay is None:
            return planner.plan_fallback_only(query)
        return planner.plan_fallback_only(query, max_start_delay=delay)
    try:
        return planner.plan(query)
    except PlanningFailedError:
        return None


class ShardWorker:
    """The transport-agnostic core of one region worker.

    Owns a region-restricted :class:`SRPPlanner` and handles decoded
    shard-protocol messages; :meth:`handle` never raises — anything
    malformed or invalid becomes a structured ``{"status": "error"}``
    reply, so a bad message cannot kill the worker.  One instance is
    driven either in-process (:class:`InlineShard`, tests and
    determinism harnesses) or from :func:`_shard_worker_main` inside a
    spawned worker process.
    """

    def __init__(
        self,
        warehouse: Warehouse,
        shard_id: int,
        k: int,
        planner_kwargs: Optional[Dict[str, Any]] = None,
        partition: Optional[RegionPartition] = None,
    ) -> None:
        self.shard_id = shard_id
        if partition is None:
            partition = compute_partition(warehouse, build_strip_graph(warehouse), k)
        self.partition = partition
        if not 0 <= shard_id < partition.k:
            raise ValueError(f"shard {shard_id} outside partition of {partition.k}")
        region = partition.mask(shard_id) if partition.k > 1 else None
        self.planner = SRPPlanner(warehouse, region=region, **(planner_kwargs or {}))

    # -- op handlers ---------------------------------------------------
    def handle(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        op = msg.get("op")
        handler = getattr(self, "_op_" + str(op), None)
        if handler is None:
            return {"status": "error", "note": f"unknown shard op {op!r}"}
        try:
            return handler(msg)
        except InvalidQueryError as exc:
            return {"status": "error", "note": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            return {"status": "error", "note": f"malformed {op} message: {exc!r}"}

    @staticmethod
    def _query_of(msg: Dict[str, Any]) -> Query:
        origin = msg["origin"]
        dest = msg["dest"]
        return Query(
            (int(origin[0]), int(origin[1])),
            (int(dest[0]), int(dest[1])),
            int(msg.get("release", 0)),
            QueryKind.GENERIC,
            int(msg.get("id", -1)),
        )

    def _op_ping(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        return {"status": "ok", "shard": self.shard_id}

    def _op_shutdown(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        return {"status": "ok", "shard": self.shard_id}

    def _op_plan(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        query = self._query_of(msg)
        delay = msg.get("delay")
        route = _plan_rung(
            self.planner, query, str(msg.get("rung", "full")),
            None if delay is None else int(delay),
        )
        if route is None:
            return {"status": "failed", "note": "no route at this rung"}
        return {"status": "ok", "route": encode_route(route)}

    def _op_prepare(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        """Prepare one leg of a cross-region two-phase commit.

        Plans and tentatively commits the leg; for an *entry* leg also
        claims the standing boundary hold over the hand-off gap and the
        inter-region crossing key, and for an *exit* leg the outgoing
        crossing key.  Any refusal rolls the whole prepare back exactly
        (stores bit-identical to their pre-prepare state) and replies
        ``refused`` so the coordinator can abort siblings and retry.
        """
        query = self._query_of(msg)
        if query.query_id < 0:
            return {"status": "error", "note": "prepare requires a query id"}
        delay = msg.get("delay")
        rung = str(msg.get("rung", "full"))
        planner = self.planner
        route = _plan_rung(planner, query, rung, None if delay is None else int(delay))
        if route is None:
            return {"status": "refused", "note": "no route at this rung"}
        qid = query.query_id
        try:
            entry = msg.get("entry")
            if entry is not None:
                t_in = int(entry["time"])
                cell = (int(entry["cell"][0]), int(entry["cell"][1]))
                from_cell = (int(entry["from"][0]), int(entry["from"][1]))
                # The onward leg departs at route.start_time >= t_in; the
                # robot stands at the boundary cell for the whole gap.
                if not planner.claim_boundary_hold(qid, cell, t_in, route.start_time - 1):
                    planner.abort_commit(qid)
                    return {"status": "refused", "note": "boundary hold window occupied"}
                if not planner.claim_boundary_crossing(qid, (from_cell, cell, t_in)):
                    planner.abort_commit(qid)
                    return {"status": "refused", "note": "opposing boundary crossing committed"}
            exit_to = msg.get("exit_to")
            if exit_to is not None:
                out_cell = (int(exit_to[0]), int(exit_to[1]))
                key = (route.destination, out_cell, route.finish_time + 1)
                if not planner.claim_boundary_crossing(qid, key):
                    planner.abort_commit(qid)
                    return {"status": "refused", "note": "opposing boundary crossing committed"}
            reply = {
                "status": "ok",
                "route": encode_route(route),
                "arrival": route.finish_time,
            }
        except Exception:
            # A malformed field or codec error *after* the tentative
            # commit must not leak claims: handle() turns the exception
            # into an error reply, and the coordinator only aborts the
            # shards that replied "ok" — this one has to roll itself
            # back before the error propagates.
            planner.abort_commit(qid)
            raise
        # Success intentionally exits with the claims held: they belong
        # to the coordinator now, which resolves them via _op_commit /
        # _op_abort.
        return reply  # srplint: holds(claim_boundary_hold, claim_boundary_crossing) 2PC prepare hands claims to the coordinator

    def _op_commit(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        self.planner.bind_boundary_claims(int(msg["id"]))
        return {"status": "ok"}

    def _op_abort(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        try:
            removed = self.planner.abort_commit(int(msg["id"]))
        except InvalidQueryError:
            removed = 0  # nothing prepared here: abort is idempotent
        return {"status": "ok", "removed": removed}

    def _op_prune(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        self.planner.prune(int(msg["before"]))
        return {"status": "ok"}

    def _op_reset(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        self.planner.reset()
        return {"status": "ok"}

    def _op_stats(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        planner = self.planner
        stats = {
            name: value
            for name, value in sorted(planner.stats.__dict__.items())
            if isinstance(value, (int, float))
        }
        stats["n_segments"] = planner.n_segments
        stats["planner_queries"] = planner.timers.queries
        return {"status": "ok", "shard": self.shard_id, "stats": stats}

    def _op_audit(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        """Audit this shard's stores against full (cross-region) routes."""
        from repro.analysis.validate import audit_planner_state

        routes = [
            decode_route(obj, int(obj.get("query_id", -1)))
            for obj in msg.get("routes", [])
        ]
        region_of = self.partition.region_of_cell
        shard = self.shard_id
        violations = audit_planner_state(
            self.planner,
            routes,
            since=int(msg.get("since", 0)),
            cell_filter=lambda cell: region_of(cell) == shard,
        )
        return {"status": "ok", "violations": violations}


def _shard_worker_main(
    conn: Any,
    warehouse: Warehouse,
    shard_id: int,
    k: int,
    planner_kwargs: Optional[Dict[str, Any]],
) -> None:
    """Entry point of one spawned worker process.

    Serves decoded messages off the pipe until a ``shutdown`` op or the
    frontend closes its end.  A frame the strict codec rejects gets a
    structured error reply — the worker never dies on bad input.
    """
    worker = ShardWorker(warehouse, shard_id, k, planner_kwargs)
    try:
        while True:
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                break
            try:
                msg = parse_message_line(data)
            except ProtocolError as exc:
                conn.send_bytes(encode_message({"status": "error", "note": str(exc)}))
                continue
            reply = worker.handle(msg)
            conn.send_bytes(encode_message(reply))
            if msg.get("op") == "shutdown":
                break
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Shard handles (frontend side)
# ----------------------------------------------------------------------
class InlineShard:
    """In-process shard: the worker runs in the caller's interpreter.

    Every message still round-trips through the strict JSON-line codec,
    so the inline and process transports exercise identical envelopes —
    this is the deterministic harness the tests and single-process
    deployments use.
    """

    def __init__(self, worker: ShardWorker) -> None:
        self.worker = worker
        self._lock = threading.Lock()

    def request(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            try:
                decoded = parse_message_line(encode_message(msg))
            except ProtocolError as exc:
                return {"status": "error", "note": str(exc)}
            reply = self.worker.handle(decoded)
            return dict(json.loads(encode_message(reply)))

    def alive(self) -> bool:
        return False  # no process to leak

    def close(self, timeout: float = 10.0) -> None:
        return None


class ProcessShard:
    """One spawned worker process plus its duplex pipe.

    ``spawn`` context: the child re-imports the package and rebuilds its
    partition/planner from pickled ``(warehouse, shard_id, k)``, so no
    state leaks across the fork boundary and behaviour matches macOS /
    Windows semantics everywhere.  Requests are serialised per shard by
    a lock; :meth:`close` performs the graceful shutdown handshake,
    joins the process (terminating it only if the handshake fails) and
    closes the pipe — no orphaned processes, no leaked descriptors.
    """

    def __init__(
        self,
        warehouse: Warehouse,
        shard_id: int,
        k: int,
        planner_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        ctx = multiprocessing.get_context("spawn")
        parent, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_shard_worker_main,
            args=(child, warehouse, shard_id, k, planner_kwargs),
            daemon=True,
            name=f"srp-shard-{shard_id}",
        )
        self.process.start()
        child.close()
        self._conn = parent
        self._lock = threading.Lock()
        self._closed = False

    def request(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        data = encode_message(msg)
        with self._lock:
            if self._closed:
                return {"status": "error", "note": "shard is closed"}
            try:
                self._conn.send_bytes(data)
                raw = self._conn.recv_bytes()
            except (EOFError, OSError) as exc:
                return {"status": "error", "note": f"shard pipe failed: {exc!r}"}
        return dict(json.loads(raw))

    def alive(self) -> bool:
        return self.process.is_alive()

    def close(self, timeout: float = 10.0) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.send_bytes(encode_message({"op": "shutdown"}))
                self._conn.recv_bytes()  # shutdown ack
            except (EOFError, OSError, BrokenPipeError):
                pass
            self._conn.close()
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - handshake failed
            self.process.terminate()
            self.process.join(timeout)


# ----------------------------------------------------------------------
# Frontend router
# ----------------------------------------------------------------------
class ShardedPlanner(Planner):
    """Planner facade that routes queries to region shards.

    Implements the full service-facing planner surface (``plan`` /
    ``plan_strip_only`` / ``plan_fallback_only`` / ``prune`` /
    ``reset``) so it drops into :class:`~repro.service.core.ServiceCore`
    unchanged; additionally exposes ``shard_of_query`` (admission-time
    classification), ``shard_stats`` / ``router_stats`` (merged
    telemetry) and ``close`` (worker reaping, wired into the server's
    drain).  Thread-safe: per-shard pipes are serialised by their
    handles and router counters sit behind one lock, so one dispatcher
    thread per shard can plan concurrently.
    """

    name = "SRP-sharded"

    def __init__(
        self,
        warehouse: Warehouse,
        workers: int = 1,
        mode: str = "process",
        partition: str = "aisle",
        planner_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__()
        if partition != "aisle":
            raise ValueError(f"unknown partition strategy {partition!r}")
        if mode not in ("process", "inline"):
            raise ValueError(f"unknown shard mode {mode!r}; expected process/inline")
        self.warehouse = warehouse
        self.graph: StripGraph = build_strip_graph(warehouse)
        self.partition = compute_partition(warehouse, self.graph, workers)
        #: regions actually created (requested workers clamped to the
        #: number of usable aisle cuts plus one)
        self.shard_count = self.partition.k
        self.mode = mode
        self._planner_kwargs = dict(planner_kwargs or {})
        self._shards: List[Any]
        if mode == "inline":
            self._shards = [
                InlineShard(
                    ShardWorker(
                        warehouse, i, self.shard_count,
                        self._planner_kwargs, partition=self.partition,
                    )
                )
                for i in range(self.shard_count)
            ]
        else:
            self._shards = [
                ProcessShard(warehouse, i, self.shard_count, self._planner_kwargs)
                for i in range(self.shard_count)
            ]
            # Readiness barrier: spawned workers import the package and
            # rebuild their planner before answering; pinging each one
            # (they start concurrently) keeps cold-start latency out of
            # the first real requests.
            for shard in self._shards:
                shard.request({"op": "ping"})
        self._lock = threading.Lock()
        self._anon_id = _ANON_ID_BASE
        self._counters: Dict[str, int] = {
            "intra": 0,
            "cross": 0,
            "cross_committed": 0,
            "cross_failed": 0,
            "aborts": 0,
            "retries": 0,
            "shard_errors": 0,
        }
        self._closed = False

    # -- classification ------------------------------------------------
    def shard_of_query(self, query: Query) -> int:
        """Owning shard (region of the origin); 0 for out-of-bounds."""
        cell = query.origin
        if not self.warehouse.in_bounds(cell):
            return 0  # any shard may answer the invalid-query error
        return self.partition.region_of_cell(cell)

    def _classify(self, query: Query) -> Tuple[int, int]:
        for label, cell in (
            ("origin", query.origin),
            ("destination", query.destination),
        ):
            if not self.warehouse.in_bounds(cell):
                raise InvalidQueryError(f"{label} {cell} is out of bounds")
        return (
            self.partition.region_of_cell(query.origin),
            self.partition.region_of_cell(query.destination),
        )

    def _bump(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self._counters[counter] += by

    # -- Planner interface ---------------------------------------------
    def plan(self, query: Query) -> Route:
        started = _time.perf_counter()
        try:
            route = self._route_query(query, "full", None)
        finally:
            with self._lock:
                self.timers.total += _time.perf_counter() - started
                self.timers.queries += 1
        if route is None:
            with self._lock:
                self.timers.failures += 1
            raise PlanningFailedError(
                f"no collision-free route from {query.origin} to "
                f"{query.destination} across {self.shard_count} shards",
                query_id=query.query_id,
                release_time=query.release_time,
                phase="sharded",
            )
        return route

    def plan_strip_only(
        self, query: Query, max_start_delay: Optional[int] = None
    ) -> Optional[Route]:
        return self._route_query(query, "cached", max_start_delay)

    def plan_fallback_only(
        self, query: Query, max_start_delay: Optional[int] = None
    ) -> Optional[Route]:
        return self._route_query(query, "fallback", max_start_delay)

    def reset(self) -> None:
        self._broadcast({"op": "reset"})
        with self._lock:
            for key in self._counters:
                self._counters[key] = 0
            self._anon_id = _ANON_ID_BASE
        self.timers.reset()

    def prune(self, before: int) -> None:
        self._broadcast({"op": "prune", "before": before})

    def take_revisions(self) -> Dict[int, Route]:
        return {}

    def planning_state(self) -> object:
        return ("sharded", self.shard_count)

    # -- routing -------------------------------------------------------
    def _route_query(
        self, query: Query, rung: str, delay: Optional[int]
    ) -> Optional[Route]:
        origin_region, dest_region = self._classify(query)
        if origin_region == dest_region:
            self._bump("intra")
            msg: Dict[str, Any] = {
                "op": "plan",
                "id": query.query_id,
                "origin": list(query.origin),
                "dest": list(query.destination),
                "release": query.release_time,
                "rung": rung,
            }
            if delay is not None:
                msg["delay"] = delay
            reply = self._shards[origin_region].request(msg)
            status = reply.get("status")
            if status == "ok":
                return decode_route(reply["route"], query.query_id)
            if status == "error":
                self._bump("shard_errors")
                raise InvalidQueryError(str(reply.get("note", "shard error")))
            return None
        return self._plan_cross(query, rung, delay, origin_region, dest_region)

    def _boundary_pair(
        self, region: int, next_region: int, col_choice: int, target_col: int
    ) -> Tuple[Grid, Grid]:
        """The hand-off cells for the boundary between two adjacent bands.

        Candidate columns are ordered by distance to the destination
        column (ties toward the smaller column); ``col_choice`` indexes
        that order so retries walk deterministically through
        alternatives.  Returns ``(exit_cell, entry_cell)`` — exit in
        ``region``, entry in ``next_region``.
        """
        boundary = region if next_region > region else next_region
        cols = self.partition.boundary_columns[boundary]
        ordered = sorted(cols, key=lambda c: (abs(c - target_col), c))
        col = ordered[col_choice % len(ordered)]
        cut_row = self.partition.bounds[boundary][1]
        upper, lower = (cut_row, col), (cut_row + 1, col)
        return (upper, lower) if next_region > region else (lower, upper)

    def _abort(self, prepared: Sequence[int], qid: int) -> None:
        for region in reversed(list(prepared)):
            self._shards[region].request({"op": "abort", "id": qid})
        self._bump("aborts", len(prepared))

    def _plan_cross(
        self,
        query: Query,
        rung: str,
        delay: Optional[int],
        origin_region: int,
        dest_region: int,
    ) -> Optional[Route]:
        self._bump("cross")
        qid = query.query_id
        if qid < 0:
            with self._lock:
                qid = self._anon_id
                self._anon_id += 1
        step = 1 if dest_region > origin_region else -1
        path = list(range(origin_region, dest_region + step, step))
        for attempt, (col_choice, bump) in enumerate(_CROSS_ATTEMPTS):
            if attempt:
                self._bump("retries")
            route = self._try_cross_once(query, qid, rung, delay, path, col_choice, bump)
            if route is not None:
                self._bump("cross_committed")
                return Route(route.start_time, list(route.grids), query.query_id)
        self._bump("cross_failed")
        return None

    def _try_cross_once(
        self,
        query: Query,
        qid: int,
        rung: str,
        delay: Optional[int],
        path: Sequence[int],
        col_choice: int,
        bump: int,
    ) -> Optional[Route]:
        """One full two-phase attempt; None rolls everything back."""
        prepared: List[int] = []
        legs: List[Route] = []
        crossings: List[Tuple[Grid, Grid, int]] = []  # (exit, entry, exit_time)
        leg_origin = query.origin
        release = query.release_time + bump
        entry_info: Optional[Dict[str, Any]] = None
        target_col = query.destination[1]
        for idx, region in enumerate(path):
            last = idx == len(path) - 1
            exit_cell: Optional[Grid] = None
            entry_cell: Optional[Grid] = None
            if last:
                leg_dest = query.destination
            else:
                exit_cell, entry_cell = self._boundary_pair(
                    region, path[idx + 1], col_choice, target_col
                )
                leg_dest = exit_cell
            msg: Dict[str, Any] = {
                "op": "prepare",
                "id": qid,
                "origin": list(leg_origin),
                "dest": list(leg_dest),
                "release": release,
                "rung": rung,
            }
            if delay is not None:
                msg["delay"] = delay
            if entry_info is not None:
                msg["entry"] = entry_info
            if entry_cell is not None:
                msg["exit_to"] = list(entry_cell)
            reply = self._shards[region].request(msg)
            status = reply.get("status")
            if status == "error":
                self._bump("shard_errors")
                self._abort(prepared, qid)
                raise InvalidQueryError(str(reply.get("note", "shard error")))
            if status != "ok":
                self._abort(prepared, qid)
                return None
            prepared.append(region)
            legs.append(decode_route(reply["route"], qid))
            if not last:
                arrival = int(reply["arrival"])
                assert exit_cell is not None and entry_cell is not None
                crossings.append((exit_cell, entry_cell, arrival))
                entry_info = {
                    "from": list(exit_cell),
                    "cell": list(entry_cell),
                    "time": arrival + 1,
                }
                leg_origin = entry_cell
                release = arrival + 1
        for region in prepared:
            self._shards[region].request({"op": "commit", "id": qid})
        full = legs[0]
        for (exit_cell, entry_cell, exit_time), leg in zip(crossings, legs[1:]):
            bridge = Route(exit_time, [exit_cell, entry_cell], qid)
            full = concatenate_routes(full, bridge)
            full = concatenate_routes(full, leg)
        return full

    # -- telemetry / lifecycle -----------------------------------------
    def shard_stats(self) -> List[Dict[str, Any]]:
        """Per-shard planner counters (one stats op per worker)."""
        out: List[Dict[str, Any]] = []
        for shard in self._shards:
            reply = shard.request({"op": "stats"})
            if reply.get("status") == "ok":
                out.append({"shard": reply.get("shard"), **reply.get("stats", {})})
            else:
                out.append({"error": reply.get("note", "stats failed")})
        return out

    def router_stats(self) -> Dict[str, int]:
        with self._lock:
            stats = dict(self._counters)
        stats["shard_count"] = self.shard_count
        return stats

    def audit(self, routes: Sequence[Route], since: int = 0) -> List[str]:
        """Run the store/crossing audit on every shard; merged findings."""
        encoded = [
            {**encode_route(route), "query_id": route.query_id} for route in routes
        ]
        violations: List[str] = []
        for idx, shard in enumerate(self._shards):
            reply = shard.request({"op": "audit", "routes": encoded, "since": since})
            if reply.get("status") != "ok":
                violations.append(f"shard {idx}: audit failed: {reply.get('note')}")
                continue
            violations.extend(f"shard {idx}: {v}" for v in reply.get("violations", ()))
        return violations

    def _broadcast(self, msg: Dict[str, Any]) -> None:
        for shard in self._shards:
            shard.request(msg)

    def workers_alive(self) -> int:
        """Live worker processes (0 for inline shards) — drain check."""
        return sum(1 for shard in self._shards if shard.alive())

    def close(self, timeout: float = 10.0) -> None:
        """Shut down and join every worker; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for shard in self._shards:
            shard.close(timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedPlanner(shards={self.shard_count}, mode={self.mode!r}, "
            f"warehouse={self.warehouse.name!r})"
        )
