"""Seeded open-loop load generation for the planning service.

Arrivals are *open-loop*: the schedule fixes every request's arrival
time up front (Poisson-like gaps from a seeded RNG), and requests keep
arriving whether or not the service keeps up — which is exactly what
makes admission control and shedding measurable.  Three drivers share
one schedule format:

* :func:`drive_simulated` — fully deterministic, wall-clock-free drive
  of a :class:`~repro.service.core.ServiceCore` under a simulated
  clock with a fixed per-query planning cost.  The determinism tests
  run it twice and compare everything.
* :func:`run_soak` — wall-clock open-loop drive of an in-process core
  (no sockets); the soak benchmark measures sustained qps and latency
  percentiles with it.
* :func:`run_against_server` — a pipelining socket client for a live
  :class:`~repro.service.server.ServiceServer`; the CI smoke uses it.

Real time and floats are allowed here (this module is outside
srplint's SRP003 determinism scope); everything handed to the core is
already reduced to integer milliseconds.
"""

from __future__ import annotations

import argparse
import json
import random
import socket
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.planner_base import Planner
from repro.service.core import Reply, Request, ServiceCore
from repro.service.protocol import ProtocolError, parse_reply_line
from repro.types import Query, Route
from repro.warehouse.matrix import Warehouse


@dataclass
class LoadSpec:
    """Shape of one generated load: volume, rate, mix and deadlines."""

    n_queries: int = 200
    #: mean offered arrival rate (requests per wall second)
    rate_qps: float = 100.0
    seed: int = 7
    #: span of the generated *release times* (route-time seconds) —
    #: decoupled from arrival wall time, like a warehouse queueing work
    #: slightly ahead of execution
    day_length: int = 800
    #: per-request deadline relative to arrival (ms); 0 = none
    deadline_ms: int = 0
    #: fraction of endpoints drawn from a small hot set (pickers/racks)
    hot_fraction: float = 0.5


@dataclass
class ScheduledQuery:
    """One arrival of the open-loop schedule."""

    request_id: int
    arrival_ms: int
    query: Query
    deadline_ms: int = 0


def make_schedule(warehouse: Warehouse, spec: LoadSpec) -> List[ScheduledQuery]:
    """A seeded open-loop arrival schedule over ``warehouse``.

    Gaps between arrivals are exponential (Poisson process) at
    ``spec.rate_qps``; origins/destinations mix a hot set with uniform
    floor traffic like the hot-path benchmark; release times advance
    across ``spec.day_length`` so route-time congestion stays realistic
    regardless of the wall arrival rate.
    """
    rng = random.Random(spec.seed)
    free = warehouse.free_cells()
    hot = rng.sample(free, max(4, len(free) // 50))
    schedule: List[ScheduledQuery] = []
    arrival = 0.0
    release = 0
    for k in range(spec.n_queries):
        arrival += rng.expovariate(spec.rate_qps) * 1000.0
        release += rng.randint(0, max(1, 2 * spec.day_length // max(1, spec.n_queries)))
        pool_o = hot if rng.random() < spec.hot_fraction else free
        pool_d = hot if rng.random() < spec.hot_fraction else free
        origin = rng.choice(pool_o)
        destination = rng.choice(pool_d)
        if origin == destination:
            destination = rng.choice(free)
        schedule.append(
            ScheduledQuery(
                k,
                int(arrival),
                Query(origin, destination, release, query_id=k),
                spec.deadline_ms,
            )
        )
    return schedule


def _request_of(item: ScheduledQuery, arrival_ms: int) -> Request:
    deadline = arrival_ms + item.deadline_ms if item.deadline_ms > 0 else 0
    return Request(item.request_id, item.query, arrival_ms, deadline)


# ----------------------------------------------------------------------
# Offline drivers
# ----------------------------------------------------------------------
def drive_simulated(
    core: ServiceCore,
    schedule: List[ScheduledQuery],
    cost_ms: int = 5,
    prune_every: int = 512,
) -> List[Tuple[Request, Reply]]:
    """Drive a core through a schedule on a simulated clock.

    Every processed request advances the clock by exactly ``cost_ms``
    simulated milliseconds; arrivals are admitted the moment the clock
    passes them.  No wall clock is read anywhere, so two drives of the
    same schedule produce identical replies, telemetry and traces —
    the determinism property of the acceptance criteria.
    """
    results: List[Tuple[Request, Reply]] = []
    now = 0
    i = 0
    last_prune = 0

    def admit_until(t: int) -> None:
        nonlocal i
        while i < len(schedule) and schedule[i].arrival_ms <= t:
            item = schedule[i]
            request = _request_of(item, item.arrival_ms)
            shed = core.submit(request, item.arrival_ms)
            if shed is not None:
                results.append((request, shed))
            i += 1

    while i < len(schedule) or core.pending():
        admit_until(now)
        if core.pending():
            pair = core.process_next(now)
            assert pair is not None
            results.append(pair)
            now += cost_ms
            release = pair[0].query.release_time
            if prune_every > 0 and release - last_prune >= prune_every:
                core.prune(release)
                last_prune = release
        elif i < len(schedule):
            now = max(now, schedule[i].arrival_ms)
    return results


def run_soak(
    core: ServiceCore, schedule: List[ScheduledQuery]
) -> Tuple[List[Tuple[Request, Reply]], float]:
    """Wall-clock open-loop drive of an in-process core (no sockets).

    Arrivals are admitted when the wall clock passes their scheduled
    time; the loop otherwise processes the queue as fast as the planner
    allows.  Returns the answered pairs and the elapsed wall seconds.
    """
    results: List[Tuple[Request, Reply]] = []
    t0 = time.perf_counter()
    i = 0

    def now_ms() -> int:
        return int((time.perf_counter() - t0) * 1000)

    while i < len(schedule) or core.pending():
        now = now_ms()
        while i < len(schedule) and schedule[i].arrival_ms <= now:
            request = _request_of(schedule[i], now)
            shed = core.submit(request, now)
            if shed is not None:
                results.append((request, shed))
            i += 1
        if core.pending():
            pair = core.process_next(now_ms())
            assert pair is not None
            core.telemetry.observe(
                "service_ms", now_ms() - pair[0].arrival_ms
            )
            results.append(pair)
        elif i < len(schedule):
            time.sleep(
                min(0.002, max(0.0, schedule[i].arrival_ms / 1000.0 - (now / 1000.0)))
            )
    return results, time.perf_counter() - t0


def run_soak_concurrent(
    core: ServiceCore, schedule: List[ScheduledQuery], shards: int
) -> Tuple[List[Tuple[Request, Reply]], float]:
    """Wall-clock open-loop drive with one consumer thread per shard.

    The sharded analogue of :func:`run_soak`: the main thread admits
    arrivals on schedule while ``shards`` consumer threads each drain
    their own shard's requests (``ServiceCore.dequeue(shard=...)``) and
    plan concurrently — planning runs outside the state lock, exactly
    like the server's dispatcher threads, so worker processes genuinely
    overlap.  Requires a thread-safe planner (:class:`ShardedPlanner`).
    Returns the answered pairs (completion order) and elapsed seconds.
    """
    results: List[Tuple[Request, Reply]] = []
    state = threading.Condition()
    admitting = True
    t0 = time.perf_counter()

    def now_ms() -> int:
        return int((time.perf_counter() - t0) * 1000)

    def consumer(shard: int) -> None:
        while True:
            with state:
                item = core.dequeue(now_ms(), shard=shard)
                if item is None:
                    if not admitting:
                        break
                    state.wait(timeout=0.05)
                    continue
            route, rung, note = core.plan_dequeued(item)
            done = now_ms()
            with state:
                reply = core.record_outcome(item, route, rung, note)
                core.telemetry.observe(
                    "service_ms", done - item.request.arrival_ms
                )
                results.append((item.request, reply))

    consumers = [
        threading.Thread(target=consumer, args=(s,), daemon=True)
        for s in range(shards)
    ]
    for thread in consumers:
        thread.start()
    for item in schedule:
        wait_s = item.arrival_ms / 1000.0 - (time.perf_counter() - t0)
        if wait_s > 0:
            time.sleep(wait_s)
        now = now_ms()
        request = _request_of(item, now)
        with state:
            shed = core.submit(request, now)
            if shed is not None:
                results.append((request, shed))
            state.notify_all()
    # Admission stopped: each consumer exits once its shard view drains.
    with state:
        admitting = False
        state.notify_all()
    for thread in consumers:
        thread.join()
    return results, time.perf_counter() - t0


# ----------------------------------------------------------------------
# Socket client
# ----------------------------------------------------------------------
@dataclass
class ClientReport:
    """Outcome of one open-loop client run against a live server."""

    n_sent: int = 0
    replies: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    status_counts: Dict[str, int] = field(default_factory=dict)
    protocol_errors: int = 0
    elapsed_s: float = 0.0
    #: round-trip wall ms per request id (send to reply)
    rtt_ms: Dict[int, int] = field(default_factory=dict)
    stats: Optional[Dict[str, Any]] = None

    @property
    def n_replies(self) -> int:
        return len(self.replies)

    def count(self, status: str) -> int:
        return self.status_counts.get(status, 0)

    def summary(self) -> Dict[str, Any]:
        rtts = sorted(self.rtt_ms.values())

        def pct(p: int) -> int:
            return rtts[min(len(rtts) - 1, (len(rtts) * p) // 100)] if rtts else 0

        return {
            "sent": self.n_sent,
            "replies": self.n_replies,
            "protocol_errors": self.protocol_errors,
            "status_counts": dict(sorted(self.status_counts.items())),
            "elapsed_s": round(self.elapsed_s, 3),
            "rtt_p50_ms": pct(50),
            "rtt_p95_ms": pct(95),
            "rtt_p99_ms": pct(99),
        }


def run_against_server(
    host: str,
    port: int,
    schedule: List[ScheduledQuery],
    timeout_s: float = 60.0,
    collect_stats: bool = True,
) -> ClientReport:
    """Open-loop client: send at schedule times, collect replies by id.

    Requests are pipelined on one connection (the server replies out of
    order); the call returns when every request was answered or
    ``timeout_s`` elapsed.
    """
    report = ClientReport()
    done = threading.Event()
    send_ms: Dict[int, int] = {}
    t0 = time.perf_counter()

    def now_ms() -> int:
        return int((time.perf_counter() - t0) * 1000)

    with socket.create_connection((host, port), timeout=timeout_s) as conn:
        conn_file = conn.makefile("rwb")

        def reader() -> None:
            expected = len(schedule)
            for raw in conn_file:
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                try:
                    obj = parse_reply_line(line)
                except ProtocolError:
                    report.protocol_errors += 1
                    continue
                if "stats" in obj:
                    report.stats = obj["stats"]
                    continue
                if "pong" in obj or obj.get("status") == "draining":
                    continue
                rid = obj.get("id")
                if not isinstance(rid, int):
                    report.protocol_errors += 1
                    continue
                report.replies[rid] = obj
                status = obj["status"]
                report.status_counts[status] = report.status_counts.get(status, 0) + 1
                if rid in send_ms:
                    report.rtt_ms[rid] = now_ms() - send_ms[rid]
                if len(report.replies) >= expected:
                    done.set()
                    if not collect_stats:
                        return

        reader_thread = threading.Thread(target=reader, daemon=True)
        reader_thread.start()

        for item in schedule:
            wait_s = item.arrival_ms / 1000.0 - (time.perf_counter() - t0)
            if wait_s > 0:
                time.sleep(wait_s)
            wire = {
                "op": "plan",
                "id": item.request_id,
                "origin": list(item.query.origin),
                "dest": list(item.query.destination),
                "release": item.query.release_time,
            }
            if item.deadline_ms > 0:
                wire["deadline_ms"] = item.deadline_ms
            send_ms[item.request_id] = now_ms()
            conn_file.write((json.dumps(wire) + "\n").encode("utf-8"))
            conn_file.flush()
            report.n_sent += 1

        done.wait(timeout_s)
        if collect_stats:
            try:
                conn_file.write(b'{"op": "stats"}\n')
                conn_file.flush()
                deadline = time.perf_counter() + min(5.0, timeout_s)
                while report.stats is None and time.perf_counter() < deadline:
                    time.sleep(0.01)
            except OSError:
                pass
    report.elapsed_s = time.perf_counter() - t0
    return report


def request_shutdown(host: str, port: int, timeout_s: float = 10.0) -> bool:
    """Send a ``shutdown`` request; True when the drain was acknowledged."""
    try:
        with socket.create_connection((host, port), timeout=timeout_s) as conn:
            conn_file = conn.makefile("rwb")
            conn_file.write(b'{"op": "shutdown"}\n')
            conn_file.flush()
            raw = conn_file.readline()
        obj = json.loads(raw.decode("utf-8"))
        return obj.get("status") == "draining"
    except (OSError, ValueError):
        return False


# ----------------------------------------------------------------------
# Self-serve smoke (used by CI)
# ----------------------------------------------------------------------
class _ThrottledPlanner:
    """Wrap a planner with a fixed wall-clock floor per ``plan()`` call.

    Pins the service's full-rung capacity to a machine-independent
    value, so a smoke's rate/queue-capacity overload (and therefore its
    shedding) does not depend on how fast the host happens to be.
    Everything else — rung methods, timers, stats — delegates to the
    wrapped planner untouched.
    """

    def __init__(self, inner: Planner, cost_ms: int) -> None:
        self._inner = inner
        self._cost_s = cost_ms / 1000.0

    def plan(self, query: Query) -> Route:
        time.sleep(self._cost_s)
        return self._inner.plan(query)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


def _build_planner(
    warehouse: Warehouse, plan_cost_ms: int = 0, workers: int = 0
) -> Planner:
    from repro.core.planner import SRPPlanner

    planner: Planner
    if workers >= 1:
        from repro.service.sharding import ShardedPlanner

        planner = ShardedPlanner(warehouse, workers=workers, mode="process")
    else:
        planner = SRPPlanner(warehouse)
    if plan_cost_ms > 0:
        planner = _ThrottledPlanner(planner, plan_cost_ms)  # type: ignore[assignment]
    return planner


def smoke(args: argparse.Namespace) -> int:
    """Start an in-process server, drive it open-loop, verify the drain.

    The CI contract: zero protocol errors, at least one shed when
    ``--expect-shed`` (the rate/queue-capacity combination must force
    overload), every request answered, and a clean drain on shutdown.
    """
    from repro.service.core import ServiceConfig
    from repro.service.server import ServiceServer
    from repro.warehouse import datasets

    warehouse = datasets.dataset_by_name(args.dataset, scale=args.scale)
    planner = _build_planner(
        warehouse, plan_cost_ms=args.plan_cost_ms, workers=args.workers
    )
    config = ServiceConfig(
        queue_capacity=args.queue_cap,
        default_deadline_ms=args.deadline_ms,
    )
    server = ServiceServer(planner, config, port=args.port).start()
    spec = LoadSpec(
        n_queries=args.queries,
        rate_qps=args.rate,
        seed=args.seed,
        deadline_ms=args.deadline_ms,
    )
    schedule = make_schedule(warehouse, spec)
    report = run_against_server("127.0.0.1", server.port, schedule,
                                timeout_s=args.timeout)
    acked = request_shutdown("127.0.0.1", server.port)
    clean = server.stop(timeout=args.timeout)

    summary = report.summary()
    summary["drain_acknowledged"] = acked
    summary["drain_clean"] = clean
    summary["trace_entries"] = len(server.core.trace)
    router_stats = getattr(planner, "router_stats", None)
    if callable(router_stats):
        summary["router"] = router_stats()
        summary["workers_alive_after_stop"] = planner.workers_alive()
    print(json.dumps(summary, indent=2, sort_keys=True))

    failures = []
    if report.protocol_errors:
        failures.append(f"{report.protocol_errors} protocol error(s)")
    if report.n_replies < report.n_sent:
        failures.append(f"only {report.n_replies}/{report.n_sent} requests answered")
    if args.expect_shed and report.count("shed") == 0:
        failures.append("no request was shed despite the overload rate")
    if not (acked and clean):
        failures.append("drain did not complete cleanly")
    if args.workers >= 2:
        # The multi-worker contract: cross-region traffic actually
        # exercised the boundary 2PC, and the drain reaped every worker.
        if summary.get("router", {}).get("cross", 0) == 0:
            failures.append("no cross-region query was routed")
        if summary.get("workers_alive_after_stop", 0) != 0:
            failures.append("worker process(es) survived the drain")
    for failure in failures:
        print(f"SMOKE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Open-loop load generator / smoke driver for the planning service.",
    )
    parser.add_argument("--dataset", default="W-1", choices=("W-1", "W-2", "W-3"))
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--rate", type=float, default=200.0,
                        help="offered arrival rate (requests/s)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--deadline-ms", type=int, default=150)
    parser.add_argument("--queue-cap", type=int, default=8,
                        help="admission queue capacity of the self-served instance")
    parser.add_argument("--port", type=int, default=0,
                        help="loopback port for --self-serve (0 = pick free)")
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--plan-cost-ms", type=int, default=0,
                        help="self-serve only: floor each full plan() at this "
                             "many wall-clock ms, pinning the capacity so "
                             "--expect-shed is machine-independent")
    parser.add_argument("--workers", type=int, default=0,
                        help="self-serve only: run a region-sharded planner "
                             "with this many worker processes (0 = classic "
                             "single-planner service)")
    parser.add_argument("--self-serve", action="store_true",
                        help="start an in-process server and drive it (CI smoke)")
    parser.add_argument("--expect-shed", action="store_true",
                        help="fail unless the run shed at least one request")
    parser.add_argument("--host", default="127.0.0.1")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.self_serve:
        return smoke(args)
    from repro.warehouse import datasets

    warehouse = datasets.dataset_by_name(args.dataset, scale=args.scale)
    spec = LoadSpec(n_queries=args.queries, rate_qps=args.rate, seed=args.seed,
                    deadline_ms=args.deadline_ms)
    schedule = make_schedule(warehouse, spec)
    report = run_against_server(args.host, args.port, schedule,
                                timeout_s=args.timeout)
    print(json.dumps(report.summary(), indent=2, sort_keys=True))
    return 0 if report.protocol_errors == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
