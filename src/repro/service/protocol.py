"""The JSON-line wire protocol of the planning service.

One JSON object per line, newline-terminated, UTF-8.  Requests carry an
``op``; the server answers every line with exactly one reply object
(``plan`` replies may arrive out of order relative to other in-flight
``plan`` requests on the same connection — match them by ``id``).

Requests::

    {"op": "plan", "id": 7, "origin": [r, c], "dest": [r, c],
     "release": 120, "deadline_ms": 50}        # release/deadline optional
    {"op": "stats"}
    {"op": "ping"}
    {"op": "shutdown"}                         # graceful drain

Replies (``plan``)::

    {"id": 7, "status": "ok"|"degraded", "rung": "full"|"cached"|"fallback",
     "queue_ms": 3,
     "route": {"start_time": 120, "grids": [[r, c], ...]}}
    {"id": 7, "status": "shed"|"timeout"|"failed", "queue_ms": 0, "note": "..."}

``stats`` replies embed the telemetry snapshot under ``"stats"``;
``shutdown`` acknowledges with ``{"status": "draining"}``; malformed
lines get ``{"status": "error", "note": "..."}``.  This module only
converts between wire objects and :mod:`repro.service.core` values —
no sockets, no clocks — so the server and the load generator share one
codec and the fixture tests can pin it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from repro.service.core import Reply, ReplyStatus
from repro.types import Query, QueryKind, Route

#: protocol revision announced in ``hello``/``stats`` replies
PROTOCOL_VERSION = 1

VALID_OPS = ("plan", "stats", "ping", "shutdown")


class ProtocolError(ValueError):
    """A request line could not be parsed into a valid operation."""


def _cell(value: Any, label: str) -> Tuple[int, int]:
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or not all(isinstance(v, int) and not isinstance(v, bool) for v in value)
    ):
        raise ProtocolError(f"{label} must be a [row, col] integer pair, got {value!r}")
    return (value[0], value[1])


def parse_request_line(line: str) -> Dict[str, Any]:
    """Parse one wire line into a validated request dict.

    Returns a dict with ``"op"`` plus, for ``plan``, the fields
    ``"query"`` (:class:`~repro.types.Query`), ``"id"`` and
    ``"deadline_ms"`` (relative, 0 = use the server default).
    Raises :class:`ProtocolError` on anything malformed.
    """
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"expected a JSON object, got {type(obj).__name__}")
    op = obj.get("op")
    if op not in VALID_OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {list(VALID_OPS)}")
    if op != "plan":
        return {"op": op}
    request_id = obj.get("id", -1)
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError(f"id must be an integer, got {request_id!r}")
    release = obj.get("release", 0)
    if not isinstance(release, int) or isinstance(release, bool) or release < 0:
        raise ProtocolError(f"release must be a non-negative integer, got {release!r}")
    deadline = obj.get("deadline_ms", 0)
    if not isinstance(deadline, int) or isinstance(deadline, bool) or deadline < 0:
        raise ProtocolError(
            f"deadline_ms must be a non-negative integer, got {deadline!r}"
        )
    query = Query(
        _cell(obj.get("origin"), "origin"),
        _cell(obj.get("dest"), "dest"),
        release,
        QueryKind.GENERIC,
        request_id,
    )
    return {"op": "plan", "id": request_id, "query": query, "deadline_ms": deadline}


def encode_route(route: Route) -> Dict[str, Any]:
    return {"start_time": route.start_time, "grids": [list(g) for g in route.grids]}


def decode_route(obj: Dict[str, Any], query_id: int = -1) -> Route:
    return Route(obj["start_time"], [tuple(g) for g in obj["grids"]], query_id)


def encode_reply(reply: Reply) -> str:
    """Serialise one plan reply to its wire line (no trailing newline)."""
    obj: Dict[str, Any] = {
        "id": reply.request_id,
        "status": reply.status.value,
        "queue_ms": reply.queue_ms,
    }
    if reply.rung:
        obj["rung"] = reply.rung
    if reply.route is not None:
        obj["route"] = encode_route(reply.route)
    if reply.note:
        obj["note"] = reply.note
    return json.dumps(obj)


def encode_error(note: str, request_id: Optional[int] = None) -> str:
    obj: Dict[str, Any] = {"status": "error", "note": note}
    if request_id is not None:
        obj["id"] = request_id
    return json.dumps(obj)


def encode_stats(snapshot: Dict[str, Any]) -> str:
    return json.dumps(
        {"status": "ok", "protocol": PROTOCOL_VERSION, "stats": snapshot},
        sort_keys=True,
    )


def parse_reply_line(line: str) -> Dict[str, Any]:
    """Client-side decode of one reply line (used by the load generator)."""
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"reply is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict) or "status" not in obj:
        raise ProtocolError(f"reply is missing a status: {line!r}")
    status = obj["status"]
    known = {s.value for s in ReplyStatus} | {"error", "draining"}
    if status not in known:
        raise ProtocolError(f"unknown reply status {status!r}")
    return obj
