"""The JSON-line wire protocol of the planning service.

One JSON object per line, newline-terminated, UTF-8.  Requests carry an
``op``; the server answers every line with exactly one reply object
(``plan`` replies may arrive out of order relative to other in-flight
``plan`` requests on the same connection — match them by ``id``).

Requests::

    {"op": "plan", "id": 7, "origin": [r, c], "dest": [r, c],
     "release": 120, "deadline_ms": 50}        # release/deadline optional
    {"op": "stats"}
    {"op": "ping"}
    {"op": "shutdown"}                         # graceful drain

Replies (``plan``)::

    {"id": 7, "status": "ok"|"degraded", "rung": "full"|"cached"|"fallback",
     "queue_ms": 3,
     "route": {"start_time": 120, "grids": [[r, c], ...]}}
    {"id": 7, "status": "shed"|"timeout"|"failed", "queue_ms": 0, "note": "..."}

``stats`` replies embed the telemetry snapshot under ``"stats"``;
``shutdown`` acknowledges with ``{"status": "draining"}``; malformed
lines get ``{"status": "error", "note": "..."}``.  This module only
converts between wire objects and :mod:`repro.service.core` values —
no sockets, no clocks — so the server and the load generator share one
codec and the fixture tests can pin it.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterator, Optional, Tuple

from repro.service.core import Reply, ReplyStatus
from repro.types import Query, QueryKind, Route

#: protocol revision announced in ``hello``/``stats`` replies
PROTOCOL_VERSION = 1

VALID_OPS = ("plan", "stats", "ping", "shutdown")

#: hard cap on one wire line (request or shard message), newline
#: included.  A line that exceeds it is *not* a request — the reader
#: discards it (draining to the next newline so the connection survives)
#: and the server replies with a structured error instead of buffering
#: unbounded garbage.
MAX_LINE_BYTES = 1_048_576


class ProtocolError(ValueError):
    """A request line could not be parsed into a valid operation."""


def iter_wire_lines(
    rfile: IO[bytes], max_bytes: int = MAX_LINE_BYTES
) -> Iterator[Optional[str]]:
    """Yield decoded request lines from a byte stream, length-capped.

    Yields one ``str`` per newline-terminated line (terminator
    stripped).  An oversized line — no newline within ``max_bytes`` —
    yields ``None`` exactly once while the remainder of that line is
    discarded, so the caller can reply with a structured error and keep
    the connection alive.  Handles partial reads transparently:
    ``readline`` assembles lines across arbitrary buffer boundaries.
    Bytes that do not decode as UTF-8 are surfaced as a normal line via
    ``errors="replace"`` (the JSON parse then fails with a structured
    error downstream).  Ends on EOF; a final unterminated fragment is
    yielded as a line.
    """
    while True:
        raw = rfile.readline(max_bytes + 1)
        if not raw:
            return
        if len(raw) > max_bytes and not raw.endswith(b"\n"):
            # Oversized: drain the rest of this line, then report once.
            while True:
                chunk = rfile.readline(max_bytes)
                if not chunk or chunk.endswith(b"\n"):
                    break
            yield None
            continue
        yield raw.decode("utf-8", errors="replace").rstrip("\r\n")


def encode_message(obj: Dict[str, Any]) -> bytes:
    """Serialise one shard-transport message to its framed wire bytes.

    The frontend↔worker pipe transport reuses the service's JSON-line
    framing: one object per newline-terminated UTF-8 line.  Raises
    :class:`ProtocolError` when the encoded form exceeds
    :data:`MAX_LINE_BYTES` (the receiver would reject it anyway).
    """
    data = json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(f"message of {len(data)} bytes exceeds MAX_LINE_BYTES")
    return data


def parse_message_line(data: bytes) -> Dict[str, Any]:
    """Strict decode of one shard-transport message.

    Raises :class:`ProtocolError` on oversized frames, non-UTF-8 bytes,
    invalid JSON, non-object payloads, or a missing/non-string ``"op"``
    — the worker loop converts these into structured error replies
    instead of dying.
    """
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(f"message of {len(data)} bytes exceeds MAX_LINE_BYTES")
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"message is not valid UTF-8: {exc}") from exc
    try:
        obj = json.loads(text)
    except ValueError as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"expected a JSON object, got {type(obj).__name__}")
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError(f"message op must be a string, got {op!r}")
    return obj


def _cell(value: Any, label: str) -> Tuple[int, int]:
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or not all(isinstance(v, int) and not isinstance(v, bool) for v in value)
    ):
        raise ProtocolError(f"{label} must be a [row, col] integer pair, got {value!r}")
    return (value[0], value[1])


def parse_request_line(line: str) -> Dict[str, Any]:
    """Parse one wire line into a validated request dict.

    Returns a dict with ``"op"`` plus, for ``plan``, the fields
    ``"query"`` (:class:`~repro.types.Query`), ``"id"`` and
    ``"deadline_ms"`` (relative, 0 = use the server default).
    Raises :class:`ProtocolError` on anything malformed.
    """
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"expected a JSON object, got {type(obj).__name__}")
    op = obj.get("op")
    if op not in VALID_OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {list(VALID_OPS)}")
    if op != "plan":
        return {"op": op}
    request_id = obj.get("id", -1)
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError(f"id must be an integer, got {request_id!r}")
    release = obj.get("release", 0)
    if not isinstance(release, int) or isinstance(release, bool) or release < 0:
        raise ProtocolError(f"release must be a non-negative integer, got {release!r}")
    deadline = obj.get("deadline_ms", 0)
    if not isinstance(deadline, int) or isinstance(deadline, bool) or deadline < 0:
        raise ProtocolError(
            f"deadline_ms must be a non-negative integer, got {deadline!r}"
        )
    query = Query(
        _cell(obj.get("origin"), "origin"),
        _cell(obj.get("dest"), "dest"),
        release,
        QueryKind.GENERIC,
        request_id,
    )
    return {"op": "plan", "id": request_id, "query": query, "deadline_ms": deadline}


def encode_route(route: Route) -> Dict[str, Any]:
    return {"start_time": route.start_time, "grids": [list(g) for g in route.grids]}


def decode_route(obj: Dict[str, Any], query_id: int = -1) -> Route:
    return Route(obj["start_time"], [tuple(g) for g in obj["grids"]], query_id)


def encode_reply(reply: Reply) -> str:
    """Serialise one plan reply to its wire line (no trailing newline)."""
    obj: Dict[str, Any] = {
        "id": reply.request_id,
        "status": reply.status.value,
        "queue_ms": reply.queue_ms,
    }
    if reply.rung:
        obj["rung"] = reply.rung
    if reply.route is not None:
        obj["route"] = encode_route(reply.route)
    if reply.note:
        obj["note"] = reply.note
    return json.dumps(obj)


def encode_error(note: str, request_id: Optional[int] = None) -> str:
    obj: Dict[str, Any] = {"status": "error", "note": note}
    if request_id is not None:
        obj["id"] = request_id
    return json.dumps(obj)


def encode_stats(snapshot: Dict[str, Any]) -> str:
    return json.dumps(
        {"status": "ok", "protocol": PROTOCOL_VERSION, "stats": snapshot},
        sort_keys=True,
    )


def parse_reply_line(line: str) -> Dict[str, Any]:
    """Client-side decode of one reply line (used by the load generator)."""
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"reply is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict) or "status" not in obj:
        raise ProtocolError(f"reply is missing a status: {line!r}")
    status = obj["status"]
    known = {s.value for s in ReplyStatus} | {"error", "draining"}
    if status not in known:
        raise ProtocolError(f"unknown reply status {status!r}")
    return obj
