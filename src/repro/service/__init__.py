"""An online planning service over the SRP planner.

Layering (determinism first):

* :mod:`repro.service.core` — wall-clock-free scheduler: bounded FIFO
  admission with shedding, deadlines, the degradation ladder, and the
  replayable session trace.
* :mod:`repro.service.telemetry` — pure counters / gauges / fixed-bucket
  latency histograms.
* :mod:`repro.service.protocol` — the JSON-line wire codec.
* :mod:`repro.service.server` — the threaded socket frontend (the only
  place, with :mod:`repro.service.loadgen`, where real time is read).
* :mod:`repro.service.loadgen` — seeded open-loop load generation,
  deterministic and wall-clock drivers, and the CI smoke entry point.
* :mod:`repro.service.sharding` — region-sharded planning: K worker
  processes (one per contiguous strip-graph region) behind a frontend
  router with a two-phase boundary-strip commit for cross-region
  queries.
"""

from repro.service.core import (
    TIER_CARRYING,
    TIER_CHARGE,
    TIER_IDLE,
    Reply,
    ReplyStatus,
    Request,
    Rung,
    RungReplayPlanner,
    ServiceConfig,
    ServiceCore,
    plan_at_rung,
    replay_session,
)
from repro.service.protocol import PROTOCOL_VERSION, ProtocolError
from repro.service.server import ServiceServer
from repro.service.sharding import (
    RegionPartition,
    ShardedPlanner,
    ShardWorker,
    compute_partition,
)
from repro.service.telemetry import LatencyHistogram, TelemetryRegistry

__all__ = [
    "PROTOCOL_VERSION",
    "LatencyHistogram",
    "ProtocolError",
    "RegionPartition",
    "Reply",
    "ReplyStatus",
    "Request",
    "Rung",
    "RungReplayPlanner",
    "ServiceConfig",
    "ServiceCore",
    "ServiceServer",
    "ShardWorker",
    "ShardedPlanner",
    "TelemetryRegistry",
    "TIER_CARRYING",
    "TIER_CHARGE",
    "TIER_IDLE",
    "compute_partition",
    "plan_at_rung",
    "replay_session",
]
