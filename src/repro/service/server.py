"""Threaded socket frontend of the planning service.

This is the *only* service module (with :mod:`repro.service.loadgen`)
where real time is allowed: it reads a monotonic clock, feeds
integer-millisecond timestamps into the deterministic
:class:`~repro.service.core.ServiceCore`, and owns every thread and
socket.  The division of labour:

* **connection handlers** (one thread per connection, stdlib
  :mod:`socketserver`) parse JSON lines and *admit* plan requests —
  admission is cheap bookkeeping under the state lock, so a client
  pipelining requests sees genuine queue pressure (and sheds) instead
  of being back-pressured by planning;
* a single **planning worker** drains the admission queue; the
  expensive ladder runs *outside* the state lock (the planner is only
  ever touched by this thread), replies are delivered through the
  per-connection writer callback stored on each request;
* an optional **telemetry logger** appends a JSONL snapshot of the
  registry every ``log_interval`` seconds.

Graceful drain: a ``shutdown`` request (or SIGTERM via the CLI) stops
admission — subsequent ``plan`` requests are shed with a ``"server
draining"`` note — lets the worker answer everything already queued,
then closes the listener.  The session trace survives on
``server.core.trace`` for saving/replay.
"""

from __future__ import annotations

import json
import socketserver
import threading
import time
from typing import Any, BinaryIO, Callable, Dict, Optional

from repro.planner_base import Planner
from repro.service.core import Reply, ReplyStatus, Request, ServiceConfig, ServiceCore
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    encode_error,
    encode_reply,
    encode_stats,
    iter_wire_lines,
    parse_request_line,
)

WriteLine = Callable[[str], None]


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ServiceServer:
    """A long-running planning service on a TCP port.

    Args:
        planner: the shared planner answering every query (touched only
            by the single worker thread).
        config: admission/deadline/ladder tunables.
        host, port: bind address; port 0 picks a free port (read the
            actual one from :attr:`port` after :meth:`start`).
        telemetry_log: optional path; one JSON snapshot line is
            appended every ``log_interval`` seconds while serving.
        log_interval: telemetry logging period in seconds.
    """

    def __init__(
        self,
        planner: Planner,
        config: Optional[ServiceConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry_log: Optional[str] = None,
        log_interval: float = 5.0,
    ) -> None:
        self.core = ServiceCore(planner, config)
        self.telemetry_log = telemetry_log
        self.log_interval = log_interval
        #: guards the core's queue/telemetry/trace state; never held
        #: across planning
        self._state = threading.Condition()
        self._draining = False
        self.drained = threading.Event()
        self._started = False
        self._active_workers = 0
        self._t0 = time.perf_counter()
        server = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:  # noqa: N802 (socketserver API)
                server._handle_connection(self.rfile, self.wfile)

        self._tcp = _ThreadedTCPServer((host, port), Handler)
        self._threads: list[threading.Thread] = []

    # -- lifecycle -----------------------------------------------------
    @property
    def port(self) -> int:
        return int(self._tcp.server_address[1])

    def clock_ms(self) -> int:
        """Monotonic milliseconds since server construction."""
        return int((time.perf_counter() - self._t0) * 1000)

    def start(self) -> "ServiceServer":
        """Start the listener, the planning worker and the logger."""
        if self._started:
            return self
        self._started = True
        listener = threading.Thread(
            target=self._tcp.serve_forever, name="service-listener", daemon=True
        )
        # A region-sharded planner plans concurrently (one deterministic
        # worker process per region), so it gets one dispatcher thread
        # per shard, each pulling only its own shard's requests.  Plain
        # planners keep the single worker invariant: only one thread
        # ever touches them.
        shard_count = int(getattr(self.core.planner, "shard_count", 0) or 0)
        if shard_count > 1:
            workers = [
                threading.Thread(
                    target=self._worker_loop,
                    args=(shard,),
                    name=f"service-worker-{shard}",
                    daemon=True,
                )
                for shard in range(shard_count)
            ]
        else:
            workers = [
                threading.Thread(
                    target=self._worker_loop, name="service-worker", daemon=True
                )
            ]
        self._active_workers = len(workers)
        self._threads = [listener, *workers]
        if self.telemetry_log:
            logger = threading.Thread(
                target=self._logger_loop, name="service-telemetry", daemon=True
            )
            self._threads.append(logger)
        for thread in self._threads:
            thread.start()
        return self

    def request_shutdown(self) -> None:
        """Begin a graceful drain (idempotent, signal-safe)."""
        with self._state:
            self._draining = True
            self._state.notify_all()

    def stop(self, timeout: float = 30.0) -> bool:
        """Drain, close the listener and join the worker.

        Returns True when the drain completed within ``timeout``.
        """
        self.request_shutdown()
        clean = self.drained.wait(timeout)
        self._tcp.shutdown()
        self._tcp.server_close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        # Reap a sharded planner's worker processes: the drain already
        # answered everything queued, so shutting the shards down now
        # leaves no orphaned processes or leaked pipes behind.
        close = getattr(self.core.planner, "close", None)
        if callable(close):
            close()
        return clean

    # -- connection handling -------------------------------------------
    def _make_writer(self, wfile: BinaryIO, wlock: threading.Lock) -> WriteLine:
        def write_line(text: str) -> None:
            payload = (text + "\n").encode("utf-8")
            with wlock:
                wfile.write(payload)
                wfile.flush()

        return write_line

    def _handle_connection(self, rfile: BinaryIO, wfile: BinaryIO) -> None:
        wlock = threading.Lock()
        write_line = self._make_writer(wfile, wlock)
        for decoded in iter_wire_lines(rfile):
            if decoded is None:  # oversized line: discarded, connection lives
                self._safe_write(
                    write_line,
                    encode_error(f"request line exceeds {MAX_LINE_BYTES} bytes"),
                )
                continue
            line = decoded.strip()
            if not line:
                continue
            try:
                request = parse_request_line(line)
            except ProtocolError as exc:
                self._safe_write(write_line, encode_error(str(exc)))
                continue
            op = request["op"]
            if op == "ping":
                self._safe_write(write_line, json.dumps({"status": "ok", "pong": True}))
            elif op == "stats":
                with self._state:
                    snapshot = self.core.stats_snapshot()
                snapshot["uptime_ms"] = self.clock_ms()
                self._safe_write(write_line, encode_stats(snapshot))
            elif op == "shutdown":
                self._safe_write(write_line, json.dumps({"status": "draining"}))
                self.request_shutdown()
            else:  # plan
                self._admit(request, write_line)

    def _admit(self, parsed: Dict[str, Any], write_line: WriteLine) -> None:
        now = self.clock_ms()
        deadline = parsed["deadline_ms"]
        request = Request(
            parsed["id"],
            parsed["query"],
            arrival_ms=now,
            deadline_ms=now + deadline if deadline > 0 else 0,
            client=write_line,
        )
        with self._state:
            if self._draining:
                self.core.telemetry.incr("requests")
                self.core.telemetry.incr("shed")
                reply: Optional[Reply] = Reply(
                    request.request_id, ReplyStatus.SHED, note="server draining"
                )
            else:
                reply = self.core.submit(request, now)
                if reply is None:
                    self._state.notify_all()
        if reply is not None:  # shed — answered inline
            self._safe_write(write_line, encode_reply(reply))

    @staticmethod
    def _safe_write(write_line: WriteLine, text: str) -> None:
        try:
            write_line(text)
        except (OSError, ValueError):
            pass  # client went away; planning state is unaffected

    # -- worker --------------------------------------------------------
    def _worker_loop(self, shard: Optional[int] = None) -> None:
        while True:
            with self._state:
                item = self.core.dequeue(self.clock_ms(), shard=shard)
                if item is None:
                    if self._draining:
                        break
                    self._state.wait(timeout=0.2)
                    continue
            # Planning runs outside the lock: the planner is touched
            # only by dispatcher threads, and a sharded planner is
            # thread-safe across them (per-shard pipes are serialised
            # by their handles), so admission stays responsive.
            route, rung, note = self.core.plan_dequeued(item)
            done = self.clock_ms()
            with self._state:
                reply = self.core.record_outcome(item, route, rung, note)
                self.core.telemetry.observe(
                    "service_ms", done - item.request.arrival_ms
                )
            client = item.request.client
            if callable(client):
                self._safe_write(client, encode_reply(reply))
        # Drain barrier: admission stopped before workers exit, and each
        # request was classified to exactly one shard at submit, so once
        # every dispatcher sees an empty view the queue is globally empty.
        with self._state:
            self._active_workers -= 1
            drained = self._active_workers <= 0
        if drained:
            self.drained.set()

    # -- telemetry logging ---------------------------------------------
    def _logger_loop(self) -> None:
        assert self.telemetry_log is not None
        while not self.drained.wait(self.log_interval):
            self._append_log_line()
        self._append_log_line()  # final snapshot after the drain

    def _append_log_line(self) -> None:
        with self._state:
            snapshot = self.core.stats_snapshot()
        snapshot["uptime_ms"] = self.clock_ms()
        snapshot["wall_time"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
        try:
            with open(self.telemetry_log, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(snapshot, sort_keys=True) + "\n")
        except OSError:
            pass  # telemetry must never take the service down
