"""Live telemetry for the planning service: counters and histograms.

The registry is a *pure data structure*: it never reads a clock and
never touches I/O.  Every observation is an integer handed in by the
caller (the deterministic core passes simulated milliseconds, the
socket frontend passes measured wall milliseconds), so identical
request schedules produce identical snapshots — the determinism tests
compare registries structurally.  This module is inside srplint's
SRP003 scope; wall-clock reads belong in ``service/server.py`` and
``service/loadgen.py`` only.

Latency distributions use fixed geometric buckets rather than raw
samples: memory stays O(1) per histogram over an unbounded soak, and
the exported percentiles (p50/p95/p99) are deterministic functions of
the bucket counts (the upper bound of the bucket the rank falls in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: upper bounds (inclusive) of the latency buckets, in milliseconds;
#: the final bucket is unbounded.  1-2-5 decades cover sub-millisecond
#: cache hits up to multi-second pathological stalls.
DEFAULT_BUCKET_BOUNDS_MS: Tuple[int, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
)


@dataclass
class LatencyHistogram:
    """Fixed-bucket latency histogram with deterministic percentiles."""

    bounds: Tuple[int, ...] = DEFAULT_BUCKET_BOUNDS_MS
    counts: List[int] = field(default_factory=list)
    total: int = 0
    sum_ms: int = 0
    max_ms: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value_ms: int) -> None:
        """Record one latency sample (non-negative integer ms)."""
        if value_ms < 0:
            value_ms = 0
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value_ms <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.total += 1
        self.sum_ms += value_ms
        if value_ms > self.max_ms:
            self.max_ms = value_ms

    def percentile(self, pct: int) -> int:
        """Upper bound (ms) of the bucket holding the ``pct``-th sample.

        The overflow bucket reports the maximum observed value, so a
        soak with multi-second outliers still surfaces them.  Returns 0
        on an empty histogram.
        """
        if self.total == 0:
            return 0
        # ceil(total * pct / 100) in pure integer arithmetic
        rank = max(1, (self.total * pct + 99) // 100)
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else self.max_ms
        return self.max_ms

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.total,
            "sum_ms": self.sum_ms,
            "max_ms": self.max_ms,
            "p50_ms": self.percentile(50),
            "p95_ms": self.percentile(95),
            "p99_ms": self.percentile(99),
            "buckets": list(self.counts),
        }


class TelemetryRegistry:
    """Named counters, gauges and latency histograms for one service.

    Counter names used by the core scheduler (all monotone):

    ``requests`` / ``admitted`` / ``shed`` / ``timeout`` / ``failed``
    / ``ok`` / ``degraded`` plus per-rung ``rung_full`` /
    ``rung_cached`` / ``rung_fallback``.  Gauges: ``queue_depth``
    (current) and ``queue_depth_peak``.  Histograms: ``queue_ms``
    (admission-to-dequeue wait, simulated or wall per driver) and
    ``service_ms`` (admission-to-reply, recorded by the frontend).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, int] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}

    # -- recording -----------------------------------------------------
    def incr(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def set_gauge(self, name: str, value: int) -> None:
        self.gauges[name] = value
        peak = name + "_peak"
        if value > self.gauges.get(peak, 0):
            self.gauges[peak] = value

    def observe(self, name: str, value_ms: int) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = LatencyHistogram()
        hist.observe(value_ms)

    # -- reading -------------------------------------------------------
    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def shed_rate(self) -> Optional[Tuple[int, int]]:
        """``(shed, requests)`` when any request was seen, else None."""
        requests = self.count("requests")
        if requests == 0:
            return None
        return self.count("shed"), requests

    def snapshot(self, extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """A JSON-ready, deterministically ordered view of everything.

        ``extra`` merges caller-provided context (e.g. the planner's
        plan-cache hit-rate snapshot) under the ``"planner"`` key.
        """
        snap: Dict[str, object] = {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].snapshot() for k in sorted(self.histograms)
            },
        }
        if extra is not None:
            snap["planner"] = extra
        return snap
