"""Deterministic core of the online planning service.

The scheduler here is *pure control logic*: a bounded FIFO admission
queue with load shedding, per-request deadlines, and a degradation
ladder that trades route quality for latency as the deadline budget
shrinks::

    full SRP  ->  cached/strip-only  ->  grid A* fallback  ->  FAILED
                       (both lower rungs answer as DEGRADED)

plus two non-answers decided by the scheduler alone: ``SHED`` (queue
full at admission) and ``TIMEOUT`` (deadline expired before planning
started).

**Priority-tiered admission.**  Requests carry one of three priority
tiers mirroring the fleet's urgency ordering — ``TIER_CARRYING`` (a
robot with a rack on board), ``TIER_CHARGE`` (a critical-battery robot
heading to a charger), ``TIER_IDLE`` (everything else; the default).
Shedding is priority-aware: when the queue is full, an incoming
request may *evict* the most recent queued request of a strictly less
urgent tier instead of being shed itself, so a critical-battery
request is never dropped while idle-tier requests queue.  Evicted
requests are answered ``SHED`` in arrival order at dequeue time.  With
every request at the default tier no eviction can trigger and the
scheduler behaves exactly as the flat bounded FIFO it always was.

**No wall clock, no randomness.**  Every method takes the current time
as an integer-millisecond argument; the socket frontend passes real
time, the tests and the soak harness pass a simulated clock.  Driving
the same seeded arrival schedule through two fresh cores therefore
yields identical replies, identical shed/timeout decisions and an
identical replayable :class:`~repro.tracing.PlannerTrace` — the
property ``tests/test_service_core.py`` pins.  This module is inside
srplint's SRP003 determinism scope; real time lives only in
``service/server.py`` and ``service/loadgen.py``.

Every answered query is appended to the session trace with the rung
that produced it as the entry ``tag``, so a service session can be
replayed bit-for-bit offline: :class:`RungReplayPlanner` re-applies
the recorded rung sequence to a fresh planner and
:func:`repro.tracing.replay_trace` diffs the result.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidQueryError, PlanningFailedError
from repro.planner_base import Planner
from repro.service.telemetry import TelemetryRegistry
from repro.tracing import PlannerTrace, ReplayReport, TraceEntry, replay_trace
from repro.types import Query, Route


#: priority tiers, most urgent first (numerically smallest = most
#: urgent, matching the recovery ordering in simulation/recovery.py)
TIER_CARRYING = 0
TIER_CHARGE = 1
TIER_IDLE = 2


class Rung(enum.Enum):
    """One rung of the degradation ladder, cheapest last."""

    FULL = "full"          # the complete SRP pipeline, internal fallback included
    CACHED = "cached"      # strip-level search only: plan cache / free-flow friendly
    FALLBACK = "fallback"  # one expansion-bounded grid-level A* shot


class ReplyStatus(enum.Enum):
    """Outcome classes of one service request."""

    OK = "ok"              # answered at the full rung
    DEGRADED = "degraded"  # answered at a lower rung (route is still conflict-free)
    SHED = "shed"          # rejected at admission: queue full (or frontend draining)
    TIMEOUT = "timeout"    # deadline expired before planning started
    FAILED = "failed"      # every eligible rung was tried and none found a route


@dataclass
class ServiceConfig:
    """Tunables of the admission queue and the degradation ladder.

    All times are integer milliseconds.  ``full_budget_ms`` and
    ``cached_budget_ms`` are the minimum *remaining* deadline budget at
    dequeue time for which the scheduler still attempts the full SRP
    pipeline (respectively the cached/strip-only rung); below
    ``cached_budget_ms`` only the bounded A* shot is tried.  Requests
    without a deadline always start at the full rung.
    """

    queue_capacity: int = 64
    #: default per-request deadline relative to arrival; 0 disables
    default_deadline_ms: int = 0
    full_budget_ms: int = 50
    cached_budget_ms: int = 10
    #: release-delay window granted to the degraded rungs (the full
    #: rung uses the planner's own ``max_start_delay``)
    degraded_start_delay: int = 8


@dataclass
class Request:
    """One admitted (or about-to-be-admitted) planning request.

    ``deadline_ms`` is absolute (same clock as ``arrival_ms``); 0 means
    no deadline.  ``client`` is an opaque frontend token (the socket
    server stores a reply callback there) and never influences
    scheduling, so it is excluded from comparisons.
    """

    request_id: int
    query: Query
    arrival_ms: int
    deadline_ms: int = 0
    client: Optional[object] = field(default=None, compare=False, repr=False)
    #: owning shard when the planner is region-sharded (stamped at
    #: admission so per-shard dispatchers can pull their own work);
    #: -1 = unassigned, any dispatcher may take it
    shard: int = field(default=-1, compare=False)
    #: priority tier (TIER_CARRYING / TIER_CHARGE / TIER_IDLE); smaller
    #: is more urgent and shields the request from eviction
    priority: int = field(default=TIER_IDLE, compare=False)
    #: set when a more urgent arrival claimed this request's queue slot;
    #: answered SHED at dequeue without planning
    evicted: bool = field(default=False, compare=False, repr=False)


@dataclass
class Reply:
    """The service's answer to one request."""

    request_id: int
    status: ReplyStatus
    rung: str = ""
    route: Optional[Route] = None
    #: milliseconds between admission and dequeue (0 for shed replies)
    queue_ms: int = 0
    note: str = ""

    def fingerprint(self) -> Tuple[object, ...]:
        """A comparable summary used by the determinism tests."""
        route_fp = None
        if self.route is not None:
            route_fp = (self.route.start_time, tuple(self.route.grids))
        return (self.request_id, self.status.value, self.rung, self.queue_ms, route_fp)


@dataclass
class Dequeued:
    """One request popped from the admission queue, budget already sized.

    ``remaining_ms`` is the deadline budget left at dequeue time
    (``None`` when the request carries no deadline); ``timed_out``
    marks requests whose deadline expired while queued — they must be
    answered ``TIMEOUT`` without planning.
    """

    request: Request
    queue_ms: int
    remaining_ms: Optional[int]
    timed_out: bool
    #: the request lost its slot to a higher-priority admission and
    #: must be answered SHED without planning
    evicted: bool = False


def plan_at_rung(planner: Planner, query: Query, rung: Rung,
                 degraded_start_delay: int = 8) -> Optional[Route]:
    """Plan ``query`` at exactly one ladder rung; ``None`` when it fails.

    Planners without the SRP rung methods (baselines, wrappers) serve
    every rung with their plain :meth:`~repro.planner_base.Planner.plan`
    — degradation then changes nothing but the reply tag, which keeps
    the service generic over the planner zoo.
    """
    if rung is Rung.CACHED:
        strip_only = getattr(planner, "plan_strip_only", None)
        if strip_only is not None:
            return strip_only(query, max_start_delay=degraded_start_delay)
    elif rung is Rung.FALLBACK:
        fallback_only = getattr(planner, "plan_fallback_only", None)
        if fallback_only is not None:
            return fallback_only(query, max_start_delay=degraded_start_delay)
    try:
        return planner.plan(query)
    except PlanningFailedError:
        return None


class ServiceCore:
    """Bounded-FIFO admission + deadline scheduling + degradation ladder.

    The core owns the planner and the session trace but no threads, no
    sockets and no clock: callers drive it with :meth:`submit` /
    :meth:`process_next` and supply ``now_ms`` explicitly.  All
    telemetry it emits is a deterministic function of the supplied
    schedule.
    """

    def __init__(
        self,
        planner: Planner,
        config: Optional[ServiceConfig] = None,
        telemetry: Optional[TelemetryRegistry] = None,
    ) -> None:
        self.planner = planner
        self.config = config or ServiceConfig()
        self.telemetry = telemetry or TelemetryRegistry()
        self.trace = PlannerTrace(planner_name=planner.name)
        self._queue: Deque[Request] = deque()
        #: evicted requests still physically queued (they no longer
        #: occupy admission capacity; answered SHED at dequeue)
        self._evicted_pending = 0
        # Region-sharded planners classify queries at admission so the
        # frontend's per-shard dispatchers only pull their own work.
        self._classify = getattr(planner, "shard_of_query", None)

    # -- admission -----------------------------------------------------
    def pending(self) -> int:
        """Requests admitted but not yet processed."""
        return len(self._queue)

    def submit(self, request: Request, now_ms: int) -> Optional[Reply]:
        """Admit one request, or shed it when the queue is full.

        Returns the immediate :class:`Reply` when the request was shed
        and ``None`` when it was admitted (the answer will come from a
        later :meth:`process_next` call).

        Shedding is priority-aware: a full queue sheds the *least
        urgent* work.  When the incoming request outranks a queued one
        (strictly smaller tier number), the most recent queued request
        of the least urgent tier is evicted to make room; otherwise the
        incoming request itself is shed.  Per-tier ``requests_tier_*``
        and ``shed_tier_*`` counters record both sides.
        """
        self.telemetry.incr("requests")
        self.telemetry.incr(f"requests_tier_{request.priority}")
        if len(self._queue) - self._evicted_pending >= self.config.queue_capacity:
            victim = self._eviction_victim(request.priority)
            if victim is None:
                self.telemetry.incr("shed")
                self.telemetry.incr(f"shed_tier_{request.priority}")
                return Reply(request.request_id, ReplyStatus.SHED,
                             note="admission queue full")
            victim.evicted = True
            self._evicted_pending += 1
            self.telemetry.incr("shed")
            self.telemetry.incr(f"shed_tier_{victim.priority}")
        if request.deadline_ms == 0 and self.config.default_deadline_ms > 0:
            request = Request(
                request.request_id,
                request.query,
                request.arrival_ms,
                request.arrival_ms + self.config.default_deadline_ms,
                request.client,
                request.shard,
                request.priority,
            )
        if self._classify is not None and request.shard < 0:
            request.shard = self._classify(request.query)
        self._queue.append(request)
        self.telemetry.incr("admitted")
        self.telemetry.set_gauge(
            "queue_depth", len(self._queue) - self._evicted_pending
        )
        return None

    def _eviction_victim(self, priority: int) -> Optional[Request]:
        """The queued request an arrival at ``priority`` may displace.

        Scans for live requests of a strictly less urgent tier and
        picks the least urgent, most recently admitted one (evicting
        the oldest would maximise wasted queue time).  ``None`` when
        nothing outranks — the arrival is shed instead.
        """
        victim: Optional[Request] = None
        for req in self._queue:  # oldest -> newest
            if req.evicted or req.priority <= priority:
                continue
            if victim is None or req.priority >= victim.priority:
                victim = req
        return victim

    # -- scheduling ----------------------------------------------------
    def _ladder(self, remaining_ms: Optional[int]) -> Tuple[Rung, ...]:
        """Rungs to try, given the remaining deadline budget (None = no deadline)."""
        cfg = self.config
        if remaining_ms is None or remaining_ms >= cfg.full_budget_ms:
            return (Rung.FULL, Rung.CACHED, Rung.FALLBACK)
        if remaining_ms >= cfg.cached_budget_ms:
            return (Rung.CACHED, Rung.FALLBACK)
        return (Rung.FALLBACK,)

    def dequeue(self, now_ms: int, shard: Optional[int] = None) -> Optional[Dequeued]:
        """Pop the oldest admitted request and size its deadline budget.

        Cheap bookkeeping only (no planning) so a threaded frontend can
        hold its state lock across it; ``None`` when the queue is empty.

        With ``shard`` the oldest request *belonging to that shard* (or
        unassigned, ``shard == -1``) is popped instead — per-shard
        dispatcher threads pull their own work from the one FIFO queue,
        preserving arrival order within each shard.  The scan is linear
        but the queue is bounded by ``queue_capacity``.
        """
        if shard is None:
            if not self._queue:
                return None
            request = self._queue.popleft()
        else:
            found = None
            for idx, req in enumerate(self._queue):
                if req.shard == shard or req.shard < 0:
                    found = idx
                    break
            if found is None:
                return None
            request = self._queue[found]
            del self._queue[found]
        if request.evicted:
            # Lost its slot to a higher-priority admission; the shed
            # was already counted when the eviction happened, and the
            # queue-latency histogram only tracks work actually served.
            self._evicted_pending -= 1
            self.telemetry.set_gauge(
                "queue_depth", len(self._queue) - self._evicted_pending
            )
            return Dequeued(request, 0, None, False, evicted=True)
        self.telemetry.set_gauge(
            "queue_depth", len(self._queue) - self._evicted_pending
        )
        queue_ms = max(0, now_ms - request.arrival_ms)
        self.telemetry.observe("queue_ms", queue_ms)
        remaining: Optional[int] = None
        timed_out = False
        if request.deadline_ms > 0:
            remaining = request.deadline_ms - now_ms
            timed_out = remaining < 0
        return Dequeued(request, queue_ms, remaining, timed_out)

    def plan_dequeued(
        self, item: Dequeued
    ) -> Tuple[Optional[Route], Optional[Rung], str]:
        """Run the degradation ladder for one dequeued request.

        Touches *only the planner* (no telemetry, no trace), so a
        threaded frontend may run it outside its state lock — planning
        is the expensive part, and admission must not block on it.
        Returns ``(route, rung, note)``; route is ``None`` on timeout,
        invalid queries and ladder exhaustion.
        """
        if item.evicted:
            return None, None, "evicted by higher-priority admission"
        if item.timed_out:
            return None, None, "deadline expired in queue"
        try:
            for rung in self._ladder(item.remaining_ms):
                route = plan_at_rung(
                    self.planner, item.request.query, rung,
                    self.config.degraded_start_delay,
                )
                if route is not None:
                    return route, rung, ""
        except InvalidQueryError as exc:
            return None, None, f"invalid query: {exc}"
        return None, None, "no rung found a route"

    def record_outcome(
        self,
        item: Dequeued,
        route: Optional[Route],
        rung: Optional[Rung],
        note: str,
    ) -> Reply:
        """Fold one planning outcome into telemetry + trace; build the reply."""
        request = item.request
        if item.evicted:
            # Counted as shed when the eviction happened.
            return Reply(request.request_id, ReplyStatus.SHED, note=note)
        if item.timed_out:
            self.telemetry.incr("timeout")
            return Reply(request.request_id, ReplyStatus.TIMEOUT,
                         queue_ms=item.queue_ms, note=note)
        if route is None or rung is None:
            self.telemetry.incr("failed")
            return Reply(request.request_id, ReplyStatus.FAILED,
                         queue_ms=item.queue_ms, note=note)
        status = ReplyStatus.OK if rung is Rung.FULL else ReplyStatus.DEGRADED
        self.telemetry.incr(status.value)
        self.telemetry.incr("rung_" + rung.value)
        self.trace.entries.append(TraceEntry(request.query, route, rung.value))
        return Reply(request.request_id, status, rung.value, route, item.queue_ms)

    def process_next(self, now_ms: int) -> Optional[Tuple[Request, Reply]]:
        """Dequeue and answer the oldest admitted request.

        Returns ``None`` when the queue is empty.  A request whose
        deadline has already passed is answered ``TIMEOUT`` without
        touching the planner; otherwise the degradation ladder runs
        top-down from the rung its remaining budget affords.
        """
        item = self.dequeue(now_ms)
        if item is None:
            return None
        route, rung, note = self.plan_dequeued(item)
        return item.request, self.record_outcome(item, route, rung, note)

    def drain(self, now_ms: int) -> List[Tuple[Request, Reply]]:
        """Answer everything still queued (graceful-shutdown path)."""
        answered: List[Tuple[Request, Reply]] = []
        while True:
            item = self.process_next(now_ms)
            if item is None:
                return answered
            answered.append(item)

    # -- housekeeping --------------------------------------------------
    def prune(self, before: int) -> None:
        """Forward a simulated-time prune to the planner."""
        self.planner.prune(before)

    def stats_snapshot(self) -> Dict[str, Any]:
        """Telemetry snapshot including the planner's cache counters."""
        extra: Dict[str, Any] = {"queries": self.planner.timers.queries}
        stats = getattr(self.planner, "stats", None)
        if stats is not None:
            extra["cache_hit_rate"] = getattr(stats, "cache_hit_rate", 0.0)
            for name in ("cache_hits", "cache_misses", "cache_negative_hits",
                         "fallbacks", "replans", "replan_attempts",
                         "decommitted_segments", "recovery_clusters",
                         "cluster_robots", "cbs_escalations",
                         "serial_fallbacks"):
                extra[name] = int(getattr(stats, name, 0) or 0)
        snap = self.telemetry.snapshot(extra=extra)
        snap["pending"] = self.pending()
        snap["trace_entries"] = len(self.trace)
        tiers: Dict[str, float] = {}
        for tier in (TIER_CARRYING, TIER_CHARGE, TIER_IDLE):
            total = self.telemetry.count(f"requests_tier_{tier}")
            if total:
                tiers[str(tier)] = self.telemetry.count(f"shed_tier_{tier}") / total
        if tiers:
            snap["shed_rate_tiers"] = tiers
        shard_stats = getattr(self.planner, "shard_stats", None)
        if shard_stats is not None:
            snap["shards"] = shard_stats()
        router_stats = getattr(self.planner, "router_stats", None)
        if router_stats is not None:
            snap["router"] = router_stats()
        return snap


class RungReplayPlanner(Planner):
    """Replay a service session's rung decisions against a fresh planner.

    Wraps a planner and a recorded rung-tag sequence (one tag per
    planned query, in order — exactly what a service session trace
    carries); each :meth:`plan` call is answered at the recorded rung.
    Rung *selection* in the live service depends on timing, but given
    the recorded decisions the planning itself is deterministic, so
    replaying a session trace through this wrapper reproduces every
    route bit-for-bit.  Entries with an empty/unknown tag use the plain
    :meth:`~repro.planner_base.Planner.plan`.
    """

    def __init__(self, inner: Planner, tags: Sequence[str]) -> None:
        super().__init__()
        self.inner = inner
        self.name = inner.name
        self._tags: Deque[str] = deque(tags)

    def plan(self, query: Query) -> Route:
        tag = self._tags.popleft() if self._tags else ""
        rung: Optional[Rung]
        try:
            rung = Rung(tag)
        except ValueError:
            rung = None
        if rung is None:
            return self.inner.plan(query)
        route = plan_at_rung(self.inner, query, rung)
        if route is None:
            raise PlanningFailedError(
                f"recorded rung {tag!r} found no route on replay",
                query_id=query.query_id,
                release_time=query.release_time,
                phase=tag,
            )
        return route

    def reset(self) -> None:
        self.inner.reset()

    def prune(self, before: int) -> None:
        self.inner.prune(before)

    def planning_state(self) -> object:
        return self.inner.planning_state()


def replay_session(trace: PlannerTrace, planner: Planner) -> ReplayReport:
    """Replay a *service* session trace through a fresh planner.

    Convenience over :func:`repro.tracing.replay_trace`: re-applies the
    rung tag recorded on every entry so degraded answers are replayed
    at their original rung.  With an identically configured planner the
    replayed routes are bit-identical to the recorded ones.
    """
    return replay_trace(trace, RungReplayPlanner(planner, [e.tag for e in trace.entries]))
