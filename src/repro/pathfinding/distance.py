"""BFS shortest-distance maps on the warehouse grid.

A distance map holds, for one target cell, the length of the shortest
rack-avoiding path from every cell to that target.  Rack cells other
than the target are impassable; the target itself may be a rack cell
(robots slide under the rack as their final step).

Two caching granularities exist:

* :class:`DistanceMaps` — one *exact* map per destination cell, LRU
  bounded.  The baselines need exactness: greedily descending an exact
  map reproduces a cached shortest path (the ACP/RP machinery).
* :class:`StripDistanceMaps` — one pair of weighted multi-source BFS
  *fields* per destination **strip**; the per-cell map handed to the
  A* fallback is derived from the strip's fields with a few vectorised
  array operations instead of a fresh grid BFS.  The derived map is an
  admissible (never over-estimating) heuristic with exact values along
  the destination strip, which is all space-time A* needs; destinations
  clustered in the same strip — the common warehouse pattern — stop
  paying one full BFS each.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidQueryError
from repro.types import Grid
from repro.warehouse.matrix import Warehouse

try:  # pragma: no cover - presence depends on the environment
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _sparse_dijkstra
except ImportError:  # pragma: no cover - numpy-only environments
    _csr_matrix = None
    _sparse_dijkstra = None

UNREACHABLE = -1


def bfs_distance_map(warehouse: Warehouse, target: Grid) -> np.ndarray:
    """Distances from every cell to ``target`` (-1 when unreachable)."""
    if not warehouse.in_bounds(target):
        raise InvalidQueryError(f"target {target} is out of bounds")
    h, w = warehouse.shape
    dist = np.full((h, w), UNREACHABLE, dtype=np.int32)
    dist[target] = 0
    queue = deque([target])
    racks = warehouse.racks
    while queue:
        i, j = queue.popleft()
        d = dist[i, j] + 1
        for ni, nj in ((i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
            if 0 <= ni < h and 0 <= nj < w and not racks[ni, nj] and dist[ni, nj] < 0:
                dist[ni, nj] = d
                queue.append((ni, nj))
    _extend_to_rack_cells(dist, racks)
    return dist


def _extend_to_rack_cells(dist: np.ndarray, racks: np.ndarray) -> None:
    """Give rack cells one-hop distances through their free neighbours.

    Routes may *start* under a rack (a robot parked below it), so the
    heuristic must be finite there: the robot's first move exits to an
    adjacent free cell.  Rack cells remain impassable mid-route.
    """
    neighbor_min = np.full(dist.shape, np.iinfo(np.int32).max, dtype=np.int64)
    for shift in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        shifted = np.full(dist.shape, np.iinfo(np.int32).max, dtype=np.int64)
        src = np.where(dist >= 0, dist.astype(np.int64), np.iinfo(np.int32).max)
        if shift == (1, 0):
            shifted[1:, :] = src[:-1, :]
        elif shift == (-1, 0):
            shifted[:-1, :] = src[1:, :]
        elif shift == (0, 1):
            shifted[:, 1:] = src[:, :-1]
        else:
            shifted[:, :-1] = src[:, 1:]
        neighbor_min = np.minimum(neighbor_min, shifted)
    fill = racks & (dist < 0) & (neighbor_min < np.iinfo(np.int32).max)
    dist[fill] = (neighbor_min[fill] + 1).astype(np.int32)


class DistanceMaps:
    """A per-destination LRU cache of BFS distance maps.

    ``max_entries`` bounds resident memory: one map costs H*W int32
    cells, and warehouses have thousands of distinct rack destinations.
    """

    def __init__(self, warehouse: Warehouse, max_entries: int = 512) -> None:
        self._warehouse = warehouse
        self._maps: Dict[Grid, np.ndarray] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, target: Grid) -> np.ndarray:
        cached = self._maps.get(target)
        if cached is not None:
            self.hits += 1
            # Refresh LRU position (dicts preserve insertion order).
            del self._maps[target]
            self._maps[target] = cached
            return cached
        self.misses += 1
        computed = bfs_distance_map(self._warehouse, target)
        if len(self._maps) >= self._max_entries:
            self._maps.pop(next(iter(self._maps)))
            self.evictions += 1
        self._maps[target] = computed
        return computed

    def distance(self, origin: Grid, target: Grid) -> int:
        """Shortest rack-avoiding distance, -1 when unreachable."""
        return int(self.get(target)[origin])

    def greedy_path(self, origin: Grid, target: Grid) -> Optional[List[Grid]]:
        """A shortest path obtained by descending the distance map.

        Returns None when the target is unreachable.  Deterministic:
        neighbours are tried in (up, down, left, right) order.
        """
        dist = self.get(target)
        if dist[origin] < 0:
            return None
        path = [origin]
        cur = origin
        while cur != target:
            i, j = cur
            d = dist[i, j]
            for nxt in ((i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
                # Rack cells carry one-hop heuristic values (see
                # _extend_to_rack_cells) but are not traversable; only
                # the target rack may be stepped onto.
                if not self._warehouse.in_bounds(nxt):
                    continue
                if self._warehouse.is_rack(nxt) and nxt != target:
                    continue
                if dist[nxt] == d - 1:
                    cur = nxt
                    path.append(cur)
                    break
            else:  # pragma: no cover - dist maps are always descendable
                return None
        return path

    def clear(self) -> None:
        self._maps.clear()

    def __len__(self) -> int:
        return len(self._maps)


class _SparseFieldSolver:
    """Exact weighted-field solver on scipy's sparse Dijkstra.

    The free-cell adjacency is built once per warehouse; each query
    appends a virtual source node whose out-edges carry the seed
    weights, so one single-source run yields the multi-source field
    ``F(x) = min_s d(x, s) + w_s`` exactly.  Results are bit-identical
    to :func:`_swept_fields`: both compute exact integer shortest
    distances (float64 represents them exactly at warehouse scales) and
    both finish with :func:`_extend_to_rack_cells`.  Seeds on rack
    cells are not representable in the free-cell graph; ``fields``
    returns ``None`` there and the caller falls back to the sweep.
    """

    def __init__(self, warehouse: Warehouse) -> None:
        h, w = warehouse.shape
        self._shape = (h, w)
        self._racks = warehouse.racks
        free = ~warehouse.racks
        node_of = np.full(h * w, -1, dtype=np.int64)
        free_flat = np.flatnonzero(free.ravel())
        node_of[free_flat] = np.arange(free_flat.size)
        self._node_of = node_of
        self._free_flat = free_flat
        ii, jj = np.nonzero(free[:, :-1] & free[:, 1:])
        left = node_of[ii * w + jj]
        right = node_of[ii * w + jj + 1]
        ii, jj = np.nonzero(free[:-1, :] & free[1:, :])
        top = node_of[ii * w + jj]
        bottom = node_of[ii * w + jj + w]
        self._src = np.concatenate([left, right, top, bottom])
        self._dst = np.concatenate([right, left, bottom, top])
        self._ones = np.ones(self._src.size, dtype=np.float64)

    def fields(
        self, seed_sets: List[List[Tuple[Grid, int]]]
    ) -> Optional[List[np.ndarray]]:
        h, w = self._shape
        node_of = self._node_of
        n_free = self._free_flat.size
        out: List[np.ndarray] = []
        for seeds in seed_sets:
            # Duplicate seed cells keep their minimum weight (csr
            # construction would *sum* duplicate entries).
            best: Dict[int, int] = {}
            for (i, j), weight in seeds:
                node = int(node_of[i * w + j])
                if node < 0:
                    return None  # rack-cell seed: the sweep handles those
                held = best.get(node)
                if held is None or weight < held:
                    best[node] = weight
            field = np.full((h, w), UNREACHABLE, dtype=np.int32)
            if best:
                k = len(best)
                seed_nodes = np.fromiter(best.keys(), dtype=np.int64, count=k)
                # Shifted +1 so every stored weight is positive: csgraph
                # drops explicit zeros from sparse matrices.
                seed_w = np.fromiter(best.values(), dtype=np.float64, count=k) + 1.0
                src = np.concatenate([self._src, np.full(k, n_free, dtype=np.int64)])
                dst = np.concatenate([self._dst, seed_nodes])
                data = np.concatenate([self._ones, seed_w])
                graph = _csr_matrix((data, (src, dst)), shape=(n_free + 1, n_free + 1))
                dist = _sparse_dijkstra(graph, directed=True, indices=n_free)[:n_free]
                reach = np.isfinite(dist)
                field.ravel()[self._free_flat[reach]] = (dist[reach] - 1.0).astype(
                    np.int32
                )
            _extend_to_rack_cells(field, self._racks)
            out.append(field)
        return out


def _weighted_fields(
    warehouse: Warehouse,
    seed_sets: List[List[Tuple[Grid, int]]],
    solver: Optional[_SparseFieldSolver] = None,
) -> List[np.ndarray]:
    """Multi-source weighted BFS fields: ``F(x) = min_s d(x, s) + w_s``.

    When a :class:`_SparseFieldSolver` is supplied (scipy present) the
    fields come from one sparse Dijkstra per seed set; otherwise — and
    for the rack-cell seeds the sparse graph cannot host — they come
    from :func:`_swept_fields`.  Both paths are exact, so the choice is
    invisible to callers.
    """
    if solver is not None:
        fields = solver.fields(seed_sets)
        if fields is not None:
            return fields
    return _swept_fields(warehouse, seed_sets)


def _swept_fields(
    warehouse: Warehouse, seed_sets: List[List[Tuple[Grid, int]]]
) -> List[np.ndarray]:
    """Dial's bucket sweep over stacked layers — the numpy-only path.

    Each seed set is a list of ``(cell, weight)`` pairs; edges cost 1,
    so Dijkstra degenerates into Dial's bucket sweep: settle one
    distance level per pass, with the whole level expanded as four
    vectorised array shifts instead of a Python heap loop.  All
    requested fields ride one stacked ``(n, h, w)`` sweep — layers are
    independent (a level a layer has no frontier at is simply skipped
    for it), so each comes out exactly as its own sweep would.  Free
    cells unreachable from every seed keep -1; rack cells get one-hop
    values through their free neighbours, matching
    :func:`bfs_distance_map`'s under-rack semantics.
    """
    h, w = warehouse.shape
    racks = warehouse.racks
    inf = np.int32(np.iinfo(np.int32).max)
    n = len(seed_sets)
    cur = np.full((n, h, w), inf, dtype=np.int32)
    max_weight = -1
    for layer, seeds in enumerate(seed_sets):
        plane = cur[layer]
        for (i, j), weight in seeds:
            if weight < plane[i, j]:
                plane[i, j] = weight
            if weight > max_weight:
                max_weight = weight
    if max_weight >= 0:
        free = ~racks
        reach = np.empty((n, h, w), dtype=bool)
        level = int(cur.min())
        while True:
            frontier = cur == level
            if frontier.any():
                reach[:] = False
                reach[:, 1:, :] |= frontier[:, :-1, :]
                reach[:, :-1, :] |= frontier[:, 1:, :]
                reach[:, :, 1:] |= frontier[:, :, :-1]
                reach[:, :, :-1] |= frontier[:, :, 1:]
                level += 1
                cur[reach & free & (cur > level)] = level
            elif level >= max_weight:
                break  # no frontier and no dormant seeds left: settled
            else:
                level += 1
    fields = []
    for layer in range(n):
        field = np.where(cur[layer] == inf, np.int32(UNREACHABLE), cur[layer])
        _extend_to_rack_cells(field, racks)
        fields.append(field)
    return fields


def _weighted_field(warehouse: Warehouse, seeds: List[Tuple[Grid, int]]) -> np.ndarray:
    """Single-field convenience wrapper over :func:`_weighted_fields`."""
    return _weighted_fields(warehouse, [seeds])[0]


class StripDistanceMaps:
    """Distance maps batched per destination *strip*.

    For a strip of length ``L`` two weighted fields are built once and
    shared by every destination cell in the strip:

    * ``A(x) = min_p d_p(x) + p``
    * ``B(x) = min_p d_p(x) + (L - 1 - p)``

    where ``d_p(x)`` is the exact rack-avoiding distance from ``x`` to
    the strip cell at local position ``p`` (for rack strips, to its
    free neighbours plus the final slide-under step, weight ``p + 1`` /
    ``L - p``).  For a destination at position ``q``, every ``p`` term
    gives ``d_q(x) >= d_p(x) + |p - q| >= d_p(x) + p - q``, so

    ``H(x) = max(A(x) - q, B(x) - (L - 1 - q), manhattan(x, target))``

    never over-estimates ``d_q(x)`` — an admissible heuristic for
    space-time A*, derived with three vectorised array ops instead of a
    fresh grid BFS per destination.  Along the destination strip itself
    the bound is tight (``A`` restricted to an aisle strip equals the
    local position exactly), which is where heuristic accuracy matters
    most for the fallback's corridor-shaped searches.

    Exactness of the *routes* is untouched: admissible heuristics leave
    space-time A* optimal, and the cached-vs-uncached planner invariant
    only requires both modes to share one heuristic provider — they do.
    Cells unreachable from every seed stay ``UNREACHABLE`` so the
    solver's early-abort paths behave as before; the target cell is
    pinned to 0 (its extended under-rack value would be ``q + 2``-ish,
    not 0, and A* requires ``h(goal) = 0``).

    The per-strip fields and the small per-target derived maps sit in
    separate LRU caches; ``hits``/``misses``/``evictions`` count target
    lookups, ``field_builds`` counts strip field constructions (the
    expensive part — two Dijkstra sweeps each).
    """

    def __init__(
        self,
        warehouse: Warehouse,
        graph: "StripGraph",
        max_strips: int = 128,
        max_targets: int = 512,
    ) -> None:
        self._warehouse = warehouse
        self._graph = graph
        self._max_strips = max_strips
        self._max_targets = max_targets
        # strip index -> (A field, B field, strip length)
        self._fields: Dict[int, Tuple[np.ndarray, np.ndarray, int]] = {}
        # target cell -> derived per-target map
        self._maps: Dict[Grid, np.ndarray] = {}
        h, w = warehouse.shape
        self._rows = np.arange(h, dtype=np.int32).reshape(h, 1)
        self._cols = np.arange(w, dtype=np.int32).reshape(1, w)
        self._solver = (
            _SparseFieldSolver(warehouse) if _sparse_dijkstra is not None else None
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.field_builds = 0

    # ------------------------------------------------------------------
    def _strip_fields(self, strip_index: int) -> Tuple[np.ndarray, np.ndarray, int]:
        entry = self._fields.get(strip_index)
        if entry is not None:
            del self._fields[strip_index]
            self._fields[strip_index] = entry
            return entry
        strip = self._graph.strips[strip_index]
        length = strip.length
        racks = self._warehouse.racks
        h, w = self._warehouse.shape
        a_seeds: List[Tuple[Grid, int]] = []
        b_seeds: List[Tuple[Grid, int]] = []
        for p in range(length):
            i, j = strip.grid_at(p)
            if strip.is_aisle:
                a_seeds.append(((i, j), p))
                b_seeds.append(((i, j), length - 1 - p))
            else:
                # Rack cell: routes end by sliding under it from a free
                # neighbour, so seed the neighbours with the +1 step.
                for ni, nj in ((i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
                    if 0 <= ni < h and 0 <= nj < w and not racks[ni, nj]:
                        a_seeds.append(((ni, nj), p + 1))
                        b_seeds.append(((ni, nj), length - p))
        a_field, b_field = _weighted_fields(
            self._warehouse, [a_seeds, b_seeds], self._solver
        )
        entry = (a_field, b_field, length)
        self.field_builds += 1
        if len(self._fields) >= self._max_strips:
            self._fields.pop(next(iter(self._fields)))
        self._fields[strip_index] = entry
        return entry

    def get(self, target: Grid) -> np.ndarray:
        """The derived heuristic map for ``target`` (-1 = unreachable)."""
        cached = self._maps.get(target)
        if cached is not None:
            self.hits += 1
            del self._maps[target]
            self._maps[target] = cached
            return cached
        self.misses += 1
        if not self._warehouse.in_bounds(target):
            raise InvalidQueryError(f"target {target} is out of bounds")
        strip_index, q = self._graph.locate(target)
        a_field, b_field, length = self._strip_fields(strip_index)
        derived = np.maximum(
            a_field - np.int32(q), b_field - np.int32(length - 1 - q)
        )
        manhattan = np.abs(self._rows - np.int32(target[0])) + np.abs(
            self._cols - np.int32(target[1])
        )
        derived = np.maximum(derived, manhattan).astype(np.int32, copy=False)
        derived[a_field < 0] = UNREACHABLE
        # Rebuild rack-cell values with the oracle's own one-hop
        # extension: the strip fields reach rack cells only through free
        # neighbours, but ``bfs_distance_map`` lets a rack cell adjacent
        # to a rack *target* take the direct slide (distance 1 through
        # the target's 0), so the field-derived rack values can
        # over-estimate there.  Extending from the (admissible) free
        # values keeps every rack cell admissible too.
        racks = self._warehouse.racks
        derived[racks] = UNREACHABLE
        if a_field[target] >= 0:
            derived[target] = 0
        _extend_to_rack_cells(derived, racks)
        if len(self._maps) >= self._max_targets:
            self._maps.pop(next(iter(self._maps)))
            self.evictions += 1
        self._maps[target] = derived
        return derived

    def distance(self, origin: Grid, target: Grid) -> int:
        """Admissible lower bound on the rack-avoiding distance.

        Exact when either endpoint lies on the target's strip; a lower
        bound elsewhere (this class serves heuristic consumers — use
        :class:`DistanceMaps` where exact distances are required).
        """
        return int(self.get(target)[origin])

    def clear(self) -> None:
        self._fields.clear()
        self._maps.clear()

    def __len__(self) -> int:
        return len(self._maps)
