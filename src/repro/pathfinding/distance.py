"""BFS shortest-distance maps on the warehouse grid.

A distance map holds, for one target cell, the length of the shortest
rack-avoiding path from every cell to that target.  Rack cells other
than the target are impassable; the target itself may be a rack cell
(robots slide under the rack as their final step).

Planners cache one map per destination (:class:`DistanceMaps`), which
doubles as the "cached shortest path" machinery of the ACP baseline:
greedily descending the distance map reproduces a cached shortest path
without storing explicit paths per origin-destination pair.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import InvalidQueryError
from repro.types import Grid
from repro.warehouse.matrix import Warehouse

UNREACHABLE = -1


def bfs_distance_map(warehouse: Warehouse, target: Grid) -> np.ndarray:
    """Distances from every cell to ``target`` (-1 when unreachable)."""
    if not warehouse.in_bounds(target):
        raise InvalidQueryError(f"target {target} is out of bounds")
    h, w = warehouse.shape
    dist = np.full((h, w), UNREACHABLE, dtype=np.int32)
    dist[target] = 0
    queue = deque([target])
    racks = warehouse.racks
    while queue:
        i, j = queue.popleft()
        d = dist[i, j] + 1
        for ni, nj in ((i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
            if 0 <= ni < h and 0 <= nj < w and not racks[ni, nj] and dist[ni, nj] < 0:
                dist[ni, nj] = d
                queue.append((ni, nj))
    _extend_to_rack_cells(dist, racks)
    return dist


def _extend_to_rack_cells(dist: np.ndarray, racks: np.ndarray) -> None:
    """Give rack cells one-hop distances through their free neighbours.

    Routes may *start* under a rack (a robot parked below it), so the
    heuristic must be finite there: the robot's first move exits to an
    adjacent free cell.  Rack cells remain impassable mid-route.
    """
    neighbor_min = np.full(dist.shape, np.iinfo(np.int32).max, dtype=np.int64)
    for shift in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        shifted = np.full(dist.shape, np.iinfo(np.int32).max, dtype=np.int64)
        src = np.where(dist >= 0, dist.astype(np.int64), np.iinfo(np.int32).max)
        if shift == (1, 0):
            shifted[1:, :] = src[:-1, :]
        elif shift == (-1, 0):
            shifted[:-1, :] = src[1:, :]
        elif shift == (0, 1):
            shifted[:, 1:] = src[:, :-1]
        else:
            shifted[:, :-1] = src[:, 1:]
        neighbor_min = np.minimum(neighbor_min, shifted)
    fill = racks & (dist < 0) & (neighbor_min < np.iinfo(np.int32).max)
    dist[fill] = (neighbor_min[fill] + 1).astype(np.int32)


class DistanceMaps:
    """A per-destination LRU cache of BFS distance maps.

    ``max_entries`` bounds resident memory: one map costs H*W int32
    cells, and warehouses have thousands of distinct rack destinations.
    """

    def __init__(self, warehouse: Warehouse, max_entries: int = 512) -> None:
        self._warehouse = warehouse
        self._maps: Dict[Grid, np.ndarray] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def get(self, target: Grid) -> np.ndarray:
        cached = self._maps.get(target)
        if cached is not None:
            self.hits += 1
            # Refresh LRU position (dicts preserve insertion order).
            del self._maps[target]
            self._maps[target] = cached
            return cached
        self.misses += 1
        computed = bfs_distance_map(self._warehouse, target)
        if len(self._maps) >= self._max_entries:
            self._maps.pop(next(iter(self._maps)))
        self._maps[target] = computed
        return computed

    def distance(self, origin: Grid, target: Grid) -> int:
        """Shortest rack-avoiding distance, -1 when unreachable."""
        return int(self.get(target)[origin])

    def greedy_path(self, origin: Grid, target: Grid) -> Optional[List[Grid]]:
        """A shortest path obtained by descending the distance map.

        Returns None when the target is unreachable.  Deterministic:
        neighbours are tried in (up, down, left, right) order.
        """
        dist = self.get(target)
        if dist[origin] < 0:
            return None
        path = [origin]
        cur = origin
        while cur != target:
            i, j = cur
            d = dist[i, j]
            for nxt in ((i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
                # Rack cells carry one-hop heuristic values (see
                # _extend_to_rack_cells) but are not traversable; only
                # the target rack may be stepped onto.
                if not self._warehouse.in_bounds(nxt):
                    continue
                if self._warehouse.is_rack(nxt) and nxt != target:
                    continue
                if dist[nxt] == d - 1:
                    cur = nxt
                    path.append(cur)
                    break
            else:  # pragma: no cover - dist maps are always descendable
                return None
        return path

    def clear(self) -> None:
        self._maps.clear()

    def __len__(self) -> int:
        return len(self._maps)
