"""BFS shortest-distance maps on the warehouse grid.

A distance map holds, for one target cell, the length of the shortest
rack-avoiding path from every cell to that target.  Rack cells other
than the target are impassable; the target itself may be a rack cell
(robots slide under the rack as their final step).

Two caching granularities exist:

* :class:`DistanceMaps` — one *exact* map per destination cell, LRU
  bounded.  The baselines need exactness: greedily descending an exact
  map reproduces a cached shortest path (the ACP/RP machinery).
* :class:`StripDistanceMaps` — one pair of weighted multi-source BFS
  *fields* per destination **strip**; the per-cell map handed to the
  A* fallback is derived from the strip's fields with a few vectorised
  array operations instead of a fresh grid BFS.  The derived map is an
  admissible (never over-estimating) heuristic with exact values along
  the destination strip, which is all space-time A* needs; destinations
  clustered in the same strip — the common warehouse pattern — stop
  paying one full BFS each.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidQueryError
from repro.types import Grid
from repro.warehouse.matrix import Warehouse

UNREACHABLE = -1


def bfs_distance_map(warehouse: Warehouse, target: Grid) -> np.ndarray:
    """Distances from every cell to ``target`` (-1 when unreachable)."""
    if not warehouse.in_bounds(target):
        raise InvalidQueryError(f"target {target} is out of bounds")
    h, w = warehouse.shape
    dist = np.full((h, w), UNREACHABLE, dtype=np.int32)
    dist[target] = 0
    queue = deque([target])
    racks = warehouse.racks
    while queue:
        i, j = queue.popleft()
        d = dist[i, j] + 1
        for ni, nj in ((i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
            if 0 <= ni < h and 0 <= nj < w and not racks[ni, nj] and dist[ni, nj] < 0:
                dist[ni, nj] = d
                queue.append((ni, nj))
    _extend_to_rack_cells(dist, racks)
    return dist


def _extend_to_rack_cells(dist: np.ndarray, racks: np.ndarray) -> None:
    """Give rack cells one-hop distances through their free neighbours.

    Routes may *start* under a rack (a robot parked below it), so the
    heuristic must be finite there: the robot's first move exits to an
    adjacent free cell.  Rack cells remain impassable mid-route.
    """
    neighbor_min = np.full(dist.shape, np.iinfo(np.int32).max, dtype=np.int64)
    for shift in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        shifted = np.full(dist.shape, np.iinfo(np.int32).max, dtype=np.int64)
        src = np.where(dist >= 0, dist.astype(np.int64), np.iinfo(np.int32).max)
        if shift == (1, 0):
            shifted[1:, :] = src[:-1, :]
        elif shift == (-1, 0):
            shifted[:-1, :] = src[1:, :]
        elif shift == (0, 1):
            shifted[:, 1:] = src[:, :-1]
        else:
            shifted[:, :-1] = src[:, 1:]
        neighbor_min = np.minimum(neighbor_min, shifted)
    fill = racks & (dist < 0) & (neighbor_min < np.iinfo(np.int32).max)
    dist[fill] = (neighbor_min[fill] + 1).astype(np.int32)


class DistanceMaps:
    """A per-destination LRU cache of BFS distance maps.

    ``max_entries`` bounds resident memory: one map costs H*W int32
    cells, and warehouses have thousands of distinct rack destinations.
    """

    def __init__(self, warehouse: Warehouse, max_entries: int = 512) -> None:
        self._warehouse = warehouse
        self._maps: Dict[Grid, np.ndarray] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, target: Grid) -> np.ndarray:
        cached = self._maps.get(target)
        if cached is not None:
            self.hits += 1
            # Refresh LRU position (dicts preserve insertion order).
            del self._maps[target]
            self._maps[target] = cached
            return cached
        self.misses += 1
        computed = bfs_distance_map(self._warehouse, target)
        if len(self._maps) >= self._max_entries:
            self._maps.pop(next(iter(self._maps)))
            self.evictions += 1
        self._maps[target] = computed
        return computed

    def distance(self, origin: Grid, target: Grid) -> int:
        """Shortest rack-avoiding distance, -1 when unreachable."""
        return int(self.get(target)[origin])

    def greedy_path(self, origin: Grid, target: Grid) -> Optional[List[Grid]]:
        """A shortest path obtained by descending the distance map.

        Returns None when the target is unreachable.  Deterministic:
        neighbours are tried in (up, down, left, right) order.
        """
        dist = self.get(target)
        if dist[origin] < 0:
            return None
        path = [origin]
        cur = origin
        while cur != target:
            i, j = cur
            d = dist[i, j]
            for nxt in ((i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
                # Rack cells carry one-hop heuristic values (see
                # _extend_to_rack_cells) but are not traversable; only
                # the target rack may be stepped onto.
                if not self._warehouse.in_bounds(nxt):
                    continue
                if self._warehouse.is_rack(nxt) and nxt != target:
                    continue
                if dist[nxt] == d - 1:
                    cur = nxt
                    path.append(cur)
                    break
            else:  # pragma: no cover - dist maps are always descendable
                return None
        return path

    def clear(self) -> None:
        self._maps.clear()

    def __len__(self) -> int:
        return len(self._maps)


def _weighted_field(warehouse: Warehouse, seeds: List[Tuple[Grid, int]]) -> np.ndarray:
    """Multi-source weighted BFS field: ``F(x) = min_s d(x, s) + w_s``.

    ``seeds`` are ``(cell, weight)`` pairs over free cells; edges cost 1
    (a Dijkstra heap handles the non-uniform seed weights).  Free cells
    unreachable from every seed keep -1; rack cells get one-hop values
    through their free neighbours, matching :func:`bfs_distance_map`'s
    under-rack semantics.
    """
    h, w = warehouse.shape
    racks = warehouse.racks
    field = np.full((h, w), UNREACHABLE, dtype=np.int32)
    heap: List[Tuple[int, int, int]] = []
    for (i, j), weight in seeds:
        cur = field[i, j]
        if cur < 0 or weight < cur:
            field[i, j] = weight
            heapq.heappush(heap, (weight, i, j))
    while heap:
        d, i, j = heapq.heappop(heap)
        if d > field[i, j]:
            continue  # stale heap entry
        nd = d + 1
        for ni, nj in ((i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
            if 0 <= ni < h and 0 <= nj < w and not racks[ni, nj]:
                cur = field[ni, nj]
                if cur < 0 or nd < cur:
                    field[ni, nj] = nd
                    heapq.heappush(heap, (nd, ni, nj))
    _extend_to_rack_cells(field, racks)
    return field


class StripDistanceMaps:
    """Distance maps batched per destination *strip*.

    For a strip of length ``L`` two weighted fields are built once and
    shared by every destination cell in the strip:

    * ``A(x) = min_p d_p(x) + p``
    * ``B(x) = min_p d_p(x) + (L - 1 - p)``

    where ``d_p(x)`` is the exact rack-avoiding distance from ``x`` to
    the strip cell at local position ``p`` (for rack strips, to its
    free neighbours plus the final slide-under step, weight ``p + 1`` /
    ``L - p``).  For a destination at position ``q``, every ``p`` term
    gives ``d_q(x) >= d_p(x) + |p - q| >= d_p(x) + p - q``, so

    ``H(x) = max(A(x) - q, B(x) - (L - 1 - q), manhattan(x, target))``

    never over-estimates ``d_q(x)`` — an admissible heuristic for
    space-time A*, derived with three vectorised array ops instead of a
    fresh grid BFS per destination.  Along the destination strip itself
    the bound is tight (``A`` restricted to an aisle strip equals the
    local position exactly), which is where heuristic accuracy matters
    most for the fallback's corridor-shaped searches.

    Exactness of the *routes* is untouched: admissible heuristics leave
    space-time A* optimal, and the cached-vs-uncached planner invariant
    only requires both modes to share one heuristic provider — they do.
    Cells unreachable from every seed stay ``UNREACHABLE`` so the
    solver's early-abort paths behave as before; the target cell is
    pinned to 0 (its extended under-rack value would be ``q + 2``-ish,
    not 0, and A* requires ``h(goal) = 0``).

    The per-strip fields and the small per-target derived maps sit in
    separate LRU caches; ``hits``/``misses``/``evictions`` count target
    lookups, ``field_builds`` counts strip field constructions (the
    expensive part — two Dijkstra sweeps each).
    """

    def __init__(
        self,
        warehouse: Warehouse,
        graph: "StripGraph",
        max_strips: int = 128,
        max_targets: int = 512,
    ) -> None:
        self._warehouse = warehouse
        self._graph = graph
        self._max_strips = max_strips
        self._max_targets = max_targets
        # strip index -> (A field, B field, strip length)
        self._fields: Dict[int, Tuple[np.ndarray, np.ndarray, int]] = {}
        # target cell -> derived per-target map
        self._maps: Dict[Grid, np.ndarray] = {}
        h, w = warehouse.shape
        self._rows = np.arange(h, dtype=np.int32).reshape(h, 1)
        self._cols = np.arange(w, dtype=np.int32).reshape(1, w)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.field_builds = 0

    # ------------------------------------------------------------------
    def _strip_fields(self, strip_index: int) -> Tuple[np.ndarray, np.ndarray, int]:
        entry = self._fields.get(strip_index)
        if entry is not None:
            del self._fields[strip_index]
            self._fields[strip_index] = entry
            return entry
        strip = self._graph.strips[strip_index]
        length = strip.length
        racks = self._warehouse.racks
        h, w = self._warehouse.shape
        a_seeds: List[Tuple[Grid, int]] = []
        b_seeds: List[Tuple[Grid, int]] = []
        for p in range(length):
            i, j = strip.grid_at(p)
            if strip.is_aisle:
                a_seeds.append(((i, j), p))
                b_seeds.append(((i, j), length - 1 - p))
            else:
                # Rack cell: routes end by sliding under it from a free
                # neighbour, so seed the neighbours with the +1 step.
                for ni, nj in ((i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
                    if 0 <= ni < h and 0 <= nj < w and not racks[ni, nj]:
                        a_seeds.append(((ni, nj), p + 1))
                        b_seeds.append(((ni, nj), length - p))
        entry = (
            _weighted_field(self._warehouse, a_seeds),
            _weighted_field(self._warehouse, b_seeds),
            length,
        )
        self.field_builds += 1
        if len(self._fields) >= self._max_strips:
            self._fields.pop(next(iter(self._fields)))
        self._fields[strip_index] = entry
        return entry

    def get(self, target: Grid) -> np.ndarray:
        """The derived heuristic map for ``target`` (-1 = unreachable)."""
        cached = self._maps.get(target)
        if cached is not None:
            self.hits += 1
            del self._maps[target]
            self._maps[target] = cached
            return cached
        self.misses += 1
        if not self._warehouse.in_bounds(target):
            raise InvalidQueryError(f"target {target} is out of bounds")
        strip_index, q = self._graph.locate(target)
        a_field, b_field, length = self._strip_fields(strip_index)
        derived = np.maximum(
            a_field - np.int32(q), b_field - np.int32(length - 1 - q)
        )
        manhattan = np.abs(self._rows - np.int32(target[0])) + np.abs(
            self._cols - np.int32(target[1])
        )
        derived = np.maximum(derived, manhattan).astype(np.int32, copy=False)
        derived[a_field < 0] = UNREACHABLE
        # Rebuild rack-cell values with the oracle's own one-hop
        # extension: the strip fields reach rack cells only through free
        # neighbours, but ``bfs_distance_map`` lets a rack cell adjacent
        # to a rack *target* take the direct slide (distance 1 through
        # the target's 0), so the field-derived rack values can
        # over-estimate there.  Extending from the (admissible) free
        # values keeps every rack cell admissible too.
        racks = self._warehouse.racks
        derived[racks] = UNREACHABLE
        if a_field[target] >= 0:
            derived[target] = 0
        _extend_to_rack_cells(derived, racks)
        if len(self._maps) >= self._max_targets:
            self._maps.pop(next(iter(self._maps)))
            self.evictions += 1
        self._maps[target] = derived
        return derived

    def distance(self, origin: Grid, target: Grid) -> int:
        """Admissible lower bound on the rack-avoiding distance.

        Exact when either endpoint lies on the target's strip; a lower
        bound elsewhere (this class serves heuristic consumers — use
        :class:`DistanceMaps` where exact distances are required).
        """
        return int(self.get(target)[origin])

    def clear(self) -> None:
        self._fields.clear()
        self._maps.clear()

    def __len__(self) -> int:
        return len(self._maps)
