"""Space-time A* in the 3-D (row, col, time) search space.

This is the grid-level search the paper attributes the efficiency
bottleneck to (Section I): states are ``(cell, time)`` pairs, actions
are the four unit moves plus waiting, and a pluggable conflict checker
decides which actions existing traffic forbids.

The same engine powers:

* the SAP baseline (checker = reservation table over committed routes);
* the TWP baseline (conflicts enforced only within a time window);
* re-planning inside the RP baseline;
* SRP's rare fallback (checker = per-strip segment stores).
"""

from __future__ import annotations

import heapq
from typing import Optional, Protocol

import numpy as np

from repro.pathfinding.distance import UNREACHABLE
from repro.types import Grid, Route
from repro.warehouse.matrix import Warehouse


class ConflictChecker(Protocol):
    """Decides whether a unit action conflicts with existing traffic."""

    def move_blocked(self, a: Grid, b: Grid, t: int) -> bool:
        """True when moving (or waiting, ``a == b``) over ``[t, t+1]`` conflicts."""

    def cell_blocked(self, cell: Grid, t: int) -> bool:
        """True when standing at ``cell`` at the instant ``t`` conflicts."""


class NullConflictChecker:
    """A checker that never blocks; yields plain shortest paths."""

    def move_blocked(self, a: Grid, b: Grid, t: int) -> bool:
        return False

    def cell_blocked(self, cell: Grid, t: int) -> bool:
        return False


def space_time_astar(
    warehouse: Warehouse,
    origin: Grid,
    destination: Grid,
    start_time: int,
    checker: ConflictChecker,
    dist_map: Optional[np.ndarray],
    max_expansions: int = 200_000,
    window: Optional[int] = None,
    horizon_slack: int = 256,
) -> Optional[Route]:
    """Plan one collision-aware route with A* over (cell, time) states.

    Args:
        dist_map: BFS distances to ``destination`` (the admissible
            true-distance heuristic; also prunes unreachable cells).
            ``None`` selects the plain Manhattan heuristic — the "simple
            A*" configuration of the paper's SAP baseline, which expands
            far more states around rack clusters.
        window: when given, conflicts are only enforced for actions
            starting before ``start_time + window`` — the TWP baseline's
            time-window relaxation.  ``None`` enforces them everywhere.
        horizon_slack: extra timesteps beyond the shortest distance a
            route may spend waiting/detouring before the search gives up.

    Returns:
        The planned :class:`Route`, or None on failure (unreachable
        destination, expansion budget exhausted, or horizon exceeded).
    """
    if dist_map is None:
        base = abs(origin[0] - destination[0]) + abs(origin[1] - destination[1])
    else:
        base = int(dist_map[origin])
    if base == UNREACHABLE:
        return None
    if (window is None or window > 0) and checker.cell_blocked(origin, start_time):
        return None  # the start cell is occupied at the start instant
    deadline = start_time + base + horizon_slack

    # Heap entries: (f, -t, counter, t, cell); preferring larger t among
    # equal f breaks ties toward routes that wait less at the end.
    counter = 0
    open_heap = [(start_time + base, -start_time, counter, start_time, origin)]
    parents: Dict[State, Optional[State]] = {(origin, start_time): None}
    closed: Set[State] = set()
    expansions = 0
    racks = warehouse.racks
    h, w = warehouse.shape

    while open_heap:
        f, _neg_t, _c, t, cell = heapq.heappop(open_heap)
        state = (cell, t)
        if state in closed:
            continue
        closed.add(state)
        if cell == destination:
            return _reconstruct(parents, state)
        expansions += 1
        if expansions > max_expansions or t >= deadline:
            return None
        enforce = window is None or t < start_time + window
        i, j = cell
        for nxt in ((i, j), (i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
            ni, nj = nxt
            if not (0 <= ni < h and 0 <= nj < w):
                continue
            # Rack cells block movement, except entering the destination
            # rack or waiting under the rack the route started from.
            if racks[ni, nj] and nxt != destination and nxt != cell:
                continue
            if dist_map is None:
                hval = abs(ni - destination[0]) + abs(nj - destination[1])
            else:
                hval = int(dist_map[ni, nj])
                if hval == UNREACHABLE and nxt != destination:
                    continue
            nstate = (nxt, t + 1)
            if nstate in closed or nstate in parents:
                continue
            if enforce and checker.move_blocked(cell, nxt, t):
                continue
            parents[nstate] = state
            counter += 1
            heapq.heappush(
                open_heap, (t + 1 + max(hval, 0), -(t + 1), counter, t + 1, nxt)
            )
    return None


def _reconstruct(parents: Dict[State, Optional[State]], goal_state: State) -> Route:
    cells: List[Grid] = []
    state = goal_state
    while state is not None:
        cells.append(state[0])
        state = parents[state]
    cells.reverse()
    goal_time = goal_state[1]
    return Route(goal_time - (len(cells) - 1), cells)
