"""Grid-level path finding shared by the baselines and SRP's fallback.

* :mod:`repro.pathfinding.distance` — BFS shortest-distance maps used
  as admissible A* heuristics (and as the cached paths of the ACP
  baseline);
* :mod:`repro.pathfinding.space_time_astar` — the classic space-time
  A* search in (cell, time) space with a pluggable conflict checker;
  this is the 3-D search whose cost the paper identifies as the
  efficiency bottleneck of grid-based planners.
"""

from repro.pathfinding.distance import DistanceMaps, StripDistanceMaps, bfs_distance_map
from repro.pathfinding.space_time_astar import (
    ConflictChecker,
    NullConflictChecker,
    space_time_astar,
)

__all__ = [
    "DistanceMaps",
    "StripDistanceMaps",
    "bfs_distance_map",
    "ConflictChecker",
    "NullConflictChecker",
    "space_time_astar",
]
