"""The common planner interface shared by SRP and all baselines.

Every planner answers online CARP queries one at a time: ``plan`` must
return a route that is collision-free against every route the planner
returned before (since the last ``reset``).  The simulator and the
benchmark harness only talk to this interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Tuple

from repro.types import Query, Route


@dataclass
class PlannerTimers:
    """Wall-clock accounting shared by every planner.

    ``total`` is the paper's TC metric for this planner: cumulative
    planning time over all queries, in seconds.
    """

    total: float = 0.0
    queries: int = 0
    failures: int = 0

    def reset(self) -> None:
        self.total = 0.0
        self.queries = 0
        self.failures = 0


class Planner(ABC):
    """An online collision-aware route planner."""

    #: short label used in tables and plots ("SRP", "SAP", ...)
    name: str = "planner"

    def __init__(self) -> None:
        self.timers = PlannerTimers()

    @abstractmethod
    def plan(self, query: Query) -> Route:
        """Plan one query; raises PlanningFailedError when infeasible."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all committed routes and cached state."""

    def prune(self, before: int) -> None:
        """Drop bookkeeping for traffic finishing before ``before``.

        Contract: callers must guarantee every future query's
        ``release_time`` is at least ``before`` (true in the online
        setting, where queries arrive in time order).  Planners that
        keep per-timestep state override this to bound their memory over
        a long simulated day.
        """

    def plan_batch(
        self, queries: Iterable[Query], order: str = "fifo"
    ) -> Dict[int, Route]:
        """Plan a batch of simultaneous queries with a priority ordering.

        Online CARP occasionally releases many queries at one timestamp
        (Definition 3's per-timestamp sets Q_t); prioritised sequential
        planning is the standard treatment, and the ordering is the
        knob.  Orders: ``"fifo"`` (release, then id), ``"shortest_first"``
        (small lower bound first — short hops rarely block long hauls),
        ``"longest_first"``.

        Returns ``{query_id: route}`` including any revisions of earlier
        routes triggered along the way.
        """
        keys: Dict[str, Callable[[Query], Tuple[int, ...]]] = {
            "fifo": lambda q: (q.release_time, q.query_id),
            "shortest_first": lambda q: (q.release_time, q.lower_bound(), q.query_id),
            "longest_first": lambda q: (q.release_time, -q.lower_bound(), q.query_id),
        }
        try:
            key = keys[order]
        except KeyError:
            raise ValueError(f"unknown batch order {order!r}; expected one of {sorted(keys)}")
        routes: Dict[int, Route] = {}
        for query in sorted(queries, key=key):
            routes[query.query_id] = self.plan(query)
            routes.update(self.take_revisions())
        return routes

    def take_revisions(self) -> Dict[int, Route]:
        """Routes revised since the last call, keyed by ``query_id``.

        Planners based on re-planning (RP) may replace routes they
        returned earlier; callers that track routes (simulator, harness,
        validator) must apply these revisions after every ``plan`` call.
        Default: no revisions ever.
        """
        return {}

    def planning_state(self) -> object:
        """The object graph whose deep size is the MC metric.

        Defaults to the planner itself; planners may narrow this to the
        data structures that actually scale with traffic.
        """
        return self
