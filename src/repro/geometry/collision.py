"""Integer-time conflict semantics between (time, position) segments.

A segment here is the paper's Definition 6 object flattened to a
4-tuple ``(t0, p0, t1, p1)`` with ``t0 <= t1``: a robot is at strip
position ``p0`` at time ``t0`` and moves at unit speed (slope +1 or -1)
or waits (slope 0) until ``t1``.  Because robots occupy integer cells
at integer timestamps, the CARP collision rules (Definition 3) become:

* **vertex conflict** — the two trajectories coincide at an integer
  time (same cell, same second);
* **swap conflict** — the trajectories cross at a half-integer time,
  i.e. the robots pass through each other between two seconds
  (Fig. 1(b) / Fig. 6(b) of the paper);
* **overlap conflict** — two parallel segments ride the same line with
  overlapping time spans (a robot driving into the back of another).

The paper's Eq. (2) detects proper crossings and Eq. (3) recovers the
collision time; we keep both (see :func:`collision_time`) but the
planner uses :func:`conflict_between`, which additionally handles the
touching-endpoint and collinear-overlap cases exactly, using pure
integer arithmetic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

RawSegment = Tuple[int, int, int, int]
"""A flattened segment ``(t0, p0, t1, p1)`` with ``t0 <= t1``."""


class ConflictKind(enum.Enum):
    """How two segments conflict (see module docstring)."""

    VERTEX = "vertex"
    SWAP = "swap"
    OVERLAP = "overlap"


@dataclass(frozen=True)
class SegmentConflict:
    """A detected conflict.

    Attributes:
        kind: vertex, swap, or parallel overlap.
        blocked_time: the first integer timestamp at which following the
            *queried* segment becomes invalid.  For a vertex conflict
            this is the collision second itself; for a swap it is the
            second *after* the crossing (the robot may still occupy its
            pre-swap cell); for an overlap it is the first shared second.
    """

    kind: ConflictKind
    blocked_time: int


def segment_slope(seg: RawSegment) -> int:
    """Return the slope (+1, -1 or 0) of a raw segment.

    Waiting segments and degenerate points have slope 0.
    """
    t0, p0, t1, p1 = seg
    if p1 == p0:
        return 0
    return 1 if p1 > p0 else -1


def segment_intercept(seg: RawSegment) -> int:
    """Return the line intercept ``p0 - slope * t0`` of a segment.

    Two same-slope segments ride the same trajectory line iff their
    intercepts are equal.  This integer intercept is equivalent (up to
    a constant factor of sqrt(2)) to the paper's Eq. (4) rotation of
    non-horizontal segments by ±pi/4: the rotated first coordinate
    ``s'[0]`` is constant along a segment exactly when the intercept is.
    """
    t0, p0, _t1, _p1 = seg
    return p0 - segment_slope(seg) * t0


def validate_segment(seg: RawSegment) -> None:
    """Raise ``ValueError`` unless ``seg`` is a legal unit-speed segment."""
    t0, p0, t1, p1 = seg
    if t1 < t0:
        raise ValueError(f"segment runs backwards in time: {seg}")
    if p0 != p1 and abs(p1 - p0) != t1 - t0:
        raise ValueError(f"segment is not unit speed or waiting: {seg}")


def conflict_between(a: RawSegment, b: RawSegment) -> Optional[SegmentConflict]:
    """Return the earliest conflict between two segments, if any.

    Both segments must satisfy :func:`validate_segment`.  The result is
    ``None`` when the robots following the two segments never violate
    the CARP collision-free constraint against each other.
    """
    lo = max(a[0], b[0])
    hi = min(a[2], b[2])
    if lo > hi:
        return None  # disjoint time spans can never conflict

    sa = segment_slope(a)
    sb = segment_slope(b)
    ca = a[1] - sa * a[0]
    cb = b[1] - sb * b[0]

    if sa == sb:
        if ca != cb:
            return None  # parallel, different lines
        # Same trajectory line with a shared second: the first shared
        # integer time is a vertex conflict (lo is integer by construction).
        kind = ConflictKind.VERTEX if lo == hi else ConflictKind.OVERLAP
        return SegmentConflict(kind, lo)

    den = sb - sa  # in {-2, -1, 1, 2}
    num = ca - cb  # intersection at t* = num / den
    if den < 0:
        den, num = -den, -num
    if den == 1:
        t_star = num
        if lo <= t_star <= hi:
            return SegmentConflict(ConflictKind.VERTEX, t_star)
        return None
    # den == 2: opposite unit slopes.
    if num % 2 == 0:
        t_star = num // 2
        if lo <= t_star <= hi:
            return SegmentConflict(ConflictKind.VERTEX, t_star)
        return None
    # Half-integer crossing: a swap happening between floor(t*) and
    # floor(t*) + 1; it only occurs if both surrounding seconds lie in
    # both segments' spans.
    before = (num - 1) // 2
    after = before + 1
    if before >= lo and after <= hi:
        return SegmentConflict(ConflictKind.SWAP, after)
    return None


def conflict_between_segments(a, b) -> Optional[SegmentConflict]:
    """Fast-path :func:`conflict_between` for precomputed segment objects.

    ``a`` and ``b`` expose ``t0, p0, t1, p1, slope, intercept``
    attributes (see :class:`repro.core.segments.Segment`); skipping the
    per-call slope/intercept recomputation roughly halves the cost of
    the planner's hottest inner loop.
    """
    lo = a.t0 if a.t0 > b.t0 else b.t0
    hi = a.t1 if a.t1 < b.t1 else b.t1
    if lo > hi:
        return None

    sa = a.slope
    sb = b.slope
    if sa == sb:
        if a.intercept != b.intercept:
            return None
        kind = ConflictKind.VERTEX if lo == hi else ConflictKind.OVERLAP
        return SegmentConflict(kind, lo)

    den = sb - sa
    num = a.intercept - b.intercept
    if den < 0:
        den, num = -den, -num
    if den == 1:
        if lo <= num <= hi:
            return SegmentConflict(ConflictKind.VERTEX, num)
        return None
    if num % 2 == 0:
        t_star = num // 2
        if lo <= t_star <= hi:
            return SegmentConflict(ConflictKind.VERTEX, t_star)
        return None
    before = (num - 1) // 2
    after = before + 1
    if before >= lo and after <= hi:
        return SegmentConflict(ConflictKind.SWAP, after)
    return None


def earliest_block_time(
    seg: RawSegment, others: Iterable[RawSegment]
) -> Optional[int]:
    """Return the earliest blocked time of ``seg`` against ``others``.

    This is the quantity Algorithm 2 of the paper needs: the first
    integer second at which continuing along ``seg`` becomes illegal.
    ``None`` means the whole segment is collision-free.
    """
    best: Optional[int] = None
    for other in others:
        conflict = conflict_between(seg, other)
        if conflict is not None and (best is None or conflict.blocked_time < best):
            best = conflict.blocked_time
    return best


def collision_time(a: RawSegment, b: RawSegment) -> int:
    """The paper's Eq. (3): floor of the crossing time of two segments.

    Defined for two segments of opposite unit slopes; for a vertex
    crossing this equals the collision second, for a swap it is the
    second *before* the exchange (the floor makes Eq. (3) return "the
    earlier collision time", as the paper remarks below Fig. 6).
    """
    return (a[0] + b[0] + abs(a[1] - b[1])) // 2
