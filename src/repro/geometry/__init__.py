"""Computational-geometry primitives used by the strip-based planner.

The paper converts route collisions inside a strip into intersections
between 2-D segments in the (time, position) plane (Section V-B).  This
subpackage provides:

* :mod:`repro.geometry.primitives` — cross products, orientation tests
  and the paper's Eq. (2) proper-intersection predicate;
* :mod:`repro.geometry.collision` — integer-time conflict semantics
  specialised to the slopes ``{+1, -1, 0}`` that unit-speed routes can
  produce, including the Eq. (3) collision-time formula.
"""

from repro.geometry.collision import (
    ConflictKind,
    SegmentConflict,
    collision_time,
    conflict_between,
    conflict_between_segments,
    earliest_block_time,
)
from repro.geometry.primitives import (
    cross,
    on_segment,
    orientation,
    segments_intersect,
    segments_properly_intersect,
)

__all__ = [
    "cross",
    "orientation",
    "on_segment",
    "segments_properly_intersect",
    "segments_intersect",
    "ConflictKind",
    "SegmentConflict",
    "conflict_between",
    "conflict_between_segments",
    "earliest_block_time",
    "collision_time",
]
