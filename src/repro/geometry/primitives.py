"""Low-level exact geometry on integer 2-D points.

All coordinates handled here are integers (timestamps and grid
numbers), so every predicate below is exact — there is no floating
point anywhere in the collision pipeline.

The functions implement the classical cross-product machinery the paper
cites from CLRS [10] and uses in its Eq. (2).
"""

from __future__ import annotations

from typing import Tuple

Point = Tuple[int, int]


def cross(o: Point, a: Point, b: Point) -> int:
    """Return the z-component of the cross product ``(a - o) x (b - o)``.

    Positive when ``o -> a -> b`` turns counter-clockwise, negative when
    it turns clockwise, zero when the three points are collinear.
    """
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def orientation(o: Point, a: Point, b: Point) -> int:
    """Return the sign of :func:`cross` as -1, 0 or +1."""
    c = cross(o, a, b)
    if c > 0:
        return 1
    if c < 0:
        return -1
    return 0


def on_segment(p: Point, a: Point, b: Point) -> bool:
    """Return True if point ``p`` lies on the closed segment ``a``–``b``."""
    if cross(a, b, p) != 0:
        return False
    return (
        min(a[0], b[0]) <= p[0] <= max(a[0], b[0])
        and min(a[1], b[1]) <= p[1] <= max(a[1], b[1])
    )


def segments_properly_intersect(a1: Point, a2: Point, b1: Point, b2: Point) -> bool:
    """Eq. (2) of the paper: strict (proper) segment intersection.

    True iff the open interiors of segments ``a1 a2`` and ``b1 b2``
    cross — each segment strictly separates the other's endpoints.
    Touching endpoints and collinear overlaps return False; the
    collision layer handles those cases explicitly.
    """
    d1 = cross(b1, b2, a1)
    d2 = cross(b1, b2, a2)
    d3 = cross(a1, a2, b1)
    d4 = cross(a1, a2, b2)
    return ((d1 > 0) != (d2 > 0)) and (d3 > 0) != (d4 > 0) and d1 != 0 and d2 != 0 and d3 != 0 and d4 != 0


def segments_intersect(a1: Point, a2: Point, b1: Point, b2: Point) -> bool:
    """General closed-segment intersection (proper, touching or overlap)."""
    if segments_properly_intersect(a1, a2, b1, b2):
        return True
    return (
        on_segment(b1, a1, a2)
        or on_segment(b2, a1, a2)
        or on_segment(a1, b1, b2)
        or on_segment(a2, b1, b2)
    )
